#!/usr/bin/env python3
"""Figure 3 live: the five programs against the three representation classes.

Runs RInGen (Reg), the Elem baseline (Spacer's class) and the SizeElem
baseline (Eldarica's class) on Even, IncDec, EvenLeft, Diag and LtGt, and
checks the outcomes against the paper's classification — solver success
correlates exactly with invariant definability.

Also demonstrates the negative results mechanically:
 * Prop. 1 via the Elem pumping lemma (Even),
 * Prop. 2 via size-indistinguishability (EvenLeft).

Run:  python examples/expressiveness_tour.py
"""

from repro import solve
from repro.logic.adt import NAT, TREE, nat, nat_system, tree_system
from repro.solvers.elem import solve_elem
from repro.solvers.sizeelem import solve_sizeelem
from repro.theory.atlas import (
    ATLAS,
    even_member,
    evenleft_member,
    format_figure3,
)
from repro.theory.pumping import (
    find_size_indistinguishable_pair,
    leaves,
    pump,
)


def main() -> None:
    print("Figure 3 (paper's classification):")
    print(format_figure3())
    print()

    print(f"{'program':<10} {'RInGen':<10} {'Elem':<10} {'SizeElem':<10}")
    print("-" * 42)
    for name, entry in ATLAS.items():
        system = entry.system_factory()
        r_reg = solve(system, timeout=6).status
        r_elem = solve_elem(entry.system_factory(), timeout=6).status
        r_size = solve_sizeelem(entry.system_factory(), timeout=10).status
        print(f"{name:<10} {str(r_reg):<10} {str(r_elem):<10} {str(r_size):<10}")
    print()
    print("(sat exactly where Figure 3 says the class contains an invariant)")
    print()

    # --- Prop. 1, mechanically: pump a deep even number ----------------
    nats = nat_system()
    g = nat(6)
    paths = leaves(g, NAT, nats)
    pumped = pump(g, paths, nat(9), nats)
    print("Prop. 1 (Even not elementary): pumping the leaf of S^6(Z) with")
    print(f"  S^9(Z) gives S^15(Z): even({6}) = {even_member(g)} but "
          f"even(15) = {even_member(pumped)} —")
    print("  first-order formulas cannot see the difference at that depth.")
    print()

    # --- Prop. 2, mechanically: same size, different leftmost parity ---
    witness = find_size_indistinguishable_pair(
        evenleft_member, TREE, tree_system(), max_height=4
    )
    print("Prop. 2 (EvenLeft not SizeElem): same-size separating pair")
    print(f"  size {witness.size}:")
    print(f"    in : {witness.inside}")
    print(f"    out: {witness.outside}")
    print("  size constraints count every constructor and cannot tell "
          "these apart.")


if __name__ == "__main__":
    main()
