#!/usr/bin/env python3
"""Quickstart: verify the paper's motivating Even program (Example 1).

The program asserts that no two consecutive Peano numbers are both even.
Its only safe inductive invariant, {S^2n(Z)}, is *not* expressible as a
first-order formula over the Nat datatype (Prop. 1) — but it is regular:
a two-state tree automaton recognizes it, and RInGen finds that automaton
automatically by finite model finding.

Run:  python examples/quickstart.py
"""

from repro import solve
from repro.logic.adt import nat
from repro.problems import EVEN, even_system


def main() -> None:
    system = even_system()
    print("Verification conditions (CHCs over the Nat ADT):")
    for clause in system:
        print("   ", clause)
    print()

    result = solve(system, timeout=30)
    print(f"verdict: {result.status}   ({result.elapsed:.3f}s)")
    assert result.is_sat, "Even is safe: expected SAT"

    model = result.invariant
    print(f"finite model size: {model.size()} (the paper finds 2 as well)")
    print()
    print(model.describe())
    print()

    print("membership checks against the invariant automaton:")
    for n in range(8):
        term = nat(n)
        verdict = "in " if model.member(EVEN, (term,)) else "out"
        print(f"    S^{n}(Z): {verdict}")

    # cross-check the invariant against the original clauses over the
    # Herbrand structure (Theorem 5 made executable)
    violation = model.verify_bounded(system, max_height=5)
    print()
    print("bounded Herbrand verification:", "OK" if violation is None else violation)


if __name__ == "__main__":
    main()
