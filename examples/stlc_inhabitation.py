#!/usr/bin/env python3
"""The Sec. 5 case study: STLC type inhabitation via regular invariants.

The typeCheck program's verification conditions (Fig. 2) assert that no
closed simply-typed lambda term inhabits (a -> b) -> a for all types a, b.
The safe invariant the paper discovers is the classical-tautology
over-approximation ℐ, representable by a 6-element tree automaton but by
*no* first-order formula (Appendix A).

This script:
 1. builds the VC and runs RInGen on it (finds the size-6 model),
 2. compares the found invariant with the paper's hand-built automaton,
 3. shows the divergence on Peirce's law, and the refutation-by-witness
    for an inhabited type.

Run:  python examples/stlc_inhabitation.py
"""

from repro import solve
from repro.chc.transform import preprocess
from repro.stlc import (
    abs_,
    evar,
    empty,
    find_inhabitant,
    goal_not_classical,
    goal_peirce,
    invariant_model,
    is_classical_tautology,
    type_checks,
    typecheck_vc,
    vx,
)
from repro.stlc.typecheck import t_identity, t_not_taut, t_peirce


def main() -> None:
    print("goal type: (a -> b) -> a")
    print(
        "classical tautology?",
        is_classical_tautology(t_not_taut()),
        "(so the type is uninhabited and the program safe)",
    )
    print()

    vc = typecheck_vc(goal_not_classical)
    print("verification conditions (note the forall-block in the query):")
    for clause in vc:
        print("   ", clause)
    print()

    result = solve(vc, timeout=60)
    print(f"RInGen verdict: {result.status}  ({result.elapsed:.2f}s)")
    print(f"model size: {result.details.get('model_size')}  "
          "(paper: Var=1, Type=2, Expr=1, Env=2 — total 6)")
    print()

    # the hand-built invariant of Sec. 5 passes the same exact check
    hand = invariant_model()
    prepared = preprocess(vc)
    print(
        "paper's hand-built automaton is inductive:",
        hand.satisfies(prepared, herbrand=True),
    )
    print()

    # Peirce's law: classical-but-not-intuitionistic — uninhabited, but
    # the regular invariant family cannot prove it; the tool diverges
    peirce_result = solve(typecheck_vc(goal_peirce), timeout=5)
    print("Peirce's law ((a -> b) -> a) -> a:", peirce_result.status,
          f"(classical tautology: {is_classical_tautology(t_peirce())})")
    print()

    # inhabited types are genuinely unsafe: exhibit the witness
    witness = find_inhabitant(t_identity())
    print(f"a -> a is inhabited by: {witness}")
    assert type_checks(empty(), witness, t_identity())
    assert witness == abs_(vx(), evar(vx()))


if __name__ == "__main__":
    main()
