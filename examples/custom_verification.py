#!/usr/bin/env python3
"""Verify your own ADT-manipulating program, end to end.

Shows the full user workflow on a fresh problem that is not in the paper:
lists over {a, b} where every `a` is immediately followed by a `b`
(a regular "protocol" property).  We

 1. declare the ADTs and write the CHCs through the library API,
 2. serialize them to SMT-LIB (the format RInGen consumed) and parse back,
 3. solve, inspect the automaton, and query the invariant,
 4. break the program and watch the counterexample derivation appear.

Run:  python examples/custom_verification.py
"""

from repro import solve
from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.chc.parser import parse_chc
from repro.chc.printer import print_system
from repro.logic.adt import ADT, ADTSystem
from repro.logic.formulas import TRUE
from repro.logic.sorts import FuncSymbol, PredSymbol, Sort
from repro.logic.terms import App, Term, Var

SYM = Sort("Sym")
WORD = Sort("Word")
A = FuncSymbol("a", (), SYM)
B = FuncSymbol("b", (), SYM)
EPS = FuncSymbol("eps", (), WORD)
SNOC = FuncSymbol("snoc", (SYM, WORD), WORD)


def word(letters: str) -> Term:
    out: Term = App(EPS)
    for ch in reversed(letters):
        out = App(SNOC, (App(A) if ch == "a" else App(B), out))
    return out


def protocol_system(broken: bool = False) -> CHCSystem:
    """ok(w): every `a` in w is immediately followed (to the left) by `b`.

    afterA(w) marks "the next symbol must be b".  The query asserts an ok
    word never starts with a dangling `a`.
    """
    adts = ADTSystem([ADT(SYM, (A, B)), ADT(WORD, (EPS, SNOC))])
    system = CHCSystem(adts, name="ab-protocol")
    ok = PredSymbol("ok", (WORD,))
    after_a = PredSymbol("afterA", (WORD,))
    w = Var("w", WORD)
    system.add(Clause(TRUE, (), BodyAtom(ok, (App(EPS),)), "ok-eps"))
    system.add(
        Clause(
            TRUE,
            (BodyAtom(ok, (w,)),),
            BodyAtom(after_a, (App(SNOC, (App(A), w)),)),
            "push-a",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(after_a, (w,)),),
            BodyAtom(ok, (App(SNOC, (App(B), w)),)),
            "close-b",
        )
    )
    if broken:
        # bug: accept a dangling `a` on top of any ok word
        system.add(
            Clause(
                TRUE,
                (BodyAtom(ok, (w,)),),
                BodyAtom(ok, (App(SNOC, (App(A), w)),)),
                "buggy-dangling-a",
            )
        )
    # an ok word never *is* a dangling-a word
    system.add(
        Clause(
            TRUE,
            (BodyAtom(ok, (w,)), BodyAtom(after_a, (w,))),
            None,
            "query",
        )
    )
    return system


def main() -> None:
    system = protocol_system()
    print("SMT-LIB rendering (parse/print round-trips):")
    text = print_system(system)
    print(text)
    reparsed = parse_chc(text)

    result = solve(reparsed, timeout=30)
    print(f"verdict: {result.status}  model size "
          f"{result.details.get('model_size')}")
    model = result.invariant
    ok = [p for p in model.automata if p.name == "ok"][0]
    for letters in ("", "ba", "baba", "ab", "aa", "bb", "a"):
        verdict = model.member(ok, (word(letters),))
        print(f"    ok({letters or 'ε':>5}) = {verdict}")

    print()
    print("now the buggy variant (accept a dangling `a`):")
    broken = solve(protocol_system(broken=True), timeout=30)
    print(f"verdict: {broken.status}")
    print("counterexample derivation:")
    print(broken.refutation.format(indent=4))


if __name__ == "__main__":
    main()
