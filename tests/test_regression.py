"""Regression tests for defects found and fixed during development.

Each test pins the minimal scenario of an actual bug so the fix cannot
silently rot.  The scenarios double as precise documentation of subtle
semantic corners of the pipeline.
"""

import time

import pytest

from repro import solve
from repro.chc.semantics import bounded_least_fixpoint
from repro.chc.transform import preprocess
from repro.core.cex import search_counterexample
from repro.logic.adt import NAT, nat, natlist, natlist_system, nat_system
from repro.problems import even_system


class TestLubyRegression:
    """The original Luby implementation shifted by a negative count on
    i=4 (bit-twiddling reconstruction bug)."""

    def test_luby_defined_for_all_small_indices(self):
        from repro.sat.solver import _luby

        values = [_luby(i) for i in range(1, 64)]
        assert all(v >= 1 for v in values)
        # every value is a power of two and the subsequence structure holds
        assert all(v & (v - 1) == 0 for v in values)
        assert values[:7] == [1, 1, 2, 1, 1, 2, 4]


class TestSaturationPruningInterplay:
    """Head-height pruning once masked the 'unsaturated' flag, making the
    iterative-deepening refutation search stop at the first height even
    though deeper facts existed (EvenBroken became UNKNOWN)."""

    def test_prune_marks_unsaturated(self):
        from repro.problems import odd_unsat_system

        prepared = preprocess(odd_unsat_system())
        shallow = bounded_least_fixpoint(prepared, max_height=2)
        # the step clause was pruned at this height: must NOT claim
        # saturation, or deepening would stop prematurely
        assert not shallow.saturated

    def test_iterative_deepening_still_refutes(self):
        from repro.problems import odd_unsat_system

        prepared = preprocess(odd_unsat_system())
        result = search_counterexample(prepared, start_height=2, max_height=4)
        assert result.found


class TestReachableSubstructureSemantics:
    """Whole-domain quantification is unsound for the STLC query's
    existential witnesses when the model has junk elements; Herbrand
    evaluation must quantify over constructor-reachable elements only."""

    def test_junk_elements_are_excluded(self):
        from repro.logic.adt import S, Z
        from repro.logic.sorts import PredSymbol
        from repro.mace.model import FiniteModel

        p = PredSymbol("p", (NAT,))
        model = FiniteModel(
            {NAT: 3},
            {Z: {(): 0}, S: {(0,): 1, (1,): 0, (2,): 2}},
            {p: {(2,)}},  # p holds only on the junk element
        )
        adts = nat_system()
        reached = model.reachable_elements(adts)[NAT]
        assert reached == {0, 1}
        # a clause requiring some reachable p-element is falsified even
        # though a whole-domain check would be fooled by element 2
        from repro.chc.clauses import BodyAtom, CHCSystem, Clause
        from repro.logic.formulas import TRUE
        from repro.logic.terms import Var

        x = Var("x", NAT)
        system = CHCSystem(adts)
        system.add(Clause(TRUE, (), BodyAtom(p, (x,)), "all-p"))
        assert model.eval_clause(
            system.clauses[0], adts=adts, herbrand=True
        ) is not None

    def test_stlc_model_passes_exact_check(self):
        from repro.stlc import invariant_model, typecheck_vc

        prepared = preprocess(typecheck_vc())
        assert invariant_model().satisfies(prepared, herbrand=True)


class TestTimeoutEnforcement:
    """Deadlines were once only checked between size vectors / heights,
    letting a 5 s budget run for 100+ s inside a single SAT call or
    fixpoint saturation."""

    @pytest.mark.parametrize(
        "factory_name", ["diag_system", "ltgt_system"]
    )
    def test_divergent_problems_respect_timeout(self, factory_name):
        import repro.problems as problems

        system = getattr(problems, factory_name)()
        start = time.monotonic()
        result = solve(system, timeout=2)
        elapsed = time.monotonic() - start
        assert result.is_unknown
        assert elapsed < 12  # generous slack over the 2 s budget

    def test_cex_respects_timeout_inside_saturation(self):
        from repro.benchgen.builders import mirror_system

        prepared = preprocess(mirror_system(4))
        start = time.monotonic()
        search_counterexample(prepared, max_height=6, timeout=1)
        assert time.monotonic() - start < 10


class TestZigzagSemantics:
    """The first zigzag builder was accidentally unsatisfiable (its query
    compared unrelated path lengths); all five solvers agreed on UNSAT,
    which the campaign's correctness scoring caught."""

    def test_zigzag_is_satisfiable(self):
        from repro.benchgen.builders import tree_left_spine_zigzag_system

        result = solve(tree_left_spine_zigzag_system(), timeout=20)
        assert result.is_sat

    def test_zigzag_has_no_shallow_refutation(self):
        from repro.benchgen.builders import tree_left_spine_zigzag_system

        prepared = preprocess(tree_left_spine_zigzag_system())
        result = bounded_least_fixpoint(
            prepared, max_height=4, max_facts=50_000
        )
        assert result.refutation is None


class TestGuardedEvalDepth:
    """A bogus Even 'invariant' (~Z?(S.0(x))) once passed the bounded
    inductiveness check because query instantiations stopped one height
    short; implied-negative filtering plus deeper capped pools fixed it."""

    def test_bogus_even_candidate_rejected(self):
        from repro.solvers.elem import solve_elem

        result = solve_elem(even_system(), timeout=10)
        assert result.is_unknown  # no elementary invariant may be claimed

    def test_capped_pools_reach_beyond_fixed_height(self):
        from repro.solvers.elem import terms_capped

        terms = terms_capped(nat_system(), NAT, 10)
        from repro.logic.terms import height

        assert max(height(t) for t in terms) == 10


class TestParserSelectorNames:
    """Printer emits `ctor!i` selector names; the parser must map them
    back to the same selector functions (round-trip identity)."""

    def test_selector_roundtrip(self):
        from repro.chc.parser import parse_chc
        from repro.chc.printer import print_system

        text = """
        (declare-datatypes ((Nat 0)) (((Z) (S (prev Nat)))))
        (declare-fun p (Nat) Bool)
        (assert (forall ((x Nat)) (=> (= (prev x) Z) (p x))))
        """
        system = parse_chc(text)
        printed = print_system(system)
        assert "S!0" in printed
        reparsed = parse_chc(printed)
        assert print_system(reparsed) == printed


class TestVacuousQuerySoundness:
    """The Elem baseline once answered SAT on deep UNSAT problems: the
    query's constraint pinned a variable to a constant (S^10(Z)) beyond
    the capped instantiation pools, so the query had no instances and was
    vacuously satisfied.  Pools are now seeded with each clause's own
    ground subterms."""

    def test_deep_broken_mod_not_sat(self):
        from repro.benchgen.builders import broken_mod_system
        from repro.solvers.elem import solve_elem
        from repro.solvers.sizeelem import solve_sizeelem

        system = broken_mod_system(5, 2)
        assert not solve_elem(system, timeout=3).is_sat
        assert not solve_sizeelem(broken_mod_system(5, 2), timeout=3).is_sat

    def test_deep_broken_list_not_sat(self):
        from repro.benchgen.builders import broken_list_system
        from repro.solvers.elem import solve_elem

        assert not solve_elem(broken_list_system(6), timeout=3).is_sat

    def test_clause_constants_enter_instance_pools(self):
        from repro.benchgen.builders import broken_mod_system
        from repro.chc.clauses import CHCSystem
        from repro.solvers.elem import ground_instances

        system = broken_mod_system(5, 2)
        instances = ground_instances(system, terms_per_sort=8)
        # some instance must mention the deep constant S^10(Z)
        deep = nat(10)
        assert any(
            any(args == (deep,) for _, args in inst.body)
            for inst in instances
        )
