"""Tests for the CHC IR: clauses, systems, parser/printer round-trips."""

import pytest

from repro.chc.clauses import BodyAtom, CHCError, CHCSystem, Clause, clause
from repro.chc.parser import ParseError, parse_chc, parse_sexprs, tokenize
from repro.chc.printer import print_clause, print_system
from repro.logic.adt import NAT, nat_system
from repro.logic.formulas import Eq, TRUE, conj
from repro.logic.sorts import PredSymbol, Sort
from repro.logic.terms import App, Var
from repro.problems import (
    diag_system,
    even_system,
    evenleft_system,
    incdec_system,
    ltgt_system,
    s,
    z,
)

P = PredSymbol("p", (NAT,))
X = Var("x", NAT)
Y = Var("y", NAT)


class TestClauses:
    def test_body_atom_arity_checked(self):
        with pytest.raises(CHCError):
            BodyAtom(P, (X, Y))

    def test_body_atom_sort_checked(self):
        q = PredSymbol("q", (Sort("Other"),))
        with pytest.raises(CHCError):
            BodyAtom(q, (X,))

    def test_query_clause(self):
        c = Clause(TRUE, (BodyAtom(P, (X,)),), None)
        assert c.is_query
        assert not c.is_fact

    def test_fact_clause(self):
        c = Clause(TRUE, (), BodyAtom(P, (z(),)))
        assert c.is_fact

    def test_head_universal_block_rejected(self):
        blocked = BodyAtom(P, (X,), universal_vars=(X,))
        with pytest.raises(CHCError):
            Clause(TRUE, (), blocked)

    def test_free_vars_excludes_universals(self):
        blocked = BodyAtom(P, (X,), universal_vars=(X,))
        c = Clause(TRUE, (blocked,), None)
        assert c.free_vars() == set()

    def test_free_vars_includes_constraint(self):
        c = Clause(Eq(X, z()), (), BodyAtom(P, (Y,)))
        assert c.free_vars() == {X, Y}

    def test_substituted(self):
        c = Clause(Eq(X, z()), (BodyAtom(P, (X,)),), BodyAtom(P, (s(X),)))
        d = c.substituted({X: s(z())})
        assert d.body[0].args[0] == s(z())
        assert d.head.args[0] == s(s(z()))

    def test_renamed_is_alpha_equivalent(self):
        c = Clause(TRUE, (BodyAtom(P, (X,)),), BodyAtom(P, (s(X),)))
        d = c.renamed("_1")
        assert d.free_vars() == {Var("x_1", NAT)}

    def test_universal_vars_not_substituted(self):
        blocked = BodyAtom(P, (X,), universal_vars=(X,))
        c = Clause(TRUE, (blocked,), None)
        d = c.substituted({X: z()})
        assert d.body[0].args[0] == X


class TestSystems:
    def test_declare_and_add(self):
        system = CHCSystem(nat_system())
        c = Clause(TRUE, (), BodyAtom(P, (z(),)))
        system.add(c)
        assert "p" in system.predicates
        assert len(system) == 1

    def test_redeclaration_conflict(self):
        system = CHCSystem(nat_system())
        system.declare(P)
        with pytest.raises(CHCError):
            system.declare(PredSymbol("p", (NAT, NAT)))

    def test_queries_and_definites(self):
        system = even_system()
        assert len(system.queries) == 1
        assert len(system.definite_clauses) == 2

    def test_clauses_defining(self):
        system = even_system()
        even = system.predicates["even"]
        assert len(system.clauses_defining(even)) == 2

    def test_copy_is_independent(self):
        system = even_system()
        other = system.copy()
        other.add(Clause(TRUE, (), BodyAtom(P, (z(),))))
        assert len(other) == len(system) + 1

    def test_fresh_pred_name(self):
        system = even_system()
        assert system.fresh_pred_name("even") == "even_1"
        assert system.fresh_pred_name("new") == "new"


class TestTokenizer:
    def test_basic_tokens(self):
        assert list(tokenize("(a (b c))")) == ["(", "a", "(", "b", "c", ")", ")"]

    def test_comments_stripped(self):
        assert list(tokenize("a ; comment\nb")) == ["a", "b"]

    def test_quoted_symbols(self):
        assert list(tokenize("|hello world|")) == ["hello world"]

    def test_unterminated_quote(self):
        with pytest.raises(ParseError):
            list(tokenize("|oops"))

    def test_sexpr_parsing(self):
        assert parse_sexprs("(a (b) c) d") == [["a", ["b"], "c"], "d"]

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_sexprs("(a (b)")
        with pytest.raises(ParseError):
            parse_sexprs("a)")


EVEN_SMT = """
(set-logic HORN)
(declare-datatypes ((Nat 0)) (((Z) (S (prev Nat)))))
(declare-fun even (Nat) Bool)
(assert (forall ((x Nat)) (=> (= x Z) (even x))))
(assert (forall ((x Nat) (y Nat))
  (=> (and (= x (S (S y))) (even y)) (even x))))
(assert (forall ((x Nat) (y Nat))
  (=> (and (even x) (even y) (= y (S x))) false)))
(check-sat)
"""


class TestParser:
    def test_parse_even(self):
        system = parse_chc(EVEN_SMT)
        assert len(system) == 3
        assert len(system.queries) == 1
        assert "even" in system.predicates

    def test_selector_parsing(self):
        text = EVEN_SMT.replace(
            "(= x (S (S y)))", "(= (prev x) (S y))"
        )
        system = parse_chc(text)
        assert len(system) == 3

    def test_tester_parsing(self):
        text = """
        (declare-datatypes ((Nat 0)) (((Z) (S (prev Nat)))))
        (declare-fun p (Nat) Bool)
        (assert (forall ((x Nat)) (=> ((_ is Z) x) (p x))))
        """
        system = parse_chc(text)
        assert len(system) == 1

    def test_distinct_parsing(self):
        text = """
        (declare-datatypes ((Nat 0)) (((Z) (S (prev Nat)))))
        (declare-fun p (Nat) Bool)
        (assert (forall ((x Nat)) (=> (distinct x Z) (p x))))
        """
        system = parse_chc(text)
        assert len(system) == 1

    def test_unknown_symbol_rejected(self):
        text = """
        (declare-datatypes ((Nat 0)) (((Z) (S (prev Nat)))))
        (declare-fun p (Nat) Bool)
        (assert (forall ((x Nat)) (=> (= x W) (p x))))
        """
        with pytest.raises(ParseError):
            parse_chc(text)

    def test_unsupported_command_rejected(self):
        with pytest.raises(ParseError):
            parse_chc("(define-fun f () Bool true)")

    def test_no_datatypes_rejected(self):
        with pytest.raises(ParseError):
            parse_chc("(declare-fun p () Bool)(assert p)")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "factory",
        [even_system, incdec_system, diag_system, ltgt_system, evenleft_system],
        ids=["even", "incdec", "diag", "ltgt", "evenleft"],
    )
    def test_print_parse_roundtrip(self, factory):
        system = factory()
        text = print_system(system)
        reparsed = parse_chc(text)
        assert len(reparsed) == len(system)
        assert set(reparsed.predicates) == set(system.predicates)
        # round-trip again: printing the reparse is a fixpoint
        assert print_system(reparsed) == text

    def test_solver_agrees_after_roundtrip(self):
        from repro import solve

        system = even_system()
        reparsed = parse_chc(print_system(system))
        assert solve(reparsed, timeout=10).is_sat
