"""Tests for quantifier-free formulas: NNF, DNF, substitution, evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.chc.semantics import eval_constraint
from repro.logic.adt import NAT, S, Z, nat, nat_system
from repro.logic.formulas import (
    And,
    Eq,
    FALSE,
    FormulaError,
    Not,
    Or,
    PredAtom,
    TRUE,
    Tester,
    atoms,
    conj,
    diseq,
    disj,
    dnf,
    formula_vars,
    literal_parts,
    neg,
    nnf,
    substitute_formula,
)
from repro.logic.sorts import PredSymbol, Sort
from repro.logic.terms import App, Var

ADTS = nat_system()
X = Var("x", NAT)
Y = Var("y", NAT)


def z():
    return App(Z)


def s(t):
    return App(S, (t,))


class TestConstruction:
    def test_ill_sorted_equality_rejected(self):
        other = Var("o", Sort("Other"))
        with pytest.raises(FormulaError):
            Eq(X, other)

    def test_tester_sort_checked(self):
        with pytest.raises(FormulaError):
            Tester(S, Var("o", Sort("Other")))

    def test_pred_atom_arity_checked(self):
        p = PredSymbol("p", (NAT, NAT))
        with pytest.raises(FormulaError):
            PredAtom(p, (z(),))

    def test_conj_flattens(self):
        f = conj(Eq(X, z()), conj(Eq(Y, z()), TRUE))
        assert isinstance(f, And)
        assert len(f.operands) == 2

    def test_conj_of_false_is_false(self):
        assert conj(Eq(X, z()), FALSE) == FALSE

    def test_disj_of_true_is_true(self):
        assert disj(Eq(X, z()), TRUE) == TRUE

    def test_neg_cancels_double_negation(self):
        f = Eq(X, z())
        assert neg(neg(f)) == f

    def test_diseq_builds_negated_equality(self):
        f = diseq(z(), s(z()))
        assert isinstance(f, Not)
        assert isinstance(f.operand, Eq)


class TestTraversal:
    def test_formula_vars(self):
        f = conj(Eq(X, z()), diseq(Y, s(X)))
        assert formula_vars(f) == {X, Y}

    def test_atoms_ignores_polarity(self):
        f = conj(Eq(X, z()), Not(Eq(Y, z())))
        assert len(list(atoms(f))) == 2

    def test_literal_parts(self):
        atom, positive = literal_parts(Not(Eq(X, z())))
        assert not positive
        assert isinstance(atom, Eq)
        atom, positive = literal_parts(Eq(X, z()))
        assert positive

    def test_literal_parts_rejects_non_literal(self):
        with pytest.raises(FormulaError):
            literal_parts(Not(conj(Eq(X, z()), Eq(Y, z()))))

    def test_substitute_formula(self):
        f = conj(Eq(X, z()), Not(Eq(Y, s(X))))
        g = substitute_formula(f, {X: s(z())})
        assert Eq(s(z()), z()) in g.operands


# ----------------------------------------------------------------------
# semantic equivalence of NNF / DNF, via ground evaluation
# ----------------------------------------------------------------------
def ground_formulas():
    """Strategy producing ground Nat constraints of bounded depth."""
    terms = st.integers(min_value=0, max_value=3).map(nat)
    leaves = st.builds(Eq, terms, terms)
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(Not, children),
            st.builds(lambda a, b: And((a, b)), children, children),
            st.builds(lambda a, b: Or((a, b)), children, children),
        ),
        max_leaves=8,
    )


@given(ground_formulas())
def test_nnf_preserves_truth(formula):
    assert eval_constraint(formula, ADTS) == eval_constraint(
        nnf(formula), ADTS
    )


@given(ground_formulas())
def test_nnf_pushes_negations_to_atoms(formula):
    def check(f):
        if isinstance(f, Not):
            assert isinstance(f.operand, (Eq, Tester, PredAtom))
        elif isinstance(f, (And, Or)):
            for operand in f.operands:
                check(operand)

    check(nnf(formula))


@given(ground_formulas())
def test_dnf_preserves_truth(formula):
    cubes = dnf(formula)
    value = any(
        all(eval_constraint(lit, ADTS) for lit in cube) for cube in cubes
    )
    assert value == eval_constraint(formula, ADTS)


@given(ground_formulas())
def test_double_negation_evaluates_identically(formula):
    assert eval_constraint(Not(Not(formula)), ADTS) == eval_constraint(
        formula, ADTS
    )
