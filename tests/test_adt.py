"""Tests for ADT systems: Herbrand enumeration, counting, expanding sorts."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.logic.adt import (
    ADT,
    ADTError,
    ADTSystem,
    NAT,
    NATLIST,
    TREE,
    nat,
    nat_system,
    nat_value,
    natlist,
    natlist_system,
    tree_system,
)
from repro.logic.sorts import FuncSymbol, Sort
from repro.logic.terms import App, height, is_ground, size


class TestDeclarations:
    def test_duplicate_sorts_rejected(self):
        with pytest.raises(ADTError):
            ADTSystem(
                [
                    ADT(NAT, nat_system().constructors(NAT)),
                    ADT(NAT, nat_system().constructors(NAT)),
                ]
            )

    def test_empty_adt_rejected(self):
        with pytest.raises(ADTError):
            ADT(Sort("E"), ())

    def test_uninhabited_sort_rejected(self):
        loop = Sort("Loop")
        c = FuncSymbol("c", (loop,), loop)
        with pytest.raises(ADTError):
            ADTSystem([ADT(loop, (c,))])

    def test_wrong_result_sort_rejected(self):
        other = Sort("Other")
        c = FuncSymbol("c", (), other)
        with pytest.raises(ADTError):
            ADT(NAT, (c,))

    def test_cross_adt_constructor_sharing_rejected(self):
        z2 = FuncSymbol("Z", (), TREE)
        with pytest.raises(ADTError):
            ADTSystem(
                [
                    ADT(NAT, nat_system().constructors(NAT)),
                    ADT(TREE, (z2,)),
                ]
            )

    def test_constructor_lookup(self):
        adts = nat_system()
        assert adts.constructor("S").arity == 1
        with pytest.raises(ADTError):
            adts.constructor("missing")


class TestEnumeration:
    def test_nat_heights_are_singletons(self):
        adts = nat_system()
        for h in range(1, 6):
            layer = adts.terms_of_height(NAT, h)
            assert len(layer) == 1
            assert height(layer[0]) == h

    def test_tree_layer_counts(self):
        adts = tree_system()
        # t(1)=1 (leaf); t(2)=1; t(3)= pairs with max height 2 = 3
        assert len(adts.terms_of_height(TREE, 1)) == 1
        assert len(adts.terms_of_height(TREE, 2)) == 1
        assert len(adts.terms_of_height(TREE, 3)) == 3

    def test_terms_up_to_height_is_cumulative(self):
        adts = tree_system()
        upto = adts.terms_up_to_height(TREE, 3)
        assert len(upto) == 5
        assert all(is_ground(t) and height(t) <= 3 for t in upto)

    def test_layers_are_disjoint_and_exact(self):
        adts = natlist_system()
        for h in range(1, 5):
            for t in adts.terms_of_height(NATLIST, h):
                assert height(t) == h

    def test_iter_terms_height_ordered(self):
        adts = nat_system()
        heights = [height(t) for t in adts.iter_terms(NAT, limit=6)]
        assert heights == sorted(heights)

    def test_min_height(self):
        adts = natlist_system()
        assert adts.min_height(NAT) == 1
        assert adts.min_height(NATLIST) == 1

    def test_infinite_sort_detection(self):
        assert nat_system().is_infinite_sort(NAT)
        assert natlist_system().is_infinite_sort(NATLIST)
        finite = Sort("Fin")
        a = FuncSymbol("a", (), finite)
        b = FuncSymbol("b", (), finite)
        adts = ADTSystem([ADT(finite, (a, b))])
        assert not adts.is_infinite_sort(finite)


class TestCounting:
    def test_nat_size_classes_are_singletons(self):
        adts = nat_system()
        for k in range(1, 12):
            assert adts.count_terms_of_size(NAT, k) == 1

    def test_tree_sizes_are_odd_catalan(self):
        adts = tree_system()
        # sizes: 1 node count follows Catalan numbers at odd sizes
        assert adts.count_terms_of_size(TREE, 1) == 1
        assert adts.count_terms_of_size(TREE, 2) == 0
        assert adts.count_terms_of_size(TREE, 3) == 1
        assert adts.count_terms_of_size(TREE, 5) == 2
        assert adts.count_terms_of_size(TREE, 7) == 5
        assert adts.count_terms_of_size(TREE, 9) == 14

    def test_counts_match_brute_force(self):
        adts = natlist_system()
        by_size = {}
        for t in adts.terms_up_to_height(NATLIST, 4):
            by_size[size(t)] = by_size.get(size(t), 0) + 1
        # brute force over height<=4 is complete for sizes<=4
        for k in range(1, 5):
            assert adts.count_terms_of_size(NATLIST, k) == by_size.get(k, 0)

    def test_size_image(self):
        adts = tree_system()
        assert adts.size_image(TREE, 10) == [1, 3, 5, 7, 9]

    def test_expanding_examples_from_paper(self):
        # Example 7: Nat is not expanding, List is; Tree is too
        assert not nat_system().is_expanding_sort(NAT)
        assert natlist_system().is_expanding_sort(NATLIST)
        assert tree_system().is_expanding_sort(TREE)


class TestGroundOps:
    def test_select(self):
        adts = nat_system()
        assert adts.select("S", 0, nat(3)) == nat(2)
        with pytest.raises(ADTError):
            adts.select("S", 0, nat(0))

    def test_test(self):
        adts = nat_system()
        assert adts.test("S", nat(1))
        assert not adts.test("S", nat(0))
        assert adts.test("Z", nat(0))

    def test_natlist_builder(self):
        t = natlist([1, 2])
        assert t.func.name == "cons"
        assert nat_value(t.args[0]) == 1

    def test_nat_value_rejects_non_numeral(self):
        with pytest.raises(ADTError):
            nat_value(App(tree_system().constructor("leaf")))


@given(st.integers(min_value=1, max_value=8))
def test_count_nat_terms_by_height_brute_force(h):
    adts = nat_system()
    layer = adts.terms_of_height(NAT, h)
    assert [nat_value(t) for t in layer] == [h - 1]


@given(st.lists(st.integers(min_value=0, max_value=3), max_size=4))
def test_natlist_size_formula(values):
    # size = 1 (nil) + per element (1 cons + numeral size)
    t = natlist(values)
    expected = 1 + sum(2 + v for v in values)
    assert size(t) == expected
