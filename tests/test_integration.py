"""Cross-module integration tests: SMT-LIB in, verified invariants out."""

import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro import solve
from repro.chc.parser import parse_chc
from repro.chc.printer import print_system
from repro.chc.transform import preprocess
from repro.cli import main as cli_main
from repro.logic.adt import nat
from repro.problems import even_system, odd_unsat_system


EVEN_SMT = """
(set-logic HORN)
(declare-datatypes ((Nat 0)) (((Z) (S (prev Nat)))))
(declare-fun even (Nat) Bool)
(assert (forall ((x Nat)) (=> (= x Z) (even x))))
(assert (forall ((x Nat) (y Nat))
  (=> (and (= x (S (S y))) (even y)) (even x))))
(assert (forall ((x Nat) (y Nat))
  (=> (and (even x) (even y) (= y (S x))) false)))
(check-sat)
"""

BROKEN_SMT = """
(set-logic HORN)
(declare-datatypes ((Nat 0)) (((Z) (S (prev Nat)))))
(declare-fun p (Nat) Bool)
(assert (forall ((x Nat)) (=> (= x Z) (p x))))
(assert (forall ((x Nat)) (=> (p x) (p (S x)))))
(assert (forall ((x Nat)) (=> (and (p x) (= x (S (S Z)))) false)))
(check-sat)
"""


class TestSmtLibToInvariant:
    def test_even_from_text(self):
        system = parse_chc(EVEN_SMT)
        result = solve(system, timeout=30)
        assert result.is_sat
        even = system.predicates["even"]
        for n in range(8):
            assert result.invariant.member(even, (nat(n),)) == (n % 2 == 0)

    def test_unsat_from_text(self):
        result = solve(parse_chc(BROKEN_SMT), timeout=10)
        assert result.is_unsat

    def test_roundtrip_stability(self):
        system = parse_chc(EVEN_SMT)
        once = print_system(system)
        twice = print_system(parse_chc(once))
        assert once == twice


class TestCli:
    def test_sat_run(self, tmp_path, capsys):
        path = tmp_path / "even.smt2"
        path.write_text(EVEN_SMT)
        code = cli_main([str(path), "--timeout", "30", "--model"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.splitlines()[0] == "sat"
        assert "automata" in out

    def test_unsat_run_with_cex(self, tmp_path, capsys):
        path = tmp_path / "broken.smt2"
        path.write_text(BROKEN_SMT)
        code = cli_main([str(path), "--timeout", "10", "--cex"])
        out = capsys.readouterr().out
        assert code == 0
        assert out.splitlines()[0] == "unsat"
        assert "false" in out

    def test_baseline_selection(self, tmp_path, capsys):
        path = tmp_path / "even.smt2"
        path.write_text(EVEN_SMT)
        code = cli_main(
            [str(path), "--solver", "sizeelem", "--timeout", "20"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.splitlines()[0] == "sat"

    def test_parse_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "bad.smt2"
        path.write_text("(this is not smtlib")
        assert cli_main([str(path)]) == 2

    def test_missing_file_exit_code(self):
        assert cli_main(["/nonexistent.smt2"]) == 2

    def test_module_invocation(self, tmp_path):
        path = tmp_path / "even.smt2"
        path.write_text(EVEN_SMT)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", str(path)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert proc.stdout.startswith("sat")


class TestSatisfiabilityPreservation:
    """Theorem 5 end to end, property-style: for random mod-family
    programs, the pipeline's SAT/UNSAT verdict matches ground truth."""

    @given(
        st.integers(min_value=2, max_value=4),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=12, deadline=None)
    def test_mod_family_verdicts(self, modulus, residue, clash):
        from repro.benchgen.builders import nat_mod_system

        residue = residue % modulus
        system = nat_mod_system(modulus, residue, clash)
        safe = clash % modulus != 0
        result = solve(system, timeout=15)
        if safe:
            assert result.is_sat
            # and the invariant really is inductive over Herbrand terms
            assert result.invariant.verify_bounded(
                system, max_height=4
            ) is None
        else:
            # the refutation instantiates P at heights residue+1 and
            # residue+clash+1; within the default iterative-deepening
            # budget (height 4) the verdict must be UNSAT, beyond it the
            # solver may stay undecided — but never report SAT
            if residue + clash + 1 <= 4:
                assert result.is_unsat
            else:
                assert not result.is_sat


class TestPreprocessSolveCommute:
    def test_solving_preprocessed_system_agrees(self):
        system = even_system()
        direct = solve(system, timeout=20)
        pre = solve(preprocess(system), timeout=20)
        assert direct.status == pre.status
