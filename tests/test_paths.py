"""Tests for selector paths: application, replacement, leaves (Sec. 6.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.logic.adt import (
    NAT,
    NATLIST,
    TREE,
    nat,
    nat_system,
    natlist,
    natlist_system,
    tree_system,
)
from repro.logic.terms import App, height
from repro.problems import leaf, node
from repro.theory.paths import (
    EMPTY_PATH,
    Path,
    PathError,
    Step,
    all_paths,
    apply_path,
    is_leaf_term,
    leaves,
    path_defined,
    path_sorts,
    paths_of,
    replace_at,
    replace_many,
)

NATS = nat_system()
TREES = tree_system()
LISTS = natlist_system()


def p(*steps):
    return Path(tuple(Step(c, i) for c, i in steps))


class TestApplication:
    def test_empty_path_is_identity(self):
        t = nat(3)
        assert apply_path(EMPTY_PATH, t, NATS) == t

    def test_single_selector(self):
        assert apply_path(p(("S", 0)), nat(3), NATS) == nat(2)

    def test_innermost_last_convention(self):
        # steps are stored outermost-first: S.0 cons.0 selects the head
        # of the list first, then the predecessor of that element
        t = natlist([2, 5])
        path = p(("S", 0), ("cons", 0))
        assert apply_path(path, t, LISTS) == nat(1)

    def test_undefined_on_wrong_constructor(self):
        with pytest.raises(PathError):
            apply_path(p(("S", 0)), nat(0), NATS)

    def test_path_defined(self):
        assert path_defined(p(("S", 0)), nat(1), NATS)
        assert not path_defined(p(("S", 0)), nat(0), NATS)

    def test_path_sorts(self):
        path = p(("S", 0), ("cons", 0))
        assert path_sorts(path, LISTS, NATLIST) == NAT
        assert path_sorts(p(("node", 0)), LISTS, NATLIST) is None


class TestSuffixes:
    def test_suffix_is_applied_first_part(self):
        longer = p(("S", 0), ("cons", 0))
        suffix = p(("cons", 0))
        assert suffix.is_suffix_of(longer)
        assert not longer.is_suffix_of(suffix)

    def test_overlap(self):
        a = p(("S", 0), ("S", 0))
        b = p(("S", 0))
        assert a.overlaps(b)
        c = p(("cons", 1))
        assert not a.overlaps(c)

    def test_strip_suffix(self):
        longer = p(("S", 0), ("cons", 0))
        rest = longer.strip_suffix(p(("cons", 0)))
        assert rest == p(("S", 0))
        assert longer.strip_suffix(p(("cons", 1))) is None

    def test_compose_inverts_strip(self):
        longer = p(("S", 0), ("S", 0), ("cons", 0))
        suffix = p(("cons", 0))
        rest = longer.strip_suffix(suffix)
        assert rest.compose(suffix) == longer


class TestReplacement:
    def test_replace_at_root(self):
        assert replace_at(nat(3), EMPTY_PATH, nat(0), NATS) == nat(0)

    def test_replace_deep(self):
        # replace the Z inside S(S(Z)) with S(Z)
        path = p(("S", 0), ("S", 0))
        assert replace_at(nat(2), path, nat(1), NATS) == nat(3)

    def test_simultaneous_replacement(self):
        t = node(leaf(), leaf())
        left = p(("node", 0))
        right = p(("node", 1))
        out = replace_many(
            t, [(left, node(leaf(), leaf())), (right, node(leaf(), leaf()))],
            TREES,
        )
        assert out == node(node(leaf(), leaf()), node(leaf(), leaf()))

    def test_overlapping_paths_rejected(self):
        t = node(node(leaf(), leaf()), leaf())
        outer = p(("node", 0))
        inner = p(("node", 0), ("node", 0))
        with pytest.raises(PathError):
            replace_many(t, [(outer, leaf()), (inner, leaf())], TREES)

    def test_duplicate_path_same_replacement_ok(self):
        t = nat(2)
        path = p(("S", 0))
        out = replace_many(t, [(path, nat(0)), (path, nat(0))], NATS)
        assert out == nat(1)

    def test_duplicate_path_conflicting_rejected(self):
        path = p(("S", 0))
        with pytest.raises(PathError):
            replace_many(nat(2), [(path, nat(0)), (path, nat(1))], NATS)


class TestLeaves:
    def test_leaf_term_definition(self):
        # Definition 4: leaf terms of sort Tree contain no proper Tree
        # subterm, so only `leaf` qualifies
        assert is_leaf_term(leaf(), TREE, TREES)
        assert not is_leaf_term(node(leaf(), leaf()), TREE, TREES)

    def test_nat_leaves_of_numeral(self):
        found = leaves(nat(3), NAT, NATS)
        assert len(found) == 1
        assert apply_path(found[0], nat(3), NATS) == nat(0)

    def test_tree_leaves_of_full_tree(self):
        t = node(node(leaf(), leaf()), leaf())
        found = leaves(t, TREE, TREES)
        assert len(found) == 3
        for path in found:
            assert apply_path(path, t, TREES) == leaf()

    def test_list_nat_leaves(self):
        # Nat leaf terms inside a NatList: the Z under each element
        t = natlist([1])
        found = leaves(t, NAT, LISTS)
        assert len(found) == 1


class TestAllPaths:
    def test_depth_zero_is_just_empty(self):
        found = list(all_paths(NATS, NAT, 0))
        assert found == [(EMPTY_PATH, NAT)]

    def test_nat_depth_two(self):
        found = list(all_paths(NATS, NAT, 2))
        assert len(found) == 3  # eps, S.0, S.0 S.0

    def test_all_paths_are_well_sorted(self):
        for path, sort in all_paths(LISTS, NATLIST, 2):
            assert path_sorts(path, LISTS, NATLIST) == sort


# ----------------------------------------------------------------------
# property: every enumerated path selects the right subterm
# ----------------------------------------------------------------------
@st.composite
def random_trees(draw, max_depth=4):
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    if depth == 0:
        return leaf()
    return node(
        draw(random_trees(max_depth=depth - 1)),
        draw(random_trees(max_depth=depth - 1)),
    )


@given(random_trees())
def test_paths_of_agree_with_apply(t):
    for path, sub in paths_of(t, TREES):
        assert apply_path(path, t, TREES) == sub


@given(random_trees(), random_trees())
def test_replace_then_apply_roundtrip(t, filler):
    for path, _ in paths_of(t, TREES):
        replaced = replace_at(t, path, filler, TREES)
        assert apply_path(path, replaced, TREES) == filler


@given(random_trees())
def test_leaves_are_maximal_depth_witnesses(t):
    for path in leaves(t, TREE, TREES):
        sub = apply_path(path, t, TREES)
        assert sub == leaf()
