"""End-to-end tests for RInGen (the Sec. 4 pipeline) on the paper programs."""

import pytest

from repro import RInGen, RInGenConfig, Status, solve
from repro.chc.transform import preprocess
from repro.core.cex import search_counterexample
from repro.core.regular_model import RegularModel
from repro.core.result import sat, unknown, unsat
from repro.logic.adt import nat, nat_value
from repro.problems import (
    EVEN,
    diag_system,
    diseq_zz_system,
    even_system,
    evenleft_system,
    incdec_system,
    ltgt_system,
    odd_unsat_system,
    z_neq_sz_system,
)
from repro.theory.atlas import even_member, evenleft_member


class TestPaperPrograms:
    def test_even_is_sat_with_size_2_model(self):
        result = solve(even_system(), timeout=30)
        assert result.is_sat
        assert result.details["model_size"] == 2

    def test_even_invariant_is_the_even_numerals(self):
        result = solve(even_system(), timeout=30)
        model = result.invariant
        assert isinstance(model, RegularModel)
        for n in range(10):
            assert model.member(EVEN, (nat(n),)) == even_member(nat(n))

    def test_incdec_is_sat(self):
        result = solve(incdec_system(), timeout=30)
        assert result.is_sat
        # the mod-3 style model of Prop. 4 has 3 elements
        assert result.details["model_size"] == 3

    def test_evenleft_is_sat(self):
        result = solve(evenleft_system(), timeout=30)
        assert result.is_sat
        model = result.invariant
        evenleft = [
            p for p in model.automata if p.name == "evenleft"
        ][0]
        from repro.problems import leaf, node

        for t in [leaf(), node(leaf(), leaf()), node(node(leaf(), leaf()), leaf())]:
            assert model.member(evenleft, (t,)) == evenleft_member(t)

    def test_diag_diverges(self):
        result = solve(diag_system(), timeout=3)
        assert result.is_unknown

    def test_ltgt_diverges(self):
        result = solve(ltgt_system(), timeout=3)
        assert result.is_unknown

    def test_z_neq_sz_unsat(self):
        result = solve(z_neq_sz_system(), timeout=10)
        assert result.is_unsat

    def test_diseq_zz_sat(self):
        result = solve(diseq_zz_system(), timeout=10)
        assert result.is_sat

    def test_broken_even_unsat_with_derivation(self):
        result = solve(odd_unsat_system(), timeout=10)
        assert result.is_unsat
        assert result.refutation is not None
        assert result.refutation.conclusion is None


class TestRegularModelVerification:
    def test_exact_verification_passes(self):
        system = even_system()
        result = solve(system, timeout=30)
        prepared = preprocess(system)
        assert result.invariant.verify_exact(prepared)

    def test_bounded_verification_passes(self):
        system = even_system()
        result = solve(system, timeout=30)
        assert result.invariant.verify_bounded(system, max_height=5) is None

    def test_describe_mentions_automata(self):
        result = solve(even_system(), timeout=30)
        text = result.invariant.describe()
        assert "automata" in text
        assert "even" in text

    def test_interpretation_gives_diseq_true_semantics(self):
        from repro.chc.transform import diseq_symbol
        from repro.logic.adt import NAT

        result = solve(even_system(), timeout=30)
        model = result.invariant
        d = diseq_symbol(NAT)
        assert model.interpretation(d, (nat(0), nat(1)))
        assert not model.interpretation(d, (nat(1), nat(1)))


class TestConfig:
    def test_unknown_option_rejected(self):
        with pytest.raises(TypeError):
            solve(even_system(), nonsense=True)

    def test_verification_can_be_disabled(self):
        result = solve(even_system(), timeout=30, verify=False)
        assert result.is_sat

    def test_tiny_model_budget_gives_unknown(self):
        result = solve(even_system(), timeout=5, max_model_size=1)
        assert result.is_unknown

    def test_result_str(self):
        result = solve(even_system(), timeout=30)
        assert "sat" in str(result)

    def test_result_constructors(self):
        assert sat("s", None).is_sat
        assert unsat("s", None).is_unsat
        assert unknown("s", "why").is_unknown
        assert unknown("s", "why").reason == "why"


class TestCexSearch:
    def test_finds_shallow_refutation(self):
        prepared = preprocess(odd_unsat_system())
        out = search_counterexample(prepared, max_height=4)
        assert out.found
        assert out.refutation.depth() >= 2

    def test_no_refutation_in_safe_system(self):
        prepared = preprocess(even_system())
        out = search_counterexample(prepared, max_height=4)
        assert not out.found

    def test_respects_timeout(self):
        import time

        from repro.benchgen.builders import mirror_system

        prepared = preprocess(mirror_system(3))
        start = time.monotonic()
        search_counterexample(prepared, max_height=5, timeout=0.5)
        assert time.monotonic() - start < 5.0
