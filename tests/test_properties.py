"""Deep property-based test suite over the core invariants of the repo.

These are the whole-pipeline properties DESIGN.md commits to:

* parser/printer round-trips on *generated* CHC systems,
* preprocessing preserves the bounded least model of the original
  predicates (the executable face of Theorem 5),
* Theorem 1 on random multi-sorted finite models (NatList this time),
* boolean automata algebra laws (De Morgan, distributivity) checked by
  language equivalence on randomly generated mod-automata,
* the diseq rules' least model is exactly disequality for every ADT
  system in the repo (Lemma 3 across signatures).
"""

import itertools

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.automata.dfta import make_dfta
from repro.automata.from_model import model_to_automaton
from repro.automata.ops import (
    complement,
    difference,
    equivalent,
    intersection,
    union,
)
from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.chc.parser import parse_chc
from repro.chc.printer import print_system
from repro.chc.semantics import bounded_least_fixpoint
from repro.chc.transform import diseq_rules, diseq_symbol, preprocess
from repro.logic.adt import (
    CONS,
    NAT,
    NATLIST,
    NIL,
    S,
    Z,
    nat,
    nat_system,
    natlist_system,
    tree_system,
)
from repro.logic.formulas import Eq, TRUE, conj
from repro.logic.sorts import PredSymbol, Sort
from repro.logic.terms import App, Var
from repro.mace.model import FiniteModel
from repro.problems import s, z

NATS = nat_system()
LISTS = natlist_system()


# ----------------------------------------------------------------------
# generated CHC systems round-trip through SMT-LIB
# ----------------------------------------------------------------------
@st.composite
def random_mod_system(draw):
    modulus = draw(st.integers(min_value=1, max_value=4))
    residue = draw(st.integers(min_value=0, max_value=3)) % modulus
    clash = draw(st.integers(min_value=1, max_value=4))
    from repro.benchgen.builders import nat_mod_system

    return nat_mod_system(modulus, residue, clash)


@given(random_mod_system())
@settings(max_examples=40, deadline=None)
def test_print_parse_roundtrip_generated(system):
    text = print_system(system)
    reparsed = parse_chc(text)
    assert len(reparsed) == len(system)
    assert print_system(reparsed) == text


@given(random_mod_system())
@settings(max_examples=20, deadline=None)
def test_preprocess_preserves_bounded_least_model(system):
    """Theorem 5's working direction: preprocessing neither adds nor
    removes derivable facts of the original predicates (bounded check)."""
    prepared = preprocess(system)
    before = bounded_least_fixpoint(
        system, max_height=4, check_queries=False
    )
    after = bounded_least_fixpoint(
        prepared, max_height=4, check_queries=False
    )
    for pred in system.predicates.values():
        assert before.facts[pred] == after.facts[pred]


# ----------------------------------------------------------------------
# Theorem 1 on random NatList models (two sorts, binary constructor)
# ----------------------------------------------------------------------
@given(st.data())
@settings(max_examples=60, deadline=None)
def test_theorem1_natlist_models(data):
    nat_size = data.draw(st.integers(min_value=1, max_value=3))
    list_size = data.draw(st.integers(min_value=1, max_value=3))
    z_val = data.draw(st.integers(min_value=0, max_value=nat_size - 1))
    s_table = {
        (i,): data.draw(st.integers(min_value=0, max_value=nat_size - 1))
        for i in range(nat_size)
    }
    nil_val = data.draw(st.integers(min_value=0, max_value=list_size - 1))
    cons_table = {
        (i, j): data.draw(
            st.integers(min_value=0, max_value=list_size - 1)
        )
        for i in range(nat_size)
        for j in range(list_size)
    }
    pred = PredSymbol("mem", (NATLIST,))
    relation = {
        (j,) for j in range(list_size) if data.draw(st.booleans())
    }
    model = FiniteModel(
        {NAT: nat_size, NATLIST: list_size},
        {
            Z: {(): z_val},
            S: s_table,
            App(NIL).func: {(): nil_val},
            CONS: cons_table,
        },
        {pred: relation},
    )
    auto = model_to_automaton(model, LISTS, pred)
    for t in LISTS.terms_up_to_height(NATLIST, 3):
        assert auto.accepts(t) == ((model.eval_term(t),) in relation)


# ----------------------------------------------------------------------
# boolean algebra laws over random mod automata
# ----------------------------------------------------------------------
def mod_automaton(m, residues):
    transitions = {("Z", ()): 0}
    for i in range(m):
        transitions[("S", (i,))] = (i + 1) % m
    return make_dfta(
        NATS, {NAT: m}, transitions, [(r,) for r in residues], (NAT,)
    )


mod_langs = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.sets(st.integers(min_value=0, max_value=3)),
).map(lambda mr: mod_automaton(mr[0], sorted(r for r in mr[1] if r < mr[0])))


@given(mod_langs, mod_langs)
@settings(max_examples=40, deadline=None)
def test_de_morgan(a, b):
    lhs = complement(union(a, b))
    rhs = intersection(complement(a), complement(b))
    assert equivalent(lhs, rhs)


@given(mod_langs, mod_langs)
@settings(max_examples=40, deadline=None)
def test_difference_via_complement(a, b):
    assert equivalent(difference(a, b), intersection(a, complement(b)))


@given(mod_langs, mod_langs, mod_langs)
@settings(max_examples=25, deadline=None)
def test_distributivity(a, b, c):
    lhs = intersection(a, union(b, c))
    rhs = union(intersection(a, b), intersection(a, c))
    assert equivalent(lhs, rhs)


@given(mod_langs)
@settings(max_examples=30, deadline=None)
def test_union_idempotent_and_complement_involutive(a):
    assert equivalent(union(a, a), a)
    assert equivalent(complement(complement(a)), a)


# ----------------------------------------------------------------------
# Lemma 3 across every ADT system in the repo
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "adts,sort,height",
    [
        (nat_system(), NAT, 4),
        (natlist_system(), NATLIST, 3),
        (tree_system(), Sort("Tree"), 3),
    ],
    ids=["nat", "natlist", "tree"],
)
def test_diseq_least_model_is_disequality(adts, sort, height):
    system = CHCSystem(adts)
    used = {sort}
    frontier = [sort]
    while frontier:
        current = frontier.pop()
        for c in adts.constructors(current):
            for arg in c.arg_sorts:
                if arg not in used:
                    used.add(arg)
                    frontier.append(arg)
    for target in sorted(used, key=lambda s: s.name):
        for rule in diseq_rules(adts, target):
            system.add(rule)
    result = bounded_least_fixpoint(
        system, max_height=height, check_queries=False, max_facts=500_000
    )
    facts = result.facts[diseq_symbol(sort)]
    terms = adts.terms_up_to_height(sort, height)
    for a in terms:
        for b in terms:
            assert ((a, b) in facts) == (a != b), (a, b)


# ----------------------------------------------------------------------
# regular model membership is stable across views
# ----------------------------------------------------------------------
def test_invariant_member_equals_automaton_acceptance():
    from repro import solve
    from repro.problems import EVEN, even_system

    result = solve(even_system(), timeout=20)
    model = result.invariant
    auto = model.automata[EVEN]
    for n in range(12):
        t = nat(n)
        assert model.member(EVEN, (t,)) == auto.accepts(t)
