"""Campaign batch mode: the engine pool and cross-problem sharing."""

import pytest

from repro import solve
from repro.benchgen.builders import nat_mod_system, nat_two_residues_system
from repro.chc.transform import preprocess
from repro.core.ringen import RInGenConfig
from repro.harness import batch_order, run_campaign
from repro.benchgen.suite import Suite
from repro.mace import EnginePool, find_model, signature_fingerprint
from repro.mace.finder import FinderError, ModelFinder, clause_key
from repro.problems import even_system, odd_unsat_system
from repro.stlc import stlc_problems


def stlc_batch(count=4):
    return [
        p for p in stlc_problems() if p.category == "non-tautology"
    ][:count]


class TestFingerprint:
    def test_same_family_shares_fingerprint(self):
        a = signature_fingerprint(preprocess(nat_mod_system(2, 0, 1)))
        b = signature_fingerprint(preprocess(nat_mod_system(5, 1, 2)))
        assert a == b

    def test_different_signatures_differ(self):
        a = signature_fingerprint(preprocess(nat_mod_system(2, 0, 1)))
        b = signature_fingerprint(preprocess(even_system()))
        c = signature_fingerprint(
            preprocess(nat_two_residues_system(2, 0, 1))
        )
        assert a != b
        assert a != c  # extra predicate Q changes the signature

    def test_clause_key_is_renaming_invariant(self):
        # the same problem flattened twice uses different fresh names;
        # every clause must still key identically
        finder_a = ModelFinder(preprocess(nat_mod_system(3, 1, 2)))
        finder_b = ModelFinder(preprocess(nat_mod_system(3, 1, 2)))
        keys_a = [clause_key(f) for f in finder_a.flat_clauses]
        keys_b = [clause_key(f) for f in finder_b.flat_clauses]
        assert keys_a == keys_b
        # a different query produces at least one differing key
        finder_c = ModelFinder(preprocess(nat_mod_system(3, 1, 4)))
        keys_c = [clause_key(f) for f in finder_c.flat_clauses]
        assert keys_a != keys_c


class TestEnginePool:
    def test_compatible_problems_share_one_engine(self):
        pool = EnginePool()
        for m, r, c in ((2, 0, 1), (3, 0, 1), (4, 1, 2)):
            prepared = preprocess(nat_mod_system(m, r, c))
            finder = pool.finder(prepared)
            result = finder.search()
            assert result.found
            pool.release(finder)
        stats = pool.as_dict()
        assert stats["engines_created"] == 1
        assert stats["engine_hits"] == 2
        assert stats["cross_problem_clauses"] > 0

    def test_incompatible_signatures_get_separate_engines(self):
        pool = EnginePool()
        a = pool.engine_for(preprocess(nat_mod_system(2, 0, 1)))
        b = pool.engine_for(preprocess(even_system()))
        c = pool.engine_for(preprocess(nat_mod_system(5, 1, 3)))
        assert a is not b
        assert a is c
        assert len(pool) == 2

    def test_differential_verdicts_nat_family(self):
        pool = EnginePool()
        for m, r, c in ((2, 0, 1), (2, 1, 3), (3, 0, 2), (4, 0, 3)):
            prepared = preprocess(nat_mod_system(m, r, c))
            fresh = find_model(prepared)
            finder = pool.finder(prepared)
            pooled = finder.search()
            assert fresh.found == pooled.found
            assert fresh.model.size() == pooled.model.size()
            assert pooled.model.satisfies(prepared)
            pool.release(finder)

    def test_differential_verdicts_stlc_suite(self):
        # the ISSUE's differential criterion: pooled solving of the
        # shared-signature STLC batch gives verdicts identical to
        # fresh-engine runs (model sizes may differ on these
        # quantifier-alternating systems — both models are verified)
        pool = EnginePool()
        for problem in stlc_batch(3):
            system = problem.system()
            fresh = solve(system, timeout=60)
            pooled = solve(system, timeout=60, engine_pool=pool)
            assert fresh.status == pooled.status, problem.name
            assert pooled.status.value == problem.expected
            assert pooled.details["engine_pool"]["pooled"] is True
        stats = pool.as_dict()
        assert stats["engines_created"] == 1
        assert stats["engine_hits"] == len(stlc_batch(3)) - 1
        assert stats["cross_problem_clauses"] > 0

    def test_unsat_problem_through_pool(self):
        pool = EnginePool()
        prepared = preprocess(odd_unsat_system())
        fresh = find_model(prepared, max_total_size=5)
        finder = pool.finder(prepared, max_total_size=5)
        pooled = finder.search()
        assert not fresh.found and not pooled.found

    def test_released_finder_cannot_search_again(self):
        pool = EnginePool()
        finder = pool.finder(preprocess(nat_mod_system(2, 0, 1)))
        assert finder.search().found
        pool.release(finder)
        pool.release(finder)  # idempotent
        with pytest.raises(FinderError):
            finder.search()

    def test_engine_recycled_after_problem_cap(self):
        pool = EnginePool(max_problems_per_engine=2)
        systems = [
            preprocess(nat_mod_system(2, 0, 1)),
            preprocess(nat_mod_system(3, 0, 1)),
            preprocess(nat_mod_system(4, 0, 1)),
        ]
        engines = []
        for prepared in systems:
            finder = pool.finder(prepared)
            engines.append(finder._engine)
            finder.search()
            pool.release(finder)
        assert engines[0] is engines[1]
        assert engines[2] is not engines[0]
        assert pool.stats.engine_recycles == 1

    def test_lru_eviction_bounds_engine_count(self):
        pool = EnginePool(max_engines=1)
        pool.engine_for(preprocess(nat_mod_system(2, 0, 1)))
        pool.engine_for(preprocess(even_system()))
        assert len(pool) == 1
        assert pool.stats.engines_evicted == 1

    def test_shared_engine_requires_incremental(self):
        # a non-incremental finder resets its engine before every size
        # vector; on a pooled shared engine that would wipe every other
        # problem's state, so the combination must be rejected outright
        pool = EnginePool()
        prepared = preprocess(nat_mod_system(2, 0, 1))
        engine = pool.engine_for(prepared)
        with pytest.raises(FinderError):
            ModelFinder(prepared, incremental=False, engine=engine)

    def test_shared_engine_incremental_flag_mutation_rejected(self):
        # the constructor check can be bypassed by mutating the plain
        # attribute afterwards; search() must re-check before it ever
        # reaches an engine.reset() — and the shared engine must come
        # through unscathed for the problem already riding it
        pool = EnginePool()
        first = pool.finder(preprocess(nat_mod_system(2, 0, 1)))
        assert first.search().found
        second = pool.finder(preprocess(nat_mod_system(3, 0, 1)))
        assert second._engine is first._engine
        clauses_before = second._engine.total_added
        resets_before = 0
        second.incremental = False
        with pytest.raises(FinderError):
            second.search()
        # no reset happened: the shared clause database is intact
        assert second._engine.total_added == clauses_before
        second.incremental = True
        result = second.search()
        assert result.found
        assert result.stats.solver_resets == resets_before

    def test_pool_lbd_retention_threads_to_engines(self):
        pool = EnginePool(lbd_retention=False)
        prepared = preprocess(nat_mod_system(2, 0, 1))
        engine = pool.engine_for(prepared)
        assert engine.lbd_retention is False
        assert engine.solver.lbd_retention is False
        # pool.finder agrees with its engines on the retention policy
        finder = pool.finder(prepared)
        assert finder.search().found
        # a finder with a mismatched policy is rejected
        with pytest.raises(FinderError):
            ModelFinder(prepared, engine=engine, lbd_retention=True)

    def test_mismatched_engine_rejected(self):
        pool = EnginePool()
        engine = pool.engine_for(preprocess(nat_mod_system(2, 0, 1)))
        with pytest.raises(FinderError):
            ModelFinder(preprocess(even_system()), engine=engine)

    def test_clause_groups_are_shared(self):
        pool = EnginePool()
        first = pool.finder(preprocess(nat_mod_system(3, 0, 1)))
        first.search()
        engine = first._engine
        shared_before = engine.groups_shared
        # same modulus, same residue, different clash: base + step
        # clauses are identical and must map to the same groups
        second = pool.finder(preprocess(nat_mod_system(3, 0, 2)))
        second.search()
        assert second._engine is engine
        assert engine.groups_shared > shared_before


class TestRInGenCampaign:
    def test_config_knobs(self):
        pool = EnginePool()
        config = RInGenConfig(engine_pool=pool)
        assert config.release_engines is True
        result = solve(
            nat_mod_system(2, 0, 1), timeout=10, engine_pool=pool
        )
        assert result.is_sat
        assert result.details["engine_pool"]["pooled"] is True
        assert pool.stats.released == 1

    def test_pool_ignored_for_non_incremental(self):
        pool = EnginePool()
        result = solve(
            nat_mod_system(2, 0, 1),
            timeout=10,
            engine_pool=pool,
            incremental=False,
        )
        assert result.is_sat
        assert "engine_pool" not in result.details
        assert pool.stats.problems == 0


class TestHarnessCampaign:
    def suite(self) -> Suite:
        suite = Suite("CampaignTiny")
        suite.add(
            "mod2", "mod",
            lambda: nat_mod_system(2, 0, 1), "sat", ("Reg",),
        )
        suite.add(
            "even", "parity", even_system, "sat", ("Reg",),
        )
        suite.add(
            "mod3", "mod",
            lambda: nat_mod_system(3, 0, 1), "sat", ("Reg",),
        )
        return suite

    def test_batch_order_groups_by_fingerprint(self):
        ordered = batch_order(list(self.suite()))
        assert [p.name for p in ordered] == ["mod2", "mod3", "even"]

    def test_run_campaign_share_engines(self):
        shared = run_campaign(
            [self.suite()],
            solvers=["ringen"],
            timeout=10,
            share_engines=True,
        )
        fresh = run_campaign(
            [self.suite()], solvers=["ringen"], timeout=10
        )
        assert shared.pool_stats is not None
        assert fresh.pool_stats is None
        assert shared.pool_stats["problems"] == 3
        assert shared.pool_stats["engine_hits"] >= 1
        for record in shared.records:
            other = fresh.record(record.problem.name, record.solver)
            assert other is not None
            assert record.status is other.status, record.problem.name


class TestEngineSnapshot:
    """Engine serialization and the disk warm cache."""

    def _warm_pool(self, cache_dir=None):
        pool = EnginePool(cache_dir=cache_dir)
        for m, r, c in ((2, 0, 1), (3, 0, 1)):
            finder = pool.finder(preprocess(nat_mod_system(m, r, c)))
            assert finder.search().found
            pool.release(finder)
        return pool

    def test_engine_round_trip_preserves_verdicts(self):
        from repro.mace.finder import _IncrementalEngine

        pool = self._warm_pool()
        engine = next(iter(pool._engines.values())).engine
        snap = engine.snapshot()
        restored = _IncrementalEngine.restore(snap)
        prepared = preprocess(nat_mod_system(4, 1, 2))
        cold = find_model(prepared)
        warm = ModelFinder(prepared, engine=restored).search()
        assert cold.found == warm.found
        assert warm.model.satisfies(prepared)

    def test_snapshot_rejects_foreign_schema(self):
        from repro.mace import EngineSnapshotError
        from repro.mace.finder import _IncrementalEngine

        with pytest.raises(EngineSnapshotError):
            _IncrementalEngine.restore({"schema": "cdcl", "version": 1})

    def test_snapshot_rejects_wrong_version(self):
        from repro.mace import ENGINE_SNAPSHOT_VERSION, EngineSnapshotError
        from repro.mace.finder import _IncrementalEngine

        pool = self._warm_pool()
        snap = next(iter(pool._engines.values())).engine.snapshot()
        snap["version"] = ENGINE_SNAPSHOT_VERSION + 1
        with pytest.raises(EngineSnapshotError):
            _IncrementalEngine.restore(snap)

    def test_disk_cache_round_trip(self, tmp_path):
        cache = tmp_path / "engines"
        first = self._warm_pool(cache_dir=cache)
        assert first.flush_cache() == 1
        assert first.stats.snapshot_saves >= 1
        assert list(cache.iterdir())  # something was persisted

        second = self._warm_pool(cache_dir=cache)
        assert second.stats.snapshot_hits == 1
        assert second.stats.engines_created == 0
        stats = second.as_dict()
        for key in (
            "snapshot_saves",
            "snapshot_hits",
            "snapshot_misses",
            "snapshot_rejected",
            "engines_live",
        ):
            assert key in stats

    def test_disk_cache_verdict_parity(self, tmp_path):
        cache = tmp_path / "engines"
        self._warm_pool(cache_dir=cache).flush_cache()
        warm_pool = EnginePool(cache_dir=cache)
        for m, r, c in ((2, 0, 1), (4, 1, 2), (5, 2, 3)):
            prepared = preprocess(nat_mod_system(m, r, c))
            cold = find_model(prepared)
            finder = warm_pool.finder(prepared)
            warm = finder.search()
            assert cold.found == warm.found, (m, r, c)
            assert warm.model.satisfies(prepared)
            warm_pool.release(finder)
        assert warm_pool.stats.snapshot_hits == 1

    def test_corrupted_cache_falls_back_cold(self, tmp_path):
        cache = tmp_path / "engines"
        self._warm_pool(cache_dir=cache).flush_cache()
        for entry in cache.iterdir():
            entry.write_bytes(b"not a pickle")
        pool = self._warm_pool(cache_dir=cache)
        assert pool.stats.snapshot_rejected >= 1
        assert pool.stats.snapshot_hits == 0
        assert pool.stats.engines_created == 1  # cold start worked

    def test_wrong_version_cache_falls_back_cold(self, tmp_path):
        import pickle

        cache = tmp_path / "engines"
        self._warm_pool(cache_dir=cache).flush_cache()
        for entry in cache.iterdir():
            wrapper = pickle.loads(entry.read_bytes())
            wrapper["version"] += 1
            entry.write_bytes(pickle.dumps(wrapper))
        pool = self._warm_pool(cache_dir=cache)
        assert pool.stats.snapshot_rejected >= 1
        assert pool.stats.engines_created == 1

    def test_wrong_fingerprint_cache_falls_back_cold(self, tmp_path):
        import os

        cache = tmp_path / "engines"
        self._warm_pool(cache_dir=cache).flush_cache()
        # a cache entry for signature A renamed to signature B's slot:
        # the key check inside the wrapper must reject it
        other = EnginePool(cache_dir=cache)
        prepared = preprocess(even_system())
        other.engine_for(prepared)
        other.flush_cache()
        entries = sorted(cache.iterdir())
        assert len(entries) == 2
        data0 = entries[0].read_bytes()
        data1 = entries[1].read_bytes()
        entries[0].write_bytes(data1)
        entries[1].write_bytes(data0)
        pool = self._warm_pool(cache_dir=cache)
        assert pool.stats.snapshot_rejected >= 1
        assert pool.stats.engines_created == 1

    def test_adopt_and_last_snapshot(self):
        pool = self._warm_pool()
        snap = pool.last_snapshot()
        assert snap is not None and snap["schema"] == "engine"
        receiver = EnginePool()
        assert receiver.adopt_snapshot(snap)
        assert receiver.stats.snapshot_hits == 1
        finder = receiver.finder(preprocess(nat_mod_system(4, 1, 2)))
        assert finder.search().found
        assert receiver.stats.engines_created == 0

    def test_adopt_rejects_incompatible_config(self):
        pool = self._warm_pool()
        snap = pool.last_snapshot()
        receiver = EnginePool(lbd_retention=False)
        assert not receiver.adopt_snapshot(snap)
        assert receiver.stats.snapshot_rejected == 1
