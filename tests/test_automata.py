"""Tests for tree automata: runs, paper examples, boolean operations."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.dfta import AutomatonError, DFTA, make_dfta
from repro.automata.ops import (
    cached_is_empty,
    clear_op_caches,
    complement,
    complete,
    dense_complete,
    dense_product,
    difference,
    equivalent,
    intersection,
    language_key,
    minimize_1d,
    op_cache_info,
    product,
    subset,
    symmetric_difference,
    trim,
    union,
)
from repro.logic.adt import (
    ADT,
    ADTSystem,
    NAT,
    TREE,
    nat,
    nat_system,
    nat_value,
    tree_system,
)
from repro.logic.sorts import FuncSymbol, Sort
from repro.logic.terms import App
from repro.theory.atlas import (
    even_automaton,
    even_member,
    evenleft_automaton,
    evenleft_member,
    incdec_automata,
)
from repro.problems import leaf, node

NATS = nat_system()
TREES = tree_system()


def mod_automaton(m: int, residues) -> DFTA:
    """Numerals whose value is ≡ one of ``residues`` mod ``m``."""
    transitions = {("Z", ()): 0}
    for i in range(m):
        transitions[("S", (i,))] = (i + 1) % m
    return make_dfta(
        NATS, {NAT: m}, transitions, [(r,) for r in residues], (NAT,)
    )


class TestRuns:
    def test_even_automaton_accepts_evens(self):
        auto = even_automaton(NATS)
        for n in range(12):
            assert auto.accepts(nat(n)) == (n % 2 == 0)

    def test_evenleft_automaton(self):
        auto = evenleft_automaton(TREES)
        assert auto.accepts(leaf())
        assert not auto.accepts(node(leaf(), leaf()))
        assert auto.accepts(node(node(leaf(), leaf()), leaf()))
        # right branch does not matter
        assert auto.accepts(
            node(node(leaf(), node(leaf(), leaf())), node(leaf(), leaf()))
        )

    def test_incdec_2_automata(self):
        autos = incdec_automata(NATS)
        inc = next(a for p, a in autos.items() if p.name == "inc")
        dec = next(a for p, a in autos.items() if p.name == "dec")
        for x in range(6):
            for y in range(6):
                in_inc = (x % 3, y % 3) in {(0, 1), (1, 2), (2, 0)}
                in_dec = (x % 3, y % 3) in {(1, 0), (2, 1), (0, 2)}
                assert inc.accepts(nat(x), nat(y)) == in_inc
                assert dec.accepts(nat(x), nat(y)) == in_dec
                # the key safety property: disjointness
                assert not (in_inc and in_dec)

    def test_example2_propositional_automaton(self):
        # Example 2: the automaton evaluating variable-free propositional
        # formulas, over the Prop ADT {and, or, imp, top, bot}
        prop = Sort("Prop")
        top = FuncSymbol("top", (), prop)
        bot = FuncSymbol("bot", (), prop)
        and_ = FuncSymbol("and", (prop, prop), prop)
        or_ = FuncSymbol("or", (prop, prop), prop)
        imp = FuncSymbol("imp", (prop, prop), prop)
        adts = ADTSystem([ADT(prop, (top, bot, and_, or_, imp))])
        transitions = {("bot", ()): 0, ("top", ()): 1}
        for a in (0, 1):
            for b in (0, 1):
                transitions[("and", (a, b))] = int(a and b)
                transitions[("or", (a, b))] = int(a or b)
                transitions[("imp", (a, b))] = int((not a) or b)
        auto = make_dfta(adts, {prop: 2}, transitions, [(1,)], (prop,))

        def t(x):
            return App(top) if x else App(bot)

        assert auto.accepts(App(and_, (t(1), t(1))))
        assert not auto.accepts(App(and_, (t(1), t(0))))
        assert auto.accepts(App(imp, (t(0), t(0))))
        assert not auto.accepts(App(imp, (t(1), t(0))))

    def test_partial_automaton_rejects_via_sink(self):
        # missing rule: run returns None, accepts() is False
        auto = make_dfta(
            NATS, {NAT: 1}, {("Z", ()): 0}, [(0,)], (NAT,)
        )
        assert auto.accepts(nat(0))
        assert not auto.accepts(nat(1))
        assert auto.run(nat(1)) is None

    def test_dimension_mismatch_rejected(self):
        auto = even_automaton(NATS)
        with pytest.raises(AutomatonError):
            auto.accepts(nat(0), nat(0))

    def test_bad_transition_rejected(self):
        with pytest.raises(AutomatonError):
            make_dfta(NATS, {NAT: 1}, {("Z", ()): 5}, [(0,)], (NAT,))

    def test_wrong_sort_term_rejected(self):
        auto = even_automaton(NATS)
        with pytest.raises(AutomatonError):
            # Tree term fed to a Nat automaton: the constructor is unknown
            auto.accepts(leaf())


class TestExploration:
    def test_reachable_states(self):
        auto = even_automaton(NATS)
        assert auto.reachable_states()[NAT] == {0, 1}

    def test_unreachable_state_detected(self):
        auto = mod_automaton(3, [2])
        bigger = make_dfta(
            NATS,
            {NAT: 4},  # state 3 unreachable
            dict(auto.transitions),
            [(2,)],
            (NAT,),
        )
        assert 3 not in bigger.reachable_states()[NAT]

    def test_emptiness(self):
        auto = make_dfta(NATS, {NAT: 2}, {("Z", ()): 0, ("S", (0,)): 0, ("S", (1,)): 1}, [(1,)], (NAT,))
        assert auto.is_empty()
        assert not even_automaton(NATS).is_empty()

    def test_sample_accepted(self):
        sample = even_automaton(NATS).sample_accepted()
        assert sample is not None
        assert even_member(sample[0])

    def test_witness_terms_are_shortest(self):
        witnesses = even_automaton(NATS).witness_terms()
        assert witnesses[(NAT, 0)] == nat(0)
        assert witnesses[(NAT, 1)] == nat(1)

    def test_enumerate_accepted(self):
        members = list(
            even_automaton(NATS).enumerate_accepted(max_height=6)
        )
        assert [nat_value(t[0]) for t in members] == [0, 2, 4]


class TestBooleanOps:
    def test_complete_preserves_language(self):
        auto = make_dfta(NATS, {NAT: 1}, {("Z", ()): 0}, [(0,)], (NAT,))
        completed = complete(auto)
        assert completed.is_complete()
        for n in range(5):
            assert auto.accepts(nat(n)) == completed.accepts(nat(n))

    def test_complement(self):
        comp = complement(even_automaton(NATS))
        for n in range(10):
            assert comp.accepts(nat(n)) == (n % 2 == 1)

    def test_double_complement_equivalent(self):
        auto = even_automaton(NATS)
        assert equivalent(complement(complement(auto)), auto)

    def test_intersection(self):
        evens = mod_automaton(2, [0])
        mult3 = mod_automaton(3, [0])
        both = intersection(evens, mult3)
        for n in range(15):
            assert both.accepts(nat(n)) == (n % 6 == 0)

    def test_union(self):
        evens = mod_automaton(2, [0])
        mult3 = mod_automaton(3, [0])
        either = union(evens, mult3)
        for n in range(15):
            assert either.accepts(nat(n)) == (n % 2 == 0 or n % 3 == 0)

    def test_difference(self):
        evens = mod_automaton(2, [0])
        mult3 = mod_automaton(3, [0])
        diff = difference(evens, mult3)
        for n in range(15):
            assert diff.accepts(nat(n)) == (n % 2 == 0 and n % 3 != 0)

    def test_symmetric_difference_and_equivalence(self):
        a = mod_automaton(2, [0])
        b = even_automaton(NATS)
        assert equivalent(a, b)
        assert symmetric_difference(a, b).is_empty()

    def test_subset(self):
        mult6 = mod_automaton(6, [0])
        evens = mod_automaton(2, [0])
        assert subset(mult6, evens)
        assert not subset(evens, mult6)

    def test_product_dimension_mismatch(self):
        with pytest.raises(AutomatonError):
            intersection(even_automaton(NATS), incdec_automata(NATS).popitem()[1])


class TestNormalization:
    def test_trim_removes_unreachable(self):
        auto = make_dfta(
            NATS,
            {NAT: 5},
            {("Z", ()): 0, ("S", (0,)): 1, ("S", (1,)): 0,
             ("S", (2,)): 3, ("S", (3,)): 2, ("S", (4,)): 4},
            [(0,)],
            (NAT,),
        )
        trimmed = trim(auto)
        assert trimmed.states[NAT] == 2
        for n in range(8):
            assert trimmed.accepts(nat(n)) == auto.accepts(nat(n))

    def test_minimize_collapses_equivalent_states(self):
        # mod-4 automaton accepting evens has 4 states; minimal is 2
        auto = mod_automaton(4, [0, 2])
        minimal = minimize_1d(auto)
        assert minimal.states[NAT] == 2
        assert equivalent(minimal, even_automaton(NATS))

    def test_minimize_preserves_language(self):
        auto = mod_automaton(6, [0, 3])
        minimal = minimize_1d(auto)
        for n in range(14):
            assert minimal.accepts(nat(n)) == (n % 3 == 0)

    def test_minimize_requires_dimension_one(self):
        autos = incdec_automata(NATS)
        with pytest.raises(AutomatonError):
            minimize_1d(next(iter(autos.values())))


# ----------------------------------------------------------------------
# property tests: boolean ops agree with membership semantics
# ----------------------------------------------------------------------
mods = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=3),
).map(lambda mr: (max(mr[0], mr[1] + 1), mr[1]))


@given(mods, mods, st.integers(min_value=0, max_value=20))
@settings(max_examples=150)
def test_ops_respect_membership(pa, pb, n):
    (ma, ra), (mb, rb) = pa, pb
    a = mod_automaton(ma, [ra])
    b = mod_automaton(mb, [rb])
    t = nat(n)
    in_a, in_b = n % ma == ra, n % mb == rb
    assert intersection(a, b).accepts(t) == (in_a and in_b)
    assert union(a, b).accepts(t) == (in_a or in_b)
    assert difference(a, b).accepts(t) == (in_a and not in_b)
    assert complement(a).accepts(t) == (not in_a)


@given(mods)
def test_minimize_is_idempotent(pa):
    m, r = pa
    auto = minimize_1d(mod_automaton(m, [r]))
    again = minimize_1d(auto)
    assert again.states[NAT] == auto.states[NAT]
    assert equivalent(auto, again)


# ----------------------------------------------------------------------
# property tests: sparse constructions agree with the dense references
# ----------------------------------------------------------------------
def random_nat_automaton(data, label: str) -> DFTA:
    """A random (possibly partial) 1-automaton over the Nat signature."""
    n = data.draw(st.integers(min_value=1, max_value=3), label=f"{label}-n")
    transitions = {}
    if data.draw(st.booleans(), label=f"{label}-z"):
        transitions[("Z", ())] = data.draw(
            st.integers(min_value=0, max_value=n - 1), label=f"{label}-zt"
        )
    for q in range(n):
        if data.draw(st.booleans(), label=f"{label}-s{q}"):
            transitions[("S", (q,))] = data.draw(
                st.integers(min_value=0, max_value=n - 1),
                label=f"{label}-st{q}",
            )
    finals = [
        (q,)
        for q in range(n)
        if data.draw(st.booleans(), label=f"{label}-f{q}")
    ]
    return make_dfta(NATS, {NAT: n}, transitions, finals, (NAT,))


COMBINES = {
    "and": lambda x, y: x and y,
    "or": lambda x, y: x or y,
    "diff": lambda x, y: x and not y,
    "xor": lambda x, y: x != y,
}


@given(st.data())
@settings(max_examples=120, deadline=None)
def test_sparse_product_agrees_with_dense(data):
    a = random_nat_automaton(data, "a")
    b = random_nat_automaton(data, "b")
    name = data.draw(st.sampled_from(sorted(COMBINES)), label="combine")
    combine = COMBINES[name]
    sparse = product(a, b, combine)
    dense = dense_product(a, b, combine)
    for n in range(9):
        assert sparse.accepts(nat(n)) == dense.accepts(nat(n))
    # sparse keeps only reachable pairs: never more states than dense
    assert sparse.states[NAT] <= max(dense.states[NAT], 1)


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_sparse_complement_agrees_with_dense(data):
    auto = random_nat_automaton(data, "a")
    comp = complement(auto)
    densely = dense_complete(auto)
    dense_comp = make_dfta(
        densely.adts,
        densely.states,
        densely.transitions,
        [
            (q,)
            for q in range(densely.states[NAT])
            if (q,) not in densely.finals
        ],
        densely.final_sorts,
    )
    for n in range(9):
        assert comp.accepts(nat(n)) == (not auto.accepts(nat(n)))
        assert comp.accepts(nat(n)) == dense_comp.accepts(nat(n))


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_copy_on_miss_complete_agrees_with_dense(data):
    auto = random_nat_automaton(data, "a")
    completed = complete(auto)
    assert completed.is_complete()
    for n in range(9):
        assert completed.accepts(nat(n)) == auto.accepts(nat(n))


class TestCompleteCopyOnMiss:
    def test_complete_automaton_returned_unchanged(self):
        auto = even_automaton(NATS)
        assert complete(auto) is auto

    def test_only_needed_sorts_gain_sinks(self):
        # two sorts, complete A-part: completing the B rules must not
        # add a sink to (or sweep) the untouched A sort
        sa, sb = Sort("A"), Sort("B")
        a0 = FuncSymbol("a0", (), sa)
        a1 = FuncSymbol("a1", (sa,), sa)
        b0 = FuncSymbol("b0", (), sb)
        wrap = FuncSymbol("wrap", (sa,), sb)
        adts = ADTSystem([ADT(sa, (a0, a1)), ADT(sb, (b0, wrap))])
        partial = make_dfta(
            adts,
            {sa: 2, sb: 1},
            {
                ("a0", ()): 0,
                ("a1", (0,)): 1,
                ("a1", (1,)): 0,
                ("b0", ()): 0,
                ("wrap", (0,)): 0,
                # ("wrap", (1,)) missing: only B needs a sink
            },
            [(0,)],
            (sb,),
        )
        completed = complete(partial)
        assert completed.is_complete()
        assert completed.states[sb] == 2  # sink added
        assert completed.states[sa] == 2  # untouched
        a_term = App(a0)
        assert completed.accepts(App(wrap, (a_term,)))
        assert not completed.accepts(App(wrap, (App(a1, (a_term,)),)))


class TestEmptinessCache:
    def test_equivalent_and_subset_share_the_cache(self):
        clear_op_caches()
        a = mod_automaton(2, [0])
        b = even_automaton(NATS)
        assert equivalent(a, b)
        first = op_cache_info()
        assert first["misses"] >= 1
        assert equivalent(a, b)
        assert op_cache_info()["hits"] > first["hits"]
        # subset on the same operands reuses the same cache object
        before = op_cache_info()
        assert subset(a, b) and subset(a, b)
        after = op_cache_info()
        assert after["hits"] > before["hits"]

    def test_cached_is_empty_matches_is_empty(self):
        clear_op_caches()
        empty = make_dfta(
            NATS,
            {NAT: 2},
            {("Z", ()): 0, ("S", (0,)): 0, ("S", (1,)): 1},
            [(1,)],
            (NAT,),
        )
        assert cached_is_empty(empty) == empty.is_empty() is True
        assert cached_is_empty(empty)  # served from cache
        info = op_cache_info()
        assert info["hits"] >= 1 and info["size"] >= 1

    def test_fingerprint_cache_evicts_dead_automata(self):
        # regression: dead-weakref entries used to live until the same
        # id() was reused, leaking across long campaigns
        import gc

        clear_op_caches()
        automata = [mod_automaton(k, [0]) for k in range(2, 12)]
        for a in automata:
            language_key(a)
        held = op_cache_info()["fingerprints"]
        assert held >= len(automata)
        survivor = automata[0]
        del automata
        del a  # the loop variable still pins the last automaton
        gc.collect()
        after = op_cache_info()["fingerprints"]
        assert after <= held - 9, (held, after)
        # the surviving automaton's fingerprint is still cached and valid
        assert language_key(survivor) == language_key(survivor)
        assert op_cache_info()["fingerprints"] >= 1
