"""Differential tests for the speculative parallel size sweep.

The parity contract (see ``repro/mace/parallel.py``): for any shard
count, backend, and mode, the parallel sweep commits candidate size
vectors in exactly the sequential order, so the *verdict* (found /
complete), the winning total size (``model_size``), and model validity
are identical to :class:`repro.mace.finder.ModelFinder`.  Model
*internals* may differ — CDCL models are history-dependent — which is
why the contract is stated over verdicts and sizes, not table contents.

Fault tolerance rides the same contract: a shard killed mid-speculation
is respawned with the refutation bounds replayed, its orphaned vectors
are rescheduled, and the verdict must not drift.
"""

import multiprocessing

import pytest

from repro.chc.transform import preprocess
from repro.exec import ReproFaultPlan
from repro.mace.finder import FinderError, ModelFinder
from repro.mace.model import validate_model
from repro.mace.parallel import ParallelModelFinder, SweepScheduler
from repro.problems import (
    diag_system,
    diseq_zz_system,
    even_system,
    incdec_system,
    odd_unsat_system,
)
from repro.sat.backend import available_backends

# (name, factory, search kwargs) — SAT problems check the winning
# vector, UNSAT ones check that speculative refutations commit in the
# same order as the sequential sweep.
PROBLEMS = [
    ("even", even_system, {}),
    ("incdec", incdec_system, {}),
    ("diseq_zz", diseq_zz_system, {}),
    ("odd_unsat", odd_unsat_system, {"max_total_size": 5}),
    ("diag", diag_system, {"max_total_size": 5}),
]

BACKENDS = available_backends()


def sequential(prepared, **kwargs):
    return ModelFinder(prepared, **kwargs).search()


def parallel(prepared, shards, mode="process", **kwargs):
    finder = ParallelModelFinder(prepared, sweep_shards=shards, **kwargs)
    finder.mode = mode
    return finder.search()


def assert_parity(seq_result, par_result, label=""):
    assert par_result.found == seq_result.found, label
    assert par_result.complete == seq_result.complete, label
    assert par_result.stats.model_size == seq_result.stats.model_size, label
    if par_result.found:
        validate_model(par_result.model)


class TestDifferential:
    """Parallel verdicts match sequential, vector by committed vector."""

    @pytest.mark.parametrize("name,factory,kwargs", PROBLEMS)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_process_mode_matches_sequential(self, name, factory, kwargs,
                                             shards):
        prepared = preprocess(factory())
        seq = sequential(prepared, **kwargs)
        par = parallel(prepared, shards, mode="process", **kwargs)
        assert_parity(seq, par, f"{name}/shards={shards}")

    @pytest.mark.parametrize("name,factory,kwargs", PROBLEMS)
    def test_inprocess_mode_matches_sequential(self, name, factory, kwargs):
        prepared = preprocess(factory())
        seq = sequential(prepared, **kwargs)
        par = parallel(prepared, 2, mode="inprocess", **kwargs)
        assert_parity(seq, par, name)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backends_agree(self, backend):
        prepared = preprocess(incdec_system())
        seq = sequential(prepared, sat_backend=backend)
        par = parallel(prepared, 2, sat_backend=backend)
        assert_parity(seq, par, backend)

    def test_core_guidance_off_still_agrees(self):
        prepared = preprocess(even_system())
        seq = sequential(prepared, core_guided_sweep=False)
        par = parallel(prepared, 2, core_guided_sweep=False)
        assert_parity(seq, par)
        assert par.stats.cores_broadcast == 0

    def test_incremental_off_gates_to_sequential(self):
        # RInGenConfig(incremental=False) never constructs the parallel
        # finder (repro/core/ringen.py gates on cfg.incremental): the
        # from-scratch ablation path has no persistent engine to shard.
        # Covered here as documentation of the gate, not of parallel.py.
        from repro.core.ringen import RInGen, RInGenConfig

        solver = RInGen(
            RInGenConfig(timeout=10.0, incremental=False, sweep_shards=4)
        )
        result = solver.solve(even_system())
        assert result.is_sat

    def test_speculation_and_broadcast_counted(self):
        prepared = preprocess(incdec_system())
        par = parallel(prepared, 2, mode="process")
        assert par.found
        assert par.stats.sweep_shards == 2
        assert par.stats.vectors_speculated > 0
        assert par.stats.cores_broadcast > 0

    def test_shards_one_is_portfolio_of_one(self):
        prepared = preprocess(even_system())
        par = parallel(prepared, 1, mode="process")
        seq = sequential(prepared)
        assert_parity(seq, par)
        assert par.stats.cores_broadcast == 0  # nobody to broadcast to

    def test_bad_config_rejected(self):
        prepared = preprocess(even_system())
        with pytest.raises(FinderError):
            ParallelModelFinder(prepared, sweep_shards=0)
        with pytest.raises(FinderError):
            ParallelModelFinder(prepared, mode="threads")


class TestRInGenIntegration:
    """End-to-end through the solver facade (Herbrand loop included)."""

    def test_solver_verdicts_match(self):
        from repro.core.ringen import RInGen, RInGenConfig

        for factory, expected in [
            (even_system, "is_sat"),
            (incdec_system, "is_sat"),
            (odd_unsat_system, "is_unsat"),
        ]:
            base = RInGen(RInGenConfig(timeout=30.0)).solve(factory())
            par = RInGen(
                RInGenConfig(timeout=30.0, sweep_shards=2)
            ).solve(factory())
            assert getattr(par, expected), factory.__name__
            assert par.status == base.status, factory.__name__


class TestFaultInjection:
    """A shard killed mid-speculation must not change the verdict."""

    def test_killed_shard_rescheduled(self):
        # flaky@1x1: the worker solving vector seq 1 exits hard on its
        # first attempt.  The scheduler must respawn the shard, replay
        # the refutation bounds, requeue the orphaned vectors, and
        # commit the same verdict as the clean run.
        prepared = preprocess(incdec_system())
        plan = ReproFaultPlan.parse("flaky@1x1")
        clean = parallel(prepared, 2, mode="process")
        hurt = parallel(prepared, 2, mode="process", fault_plan=plan)
        assert_parity(clean, hurt)
        assert hurt.stats.shard_restarts >= 1

    def test_shard_death_on_later_vector_rescheduled(self):
        # The shard holding vector 2 dies on its first attempt; the
        # requeued vector (attempt 2) no longer fires, so the verdict
        # matches the never-faulted sequential sweep exactly.
        prepared = preprocess(even_system())
        plan = ReproFaultPlan.parse("flaky@2x1")
        seq = sequential(prepared)
        hurt = parallel(prepared, 2, mode="process", fault_plan=plan)
        assert_parity(seq, hurt)

    def test_core_broadcast_survives_shard_death(self):
        # Respawned shards receive the accumulated bounds in their
        # spawn payload, so pruning keeps working after the death.
        prepared = preprocess(diag_system())
        plan = ReproFaultPlan.parse("flaky@1x1")
        clean = parallel(prepared, 2, mode="process", max_total_size=5)
        hurt = parallel(
            prepared, 2, mode="process", max_total_size=5,
            fault_plan=plan,
        )
        assert_parity(clean, hurt)
        assert hurt.stats.cores_broadcast > 0

    def test_all_shards_dead_is_honest_unknown(self):
        # Every vector faults on every attempt: after the per-slot
        # restart budget both shards stay dead; the sweep must report
        # an incomplete (budget-style) verdict, not hang or lie.
        prepared = preprocess(even_system())
        plan = ReproFaultPlan.parse("flaky@shardx9")
        result = parallel(prepared, 2, mode="process", fault_plan=plan)
        assert not result.found
        assert not result.complete


class TestModeSelection:
    def test_auto_mode_in_daemon_falls_back(self):
        # Daemonic processes may not have children; `auto` must pick
        # the in-process portfolio there.  Simulated by asking the
        # scheduler directly rather than forking a daemon.
        prepared = preprocess(even_system())
        finder = ParallelModelFinder(prepared, sweep_shards=2)
        assert finder.mode == "auto"
        if multiprocessing.current_process().daemon:
            pytest.skip("test runner itself is daemonic")
        result = finder.search()
        assert result.found

    def test_scheduler_stats_carry_shard_count(self):
        prepared = preprocess(even_system())
        finder = ParallelModelFinder(prepared, sweep_shards=3)
        scheduler = SweepScheduler(finder, "inprocess")
        assert scheduler.stats.sweep_shards == 3
