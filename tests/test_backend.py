"""The SatBackend boundary: protocol conformance, the factory, the
PySAT adapter's availability behavior, and — when `python-sat` is
installed — a differential suite pinning both backends to identical
verdicts, sound cores and sound minimization."""

import pytest

from repro.chc.transform import preprocess
from repro.mace.finder import find_model
from repro.problems import (
    diag_system,
    even_system,
    incdec_system,
    odd_unsat_system,
)
from repro.sat.backend import (
    BACKEND_NAMES,
    BackendUnavailableError,
    SatBackend,
    available_backends,
    backend_available,
    make_backend,
)
from repro.sat.pysat_backend import PySATBackend, pysat_available
from repro.sat.solver import CDCLSolver, SatError


def check_model(clauses, model):
    return all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses)


#: (clauses, num_vars, expected) differential corpus — small formulas
#: exercising units, backtracking, unsat cores and pure literals alike
DIFF_CNFS = [
    ([], 3, True),
    ([[1]], 1, True),
    ([[1], [-1]], 1, False),
    ([[1, 2], [-1, 3], [-2, -3], [-1, -2]], 3, True),
    # pigeonhole 3->2
    (
        [[1, 2], [3, 4], [5, 6], [-1, -3], [-1, -5], [-3, -5],
         [-2, -4], [-2, -6], [-4, -6]],
        6,
        False,
    ),
    ([[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [-1], [-3]], 3, True),
]


class TestProtocol:
    def test_python_backend_satisfies_protocol(self):
        assert isinstance(make_backend("python"), SatBackend)

    def test_cdcl_solver_is_a_backend(self):
        assert isinstance(CDCLSolver(), SatBackend)

    def test_backend_names_and_fallback(self):
        assert BACKEND_NAMES[0] == "python"
        assert backend_available("python")
        assert available_backends()[0] == "python"
        assert not backend_available("no-such-backend")

    def test_unknown_backend_is_value_error(self):
        with pytest.raises(ValueError, match="unknown SAT backend"):
            make_backend("minisat-classic")

    def test_lbd_retention_threaded_through(self):
        assert not make_backend(
            "python", lbd_retention=False
        ).lbd_retention
        assert make_backend("python").lbd_retention


class TestAvailability:
    def test_probe_matches_import(self):
        assert pysat_available() == backend_available("pysat")

    def test_unavailable_pysat_raises_cleanly(self):
        if pysat_available():
            pytest.skip("python-sat installed: the failure leg is moot")
        with pytest.raises(BackendUnavailableError, match="python-sat"):
            make_backend("pysat")
        assert "pysat" not in available_backends()

    def test_available_pysat_constructs(self):
        if not pysat_available():
            pytest.skip("python-sat not installed")
        backend = make_backend("pysat")
        assert isinstance(backend, PySATBackend)
        assert isinstance(backend, SatBackend)
        backend.delete()

    def test_cli_reports_missing_backend(self, capsys):
        if pysat_available():
            pytest.skip("python-sat installed: the failure leg is moot")
        from repro.cli import main

        code = main(["solve", "--backend", "pysat", "nonexistent.smt2"])
        err = capsys.readouterr().err
        assert code == 2
        assert "python-sat" in err
        assert "Traceback" not in err


@pytest.mark.skipif(not pysat_available(), reason="python-sat not installed")
class TestDifferential:
    """Both backends answer every corpus formula identically."""

    def _pair(self, num_vars):
        py = make_backend("python")
        ps = make_backend("pysat")
        py.new_vars(num_vars)
        ps.new_vars(num_vars)
        return py, ps

    @pytest.mark.parametrize("clauses,num_vars,expected", DIFF_CNFS)
    def test_verdicts_agree(self, clauses, num_vars, expected):
        for backend in self._pair(num_vars):
            for clause in clauses:
                backend.add_clause(clause)
            assert backend.solve() is expected
            if expected:
                assert check_model(clauses, backend.model())
            else:
                with pytest.raises(SatError):
                    backend.model()

    def test_assumption_core_is_sound(self):
        # x1..x4 free; assumptions force the pigeonhole contradiction
        clauses = [[-10, 1], [-11, -1]]
        for backend in self._pair(11):
            for clause in clauses:
                backend.add_clause(clause)
            assert backend.solve([10, 11]) is False
            core = backend.core()
            assert set(core) <= {10, 11}
            # re-assuming exactly the core must still be unsat
            assert backend.solve(core) is False

    def test_minimize_core_yields_unsat_subset(self):
        # y (var 5) is irrelevant; the real conflict is 3 & 4 -> bottom
        clauses = [[-3, -4]]
        for backend in self._pair(5):
            for clause in clauses:
                backend.add_clause(clause)
            assert backend.solve([3, 4, 5]) is False
            core = backend.minimize_core()
            assert core
            assert set(core) <= {3, 4, 5}
            assert backend.solve(core) is False

    def test_minimize_core_respects_candidates(self):
        for backend in self._pair(5):
            backend.add_clause([-3, -4])
            assert backend.solve([3, 4, 5]) is False
            full = set(backend.core())
            kept = set(backend.minimize_core(candidates=[]))
            # nothing probed -> nothing may be dropped
            assert kept == full

    def test_tri_state_budget_exhaustion(self):
        # pigeonhole 5->4 under a 1-conflict budget: indeterminate
        def v(i, j):
            return i * 4 + j + 1

        for backend in self._pair(20):
            for i in range(5):
                backend.add_clause([v(i, j) for j in range(4)])
            for j in range(4):
                for i1 in range(5):
                    for i2 in range(i1 + 1, 5):
                        backend.add_clause([-v(i1, j), -v(i2, j)])
            assert backend.solve(max_conflicts=1) is None

    def test_clause_free_assumption_vars(self):
        # assuming a var never mentioned in any clause must not crash
        for backend in self._pair(3):
            backend.add_clause([1, 2])
            assert backend.solve([3]) is True
            assert backend.model()[3] is True

    @pytest.mark.parametrize(
        "factory,kwargs",
        [
            (even_system, {}),
            (incdec_system, {}),
            (odd_unsat_system, {"max_total_size": 4}),
            (diag_system, {"max_total_size": 4}),
        ],
    )
    def test_find_model_statuses_agree(self, factory, kwargs):
        prepared = preprocess(factory())
        results = {
            name: find_model(prepared, sat_backend=name, **kwargs)
            for name in ("python", "pysat")
        }
        py, ps = results["python"], results["pysat"]
        assert py.found == ps.found
        assert py.stats.sat_backend == "python"
        assert ps.stats.sat_backend == "pysat"
        if py.found:
            assert py.model.size() == ps.model.size()


class TestPySATUnitBehavior:
    """Adapter-local contract points (no CDCL reference needed)."""

    @pytest.fixture(autouse=True)
    def _need_pysat(self):
        if not pysat_available():
            pytest.skip("python-sat not installed")

    def test_input_validation_matches_cdcl(self):
        backend = make_backend("pysat")
        backend.new_vars(2)
        with pytest.raises(SatError):
            backend.add_clause([0])
        with pytest.raises(SatError):
            backend.add_clause([5])
        with pytest.raises(SatError):
            backend.solve([7])

    def test_empty_clause_poisons_solver(self):
        backend = make_backend("pysat")
        backend.new_var()
        assert backend.add_clause([]) is False
        assert backend.solve() is False
        assert backend.core() == []

    def test_fixed_is_sound(self):
        # fixed() is best-effort (None is always allowed) but must
        # never contradict level-0 entailment when it does answer
        backend = make_backend("pysat")
        backend.new_vars(3)
        backend.add_clause([1])
        backend.add_clause([-1, 2])
        assert backend.fixed(1) in (True, None)
        assert backend.fixed(-1) in (False, None)
        assert backend.fixed(2) in (True, None)
        assert backend.fixed(3) is None  # clause-free variable
        with pytest.raises(SatError):
            backend.fixed(9)

    def test_hygiene_hints_are_noops(self):
        backend = make_backend("pysat")
        backend.new_var()
        backend.add_clause([1])
        assert backend.simplify() == 0
        assert backend.reduce_learned(10) == 0
        assert backend.clause_count() == 1
        assert backend.learned_count() == 0
