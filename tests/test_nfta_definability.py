"""Tests for NFTA determinization and the Nat Elem-definability decision."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.dfta import AutomatonError, make_dfta
from repro.automata.nfta import (
    NFTA,
    determinize,
    from_dfta,
    union_dfta,
    union_nfta,
)
from repro.automata.ops import equivalent, union
from repro.logic.adt import NAT, TREE, nat, nat_system, tree_system
from repro.problems import leaf, node
from repro.theory.atlas import even_automaton, evenleft_automaton
from repro.theory.definability import (
    elem_defining_formula,
    is_cofinite_language,
    is_elem_definable_nat,
    is_finite_language,
    nat_language_profile,
)

NATS = nat_system()
TREES = tree_system()


def mod_automaton(m, residues):
    transitions = {("Z", ()): 0}
    for i in range(m):
        transitions[("S", (i,))] = (i + 1) % m
    return make_dfta(
        NATS, {NAT: m}, transitions, [(r,) for r in residues], (NAT,)
    )


def upto_automaton(k):
    """Numerals 0..k-1: a finite language with a rejecting sink."""
    transitions = {("Z", ()): 0}
    for i in range(k + 1):
        transitions[("S", (i,))] = min(i + 1, k)
    return make_dfta(
        NATS,
        {NAT: k + 1},
        transitions,
        [(i,) for i in range(k)],
        (NAT,),
    )


class TestNfta:
    def test_from_dfta_preserves_language(self):
        auto = even_automaton(NATS)
        nfta = from_dfta(auto)
        assert nfta.is_deterministic()
        for n in range(8):
            assert nfta.accepts(nat(n)) == auto.accepts(nat(n))

    def test_nondeterministic_acceptance(self):
        # guess at Z: either parity track; accept if *some* run lands final
        nfta = NFTA(
            NATS,
            {NAT: 2},
            {
                ("Z", ()): frozenset({0, 1}),
                ("S", (0,)): frozenset({1}),
                ("S", (1,)): frozenset({0}),
            },
            frozenset({0}),
            NAT,
        )
        # with both start states available every numeral is accepted
        for n in range(6):
            assert nfta.accepts(nat(n))
        assert not nfta.is_deterministic()

    def test_bad_transition_rejected(self):
        with pytest.raises(AutomatonError):
            NFTA(
                NATS, {NAT: 1}, {("Z", ()): frozenset({3})},
                frozenset({0}), NAT,
            )

    def test_union_nfta_language(self):
        evens = mod_automaton(2, [0])
        mult3 = mod_automaton(3, [0])
        u = union_nfta(evens, mult3)
        for n in range(12):
            assert u.accepts(nat(n)) == (n % 2 == 0 or n % 3 == 0)


class TestDeterminize:
    def test_determinize_union_matches_product_union(self):
        evens = mod_automaton(2, [0])
        mult3 = mod_automaton(3, [0])
        via_subset = union_dfta(evens, mult3)
        via_product = union(evens, mult3)
        assert equivalent(via_subset, via_product)

    def test_determinize_preserves_membership(self):
        evens = mod_automaton(2, [0])
        mult5 = mod_automaton(5, [0, 2])
        d = union_dfta(evens, mult5)
        for n in range(20):
            expected = n % 2 == 0 or n % 5 in (0, 2)
            assert d.accepts(nat(n)) == expected

    def test_determinize_deterministic_input_is_equivalent(self):
        auto = even_automaton(NATS)
        again = determinize(from_dfta(auto))
        assert equivalent(auto, again)

    def test_tree_union(self):
        el = evenleft_automaton(TREES)
        # union with itself: same language
        d = union_dfta(el, el)
        for t in (leaf(), node(leaf(), leaf()), node(node(leaf(), leaf()), leaf())):
            assert d.accepts(t) == el.accepts(t)


class TestDefinability:
    def test_even_profile_is_periodic(self):
        profile = nat_language_profile(even_automaton(NATS))
        assert profile.prefix == ()
        assert profile.period == (True, False)

    def test_even_is_not_elem_definable(self):
        # Prop. 1 as a decision-procedure verdict
        auto = even_automaton(NATS)
        assert not is_finite_language(auto)
        assert not is_cofinite_language(auto)
        assert not is_elem_definable_nat(auto)
        assert elem_defining_formula(auto) is None

    def test_finite_language_definable(self):
        auto = upto_automaton(3)
        assert is_finite_language(auto)
        assert is_elem_definable_nat(auto)
        formula = elem_defining_formula(auto)
        assert formula == "x = S^0(Z) | x = S^1(Z) | x = S^2(Z)"

    def test_cofinite_language_definable(self):
        # complement of {0}: everything but Z
        transitions = {("Z", ()): 0, ("S", (0,)): 1, ("S", (1,)): 1}
        auto = make_dfta(NATS, {NAT: 2}, transitions, [(1,)], (NAT,))
        assert is_cofinite_language(auto)
        formula = elem_defining_formula(auto)
        assert formula == "~(x = S^0(Z))"

    def test_empty_and_full(self):
        empty = make_dfta(
            NATS, {NAT: 1}, {("Z", ()): 0, ("S", (0,)): 0}, [], (NAT,)
        )
        assert elem_defining_formula(empty) == "false"
        full = make_dfta(
            NATS, {NAT: 1}, {("Z", ()): 0, ("S", (0,)): 0}, [(0,)], (NAT,)
        )
        assert elem_defining_formula(full) == "true"

    def test_profile_member_agrees_with_automaton(self):
        for auto in (
            even_automaton(NATS),
            mod_automaton(3, [1]),
            upto_automaton(4),
        ):
            profile = nat_language_profile(auto)
            for n in range(15):
                assert profile.member(n) == auto.accepts(nat(n))

    def test_ringen_invariant_definability_verdicts(self):
        """Tie the decision procedure to the pipeline: Even's discovered
        invariant is non-elementary; a bounded-reach invariant is."""
        from repro import solve
        from repro.problems import EVEN, even_system

        result = solve(even_system(), timeout=20)
        auto = result.invariant.automata[EVEN]
        assert not is_elem_definable_nat(auto)


@given(
    st.integers(min_value=1, max_value=5),
    st.sets(st.integers(min_value=0, max_value=4)),
)
@settings(max_examples=80, deadline=None)
def test_profile_correct_on_random_mod_automata(m, residues):
    residues = {r for r in residues if r < m}
    auto = mod_automaton(m, sorted(residues))
    profile = nat_language_profile(auto)
    for n in range(18):
        assert profile.member(n) == (n % m in residues)
    # mod languages are elementary iff trivial
    expected_definable = residues == set() or residues == set(range(m))
    assert is_elem_definable_nat(auto) == expected_definable or m == 1
