"""Tests for the experiment harness: campaigns, Table 1, figure data."""

import pytest

from repro.benchgen.suite import Problem, Suite
from repro.core.result import Status
from repro.harness import (
    Campaign,
    RunRecord,
    SOLVER_ORDER,
    figure4_data,
    figure5_data,
    figure6_data,
    format_histogram,
    format_scatter,
    format_table1,
    make_solver,
    run_campaign,
    run_problem,
    table1,
)
from repro.problems import even_system, incdec_system, odd_unsat_system


def tiny_suite() -> Suite:
    suite = Suite("Tiny")
    suite.add("even", "parity", even_system, "sat", ("Reg", "SizeElem"))
    suite.add("incdec", "offset", incdec_system, "sat",
              ("Reg", "Elem", "SizeElem"))
    suite.add("broken", "broken", odd_unsat_system, "unsat")
    return suite


@pytest.fixture(scope="module")
def campaign():
    return run_campaign([tiny_suite()], timeout=6.0)


class TestRunner:
    def test_make_solver_aliases(self):
        for name in SOLVER_ORDER:
            solver = make_solver(name, timeout=1.0)
            assert hasattr(solver, "solve")
        with pytest.raises(ValueError):
            make_solver("z3", 1.0)

    def test_run_problem_scores_correctness(self):
        problem = tiny_suite().problems[0]
        record = run_problem(problem, "ringen", timeout=10)
        assert record.status is Status.SAT
        assert record.correct
        assert record.model_size == 2

    def test_campaign_shape(self, campaign):
        assert len(campaign.records) == 3 * len(SOLVER_ORDER)

    def test_ringen_solves_everything_in_tiny(self, campaign):
        for record in campaign.for_solver("ringen"):
            assert record.solved, record.problem.name

    def test_cvc4_ind_gets_only_unsat(self, campaign):
        sat = campaign.count("Tiny", "cvc4-ind", Status.SAT)
        unsat = campaign.count("Tiny", "cvc4-ind", Status.UNSAT)
        assert sat == 0
        assert unsat == 1

    def test_spacer_solves_incdec_not_even(self, campaign):
        even = campaign.record("even", "spacer")
        incdec = campaign.record("incdec", "spacer")
        assert even.status is Status.UNKNOWN
        assert incdec.status is Status.SAT


class TestTable1:
    def test_counts(self, campaign):
        rows = table1(campaign, {"Tiny": 3})
        sat_row = [r for r in rows if r.suite == "Tiny" and r.answer == "SAT"][0]
        assert sat_row.counts["ringen"] == 2
        assert sat_row.counts["cvc4-ind"] == 0
        unsat_row = [
            r for r in rows if r.suite == "Tiny" and r.answer == "UNSAT"
        ][0]
        assert unsat_row.counts["ringen"] == 1

    def test_formatting(self, campaign):
        rows = table1(campaign, {"Tiny": 3})
        text = format_table1(rows)
        assert "ringen (Reg)" in text
        assert "spacer (Elem)" in text
        assert "Total" in text

    def test_unique_counts(self, campaign):
        unique = campaign.unique_count(
            "Tiny", "ringen", Status.SAT, SOLVER_ORDER
        )
        # even is solved by ringen and eldarica; incdec by several —
        # uniqueness depends on the others, just check bounds
        assert 0 <= unique <= 2


class TestFigures:
    def test_figure4_pairs(self, campaign):
        data = figure4_data(campaign)
        assert set(data) == set(SOLVER_ORDER) - {"ringen"}
        for points in data.values():
            assert len(points) == 3
            for x, y, name in points:
                assert 0 <= x <= campaign.timeout + 1
                assert 0 <= y <= campaign.timeout + 1

    def test_figure5_sat_only(self, campaign):
        data = figure5_data(campaign)
        for solver, points in data.items():
            names = {name for _, _, name in points}
            assert "broken" not in names  # UNSAT problem excluded

    def test_figure6_histogram(self, campaign):
        histogram = figure6_data(campaign)
        assert histogram.get(2) == 1  # Even's model
        assert histogram.get(3) == 1  # IncDec's model

    def test_renderers(self, campaign):
        assert "vs" in format_scatter(figure4_data(campaign), title="t")
        assert "size" in format_histogram(figure6_data(campaign), title="t")
        assert "(no models)" in format_histogram({}, title="t")


class TestProblemMetadata:
    def test_problem_str(self):
        p = tiny_suite().problems[0]
        assert "Tiny/even" in str(p)
        assert "Reg" in str(p)

    def test_suite_selectors(self):
        suite = tiny_suite()
        assert len(suite.sat_problems()) == 2
        assert len(suite.unsat_problems()) == 1
        assert set(suite.by_family()) == {"parity", "offset", "broken"}


class TestReport:
    def test_campaign_report_renders(self, campaign):
        from repro.harness import campaign_report

        text = campaign_report(campaign, {"Tiny": 3}, title="Tiny report")
        assert "# Tiny report" in text
        assert "Table 1" in text
        assert "| Tiny |" in text
        assert "Figure 6" in text
        assert "Tiny/even" in text

    def test_markdown_table_shape(self):
        from repro.harness import markdown_table

        text = markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert len(lines) == 4
