"""Tests for linear/semilinear sets and expanding sorts (Sec. 6.3, App. B.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic.adt import (
    NAT,
    NATLIST,
    TREE,
    nat_system,
    natlist_system,
    tree_system,
)
from repro.theory.linsets import (
    LinSetError,
    LinearSet,
    SemilinearSet,
    intersect_infinite_linear,
    is_expanding_signature,
    is_expanding_sort,
    max_fin,
    size_image_semilinear,
)


class TestLinearSet:
    def test_finite_singleton(self):
        s = LinearSet(5)
        assert 5 in s
        assert 4 not in s
        assert not s.is_infinite

    def test_single_period(self):
        s = LinearSet(1, (2,))
        assert s.members(10) == [1, 3, 5, 7, 9]

    def test_two_periods_coin_problem(self):
        s = LinearSet(0, (3, 5))
        # Chicken McNugget: 3 and 5 generate everything except 1,2,4,7
        members = set(s.members(20))
        assert members == set(range(21)) - {1, 2, 4, 7}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(LinSetError):
            LinearSet(-1)
        with pytest.raises(LinSetError):
            LinearSet(0, (0,))

    def test_iter_members(self):
        s = LinearSet(2, (3,))
        it = s.iter_members()
        assert [next(it) for _ in range(4)] == [2, 5, 8, 11]

    def test_str(self):
        assert str(LinearSet(5)) == "{5}"
        assert "k*2" in str(LinearSet(1, (2,)))


class TestLemma10:
    def test_intersection_of_parities(self):
        evens = LinearSet(0, (2,))
        mult3 = LinearSet(0, (3,))
        inter = intersect_infinite_linear(evens, mult3)
        assert inter is not None
        assert inter.is_infinite
        # every member divisible by 6
        for m in inter.members(40):
            assert m % 6 == 0

    def test_empty_intersection(self):
        odds = LinearSet(1, (2,))
        evens = LinearSet(0, (2,))
        assert intersect_infinite_linear(odds, evens) is None

    def test_finite_operand_rejected(self):
        with pytest.raises(LinSetError):
            intersect_infinite_linear(LinearSet(1), LinearSet(0, (2,)))

    @given(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60)
    def test_intersection_is_subset_of_both(self, b1, p1, b2, p2):
        a = LinearSet(b1, (p1,))
        b = LinearSet(b2, (p2,))
        inter = intersect_infinite_linear(a, b)
        if inter is not None:
            for m in inter.members(60):
                assert m in a and m in b


class TestSemilinear:
    def test_union_membership(self):
        s = SemilinearSet((LinearSet(1), LinearSet(4, (3,))))
        assert 1 in s
        assert 4 in s and 7 in s
        assert 2 not in s

    def test_members_merged_sorted(self):
        s = SemilinearSet((LinearSet(2), LinearSet(1, (4,))))
        assert s.members(10) == [1, 2, 5, 9]

    def test_max_fin(self):
        parts = (LinearSet(7), LinearSet(0, (2,)), LinearSet(3))
        assert max_fin(parts) == 7
        assert max_fin((LinearSet(0, (2,)),)) == 0


class TestSizeImage:
    def test_nat_sizes_are_all_positives(self):
        image = size_image_semilinear(nat_system(), NAT)
        assert image.members(12) == list(range(1, 13))

    def test_tree_sizes_are_odd(self):
        image = size_image_semilinear(tree_system(), TREE)
        assert image.members(13) == [1, 3, 5, 7, 9, 11, 13]
        # recovered representation is eventually periodic with period 2
        assert any(p.periods == (2,) for p in image.infinite_parts())

    def test_semilinear_matches_dp_counts(self):
        adts = natlist_system()
        image = size_image_semilinear(adts, NATLIST)
        for k in range(1, 40):
            realizable = adts.count_terms_of_size(NATLIST, k) > 0
            assert (k in image) == realizable


class TestExpanding:
    def test_paper_example_7(self):
        # Nat not expanding (|T^k| = 1); List expanding (Fibonacci growth)
        assert not is_expanding_sort(nat_system(), NAT)
        assert is_expanding_sort(natlist_system(), NATLIST)
        assert is_expanding_sort(tree_system(), TREE)

    def test_signature_level(self):
        assert not is_expanding_signature(nat_system())
        assert is_expanding_signature(tree_system())
        # NatList's signature contains Nat, which is not expanding
        assert not is_expanding_signature(natlist_system())
