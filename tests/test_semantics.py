"""Tests for ground semantics: constraint evaluation, bounded fixpoints."""

import pytest

from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.chc.semantics import (
    ClauseViolation,
    SemanticsError,
    bounded_least_fixpoint,
    check_model_bounded,
    eval_constraint,
)
from repro.logic.adt import NAT, nat, nat_system, nat_value
from repro.logic.formulas import And, Eq, Not, Or, TRUE, Tester, conj
from repro.logic.sorts import PredSymbol
from repro.logic.terms import Var
from repro.problems import (
    even_system,
    incdec_system,
    odd_unsat_system,
    s,
    z,
)

ADTS = nat_system()
X = Var("x", NAT)


class TestEvalConstraint:
    def test_equality(self):
        assert eval_constraint(Eq(nat(2), nat(2)), ADTS)
        assert not eval_constraint(Eq(nat(2), nat(3)), ADTS)

    def test_tester(self):
        assert eval_constraint(Tester(ADTS.constructor("S"), nat(1)), ADTS)
        assert not eval_constraint(Tester(ADTS.constructor("S"), nat(0)), ADTS)

    def test_boolean_connectives(self):
        t = Eq(nat(1), nat(1))
        f = Eq(nat(1), nat(2))
        assert eval_constraint(And((t, t)), ADTS)
        assert not eval_constraint(And((t, f)), ADTS)
        assert eval_constraint(Or((f, t)), ADTS)
        assert eval_constraint(Not(f), ADTS)

    def test_non_ground_rejected(self):
        with pytest.raises(SemanticsError):
            eval_constraint(Eq(X, nat(1)), ADTS)


class TestBoundedFixpoint:
    def test_even_facts_are_the_even_numerals(self):
        result = bounded_least_fixpoint(
            even_system(), max_height=7, check_queries=False
        )
        even = even_system().predicates["even"]
        values = sorted(nat_value(args[0]) for args in result.facts[even])
        assert values == [0, 2, 4, 6]

    def test_incdec_facts(self):
        system = incdec_system()
        result = bounded_least_fixpoint(
            system, max_height=5, check_queries=False
        )
        inc = system.predicates["inc"]
        pairs = {
            (nat_value(a), nat_value(b)) for a, b in result.facts[inc]
        }
        assert pairs == {(0, 1), (1, 2), (2, 3), (3, 4)}

    def test_safe_system_has_no_refutation(self):
        result = bounded_least_fixpoint(even_system(), max_height=6)
        assert result.refutation is None

    def test_unsat_system_finds_refutation(self):
        result = bounded_least_fixpoint(odd_unsat_system(), max_height=4)
        assert result.refutation is not None

    def test_refutation_is_a_derivation_of_false(self):
        result = bounded_least_fixpoint(odd_unsat_system(), max_height=4)
        d = result.refutation
        assert d.conclusion is None
        assert d.depth() >= 1
        assert "false" in d.format()

    def test_derivation_premises_are_derived_facts(self):
        result = bounded_least_fixpoint(odd_unsat_system(), max_height=4)

        def check(d):
            for premise in d.premises:
                pred, args = premise.conclusion
                assert result.holds(pred, args)
                check(premise)

        check(result.refutation)

    def test_max_facts_cap_marks_unsaturated(self):
        result = bounded_least_fixpoint(
            even_system(), max_height=12, max_facts=2, check_queries=False
        )
        assert not result.saturated

    def test_step_budget_marks_unsaturated(self):
        result = bounded_least_fixpoint(
            even_system(), max_height=7, max_steps=3, check_queries=False
        )
        assert not result.saturated

    def test_saturation_detected_for_closed_systems(self):
        # single fact, no recursion: saturates immediately
        system = CHCSystem(nat_system())
        p = PredSymbol("p", (NAT,))
        system.add(Clause(TRUE, (), BodyAtom(p, (z(),))))
        result = bounded_least_fixpoint(system, max_height=3)
        assert result.saturated
        assert result.fact_count() == 1


class TestCheckModelBounded:
    def test_true_invariant_passes(self):
        system = even_system()
        even = system.predicates["even"]

        def interp(pred, args):
            return nat_value(args[0]) % 2 == 0

        assert check_model_bounded(system, interp, max_height=5) is None

    def test_wrong_invariant_reports_violation(self):
        system = even_system()

        def interp(pred, args):
            return True  # accepts everything: violates the query

        violation = check_model_bounded(system, interp, max_height=4)
        assert isinstance(violation, ClauseViolation)
        assert violation.clause.is_query
        assert "violated" in str(violation)

    def test_non_inductive_invariant_reports_definite_violation(self):
        system = even_system()

        def interp(pred, args):
            return nat_value(args[0]) == 0  # not closed under the step

        violation = check_model_bounded(system, interp, max_height=4)
        assert violation is not None
        assert not violation.clause.is_query
