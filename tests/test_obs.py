"""Tests for the observability layer: tracer, metrics, event bus,
live progress, profiling hook, and — most importantly — the
differential guarantee that turning observability on changes nothing
about verdicts (``benchmarks/bench_obs.py`` gates the same property
with an overhead budget on top).
"""

import json
import pstats

import pytest

from repro.benchgen.suite import Suite
from repro.exec import ExecPolicy, ReproFaultPlan, ResultsJournal, load_journal
from repro.harness import campaign_report
from repro.harness.runner import run_campaign, task_id_for
from repro.obs import (
    EventBus,
    HeartbeatRenderer,
    MetricsRegistry,
    ProgressMonitor,
    SpanTracer,
    heartbeat_event,
    legacy_line_subscriber,
    load_trace,
    maybe_profile,
    profile_path,
    to_chrome,
    write_chrome,
)
from repro.obs import runtime as obs_runtime
from repro.problems import even_system, incdec_system, odd_unsat_system


@pytest.fixture(autouse=True)
def clean_obs_runtime():
    """Every test starts and ends with the switchboard off."""
    obs_runtime.reset()
    yield
    obs_runtime.reset()


def tiny_suite() -> Suite:
    suite = Suite("Tiny")
    suite.add("even", "parity", even_system, "sat")
    suite.add("incdec", "offset", incdec_system, "sat")
    suite.add("broken", "broken", odd_unsat_system, "unsat")
    return suite


def comparable(campaign):
    """The obs-independent core of a campaign's verdicts."""
    return {
        task_id_for(r.problem, r.solver): (
            r.status.value,
            r.correct,
            r.details.get("model_size"),
        )
        for r in campaign.records
    }


class TestTracer:
    def test_spans_nest_and_ids_are_unique(self):
        tracer = SpanTracer()
        outer = tracer.begin("campaign")
        inner = tracer.begin("task", {"task": "t0"})
        tracer.end(inner)
        tracer.end(outer)
        records = tracer.drain()
        assert [r["name"] for r in records] == ["task", "campaign"]
        by_name = {r["name"]: r for r in records}
        assert by_name["campaign"]["parent"] is None
        assert by_name["task"]["parent"] == by_name["campaign"]["id"]
        ids = [r["id"] for r in records]
        assert len(set(ids)) == len(ids)
        assert all(r["dur"] >= 0 for r in records)

    def test_aggregate_is_child_of_stack_top(self):
        tracer = SpanTracer()
        with tracer.span("vector") as vec:
            tracer.aggregate("propagate", 0.25, count=123)
        records = tracer.drain()
        agg = next(r for r in records if r["name"] == "propagate")
        assert agg["parent"] == vec.sid
        assert agg["args"]["aggregate"] is True
        assert agg["args"]["count"] == 123
        assert agg["dur"] == pytest.approx(0.25e6)

    def test_out_of_order_end_unwinds_cleanly(self):
        tracer = SpanTracer()
        outer = tracer.begin("solve")
        tracer.begin("vector")  # never explicitly ended
        tracer.end(outer)
        records = tracer.drain()
        # the abandoned inner span is unwound (dropped), not recorded
        # as a sibling — nesting stays consistent for later spans
        assert [r["name"] for r in records] == ["solve"]
        with tracer.span("task"):
            pass
        assert tracer.drain()[0]["parent"] is None

    def test_close_finishes_open_spans(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = SpanTracer(path)
        tracer.begin("campaign")
        tracer.begin("task")
        tracer.close()
        records = load_trace(path)
        assert {r["name"] for r in records} == {"campaign", "task"}

    def test_file_roundtrip_and_chrome_export(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = SpanTracer(path)
        with tracer.span("campaign", {"files": 2}):
            with tracer.span("task", {"task": "t0"}):
                tracer.aggregate("encode", 0.01, count=3)
        tracer.close()
        records = load_trace(path)
        assert len(records) == 3
        assert all(r["kind"] == "span" and r["v"] == 1 for r in records)
        ids = {r["id"] for r in records}
        for r in records:
            assert r["parent"] is None or r["parent"] in ids
        chrome = to_chrome(records)
        assert len(chrome["traceEvents"]) == 3
        assert all(e["ph"] == "X" for e in chrome["traceEvents"])
        assert min(e["ts"] for e in chrome["traceEvents"]) == 0.0
        out = str(tmp_path / "trace.chrome.json")
        assert write_chrome(path, out) == 3
        with open(out) as handle:
            assert len(json.load(handle)["traceEvents"]) == 3

    def test_load_trace_drops_truncated_final_line(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        tracer = SpanTracer(path)
        with tracer.span("task"):
            pass
        tracer.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "span", "name": "tor')
        assert [r["name"] for r in load_trace(path)] == ["task"]

    def test_absorb_adopts_worker_records(self):
        worker = SpanTracer()
        with worker.span("task", {"task": "w0"}):
            pass
        shipped = worker.drain()
        parent = SpanTracer()
        parent.absorb(shipped + ["garbage", {"kind": "other"}])
        records = parent.drain()
        assert [r["name"] for r in records] == ["task"]


class TestMetrics:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("conflicts", 5)
        reg.inc("conflicts", 2)
        reg.gauge("engines_live", 3)
        reg.gauge("engines_live", 1)
        reg.timing("task.elapsed", 0.05)
        reg.timing("task.elapsed", 2.0)
        snap = reg.snapshot()
        assert snap["schema"] == "metrics" and snap["version"] == 1
        assert snap["counters"]["conflicts"] == 7
        assert snap["gauges"]["engines_live"] == 1
        hist = snap["histograms"]["task.elapsed"]
        assert hist["count"] == 2
        assert hist["total"] == pytest.approx(2.05)
        assert hist["min"] == 0.05 and hist["max"] == 2.0
        assert sum(b["count"] for b in hist["buckets"]) == 2

    def test_publish_skips_labels_and_recurses(self):
        reg = MetricsRegistry()
        reg.publish(
            "sat",
            {
                "conflicts": 10,
                "restarts": 2,
                "backend": "python",  # label, not a measurement
                "enabled": True,  # flag, not a count
                "missing": None,
                "nested": {"inner": 4},
            },
        )
        reg.publish("sat", {"conflicts": 5})
        counters = reg.snapshot()["counters"]
        assert counters["sat.conflicts"] == 15
        assert counters["sat.restarts"] == 2
        assert counters["sat.nested.inner"] == 4
        assert "sat.backend" not in counters
        assert "sat.enabled" not in counters
        assert "sat.missing" not in counters

    def test_merge_is_additive(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 1)
        a.timing("t", 0.5)
        b.inc("x", 2)
        b.timing("t", 1.5)
        b.gauge("g", 7)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["x"] == 3
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["t"]["count"] == 2
        assert snap["histograms"]["t"]["total"] == pytest.approx(2.0)
        a.merge(None)  # tolerated
        a.merge({})

    def test_write_is_loadable_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("n")
        path = str(tmp_path / "metrics.json")
        reg.write(path)
        with open(path) as handle:
            assert json.load(handle)["counters"]["n"] == 1


class TestRuntime:
    def test_configure_and_reset(self, tmp_path):
        assert not obs_runtime.enabled()
        obs_runtime.configure(
            trace_path=str(tmp_path / "t.jsonl"), metrics=True
        )
        assert obs_runtime.TRACER is not None
        assert obs_runtime.METRICS is not None
        assert obs_runtime.enabled()
        obs_runtime.reset()
        assert not obs_runtime.enabled()

    def test_live_sample_tracks_watched_stats(self):
        class FakeSatStats:
            conflicts = 42
            propagations = 1000

        class FakeFinderStats:
            attempts = 3
            vectors_skipped = 2

        sample = obs_runtime.live_sample()
        assert sample["task"] is None
        obs_runtime.task_started("suite/p0/ringen")
        obs_runtime.watch_solver_stats(FakeSatStats())
        obs_runtime.watch_finder_stats(FakeFinderStats())
        # the watched objects are gone (weakrefs died) — counts zero out
        sample = obs_runtime.live_sample()
        assert sample["task"] == "suite/p0/ringen"
        assert sample["conflicts"] == 0
        sat, finder = FakeSatStats(), FakeFinderStats()
        obs_runtime.watch_solver_stats(sat)
        obs_runtime.watch_finder_stats(finder)
        sample = obs_runtime.live_sample()
        assert sample["conflicts"] == 42
        assert sample["propagations"] == 1000
        assert sample["vectors"] == 5
        assert sample["elapsed"] >= 0.0
        obs_runtime.task_finished()
        assert obs_runtime.live_sample()["task"] is None


class TestEvents:
    def test_legacy_adapter_renders_historical_lines(self):
        lines = []
        on_event = legacy_line_subscriber(lines.append)
        on_event(
            {
                "kind": "task_finished",
                "task": "Tiny/even/ringen",
                "status": "sat",
                "elapsed": 0.1234,
                "error_kind": None,
                "attempts": 1,
            }
        )
        on_event(
            {
                "kind": "task_finished",
                "task": "Tiny/broken/ringen",
                "status": "unknown",
                "elapsed": 1.0,
                "error_kind": "timeout",
                "attempts": 2,
            }
        )
        on_event({"kind": "heartbeat", "task": "x"})  # ignored
        assert lines == [
            "Tiny/even/ringen: sat (0.12s)",
            "Tiny/broken/ringen: unknown (1.00s) [timeout]",
        ]

    def test_heartbeat_renderer_throttles(self):
        lines = []
        renderer = HeartbeatRenderer(lines.append, min_interval=3600.0)
        beat = {
            "kind": "heartbeat",
            "task": "t0",
            "elapsed": 1.0,
            "conflicts": 10,
            "conflicts_per_s": 10.0,
            "vectors": 2,
            "rss_kb": 4096,
        }
        for _ in range(5):
            renderer(beat)
        assert renderer.renders == 1
        assert len(lines) == 1
        assert "t0" in lines[0] and "rss 4096 KiB" in lines[0]
        eager = HeartbeatRenderer(lines.append, min_interval=0.0)
        for _ in range(3):
            eager(beat)
        assert eager.renders == 3

    def test_heartbeat_event_derives_rate(self):
        first = {"task": "t", "elapsed": 1.0, "conflicts": 100}
        second = {"task": "t", "elapsed": 2.0, "conflicts": 350}
        event = heartbeat_event(second, first)
        assert event["kind"] == "heartbeat"
        assert event["conflicts_per_s"] == pytest.approx(250.0)
        # different task: no rate carries over
        assert heartbeat_event(second, {"task": "u", "elapsed": 1.0})[
            "conflicts_per_s"
        ] == 0.0

    def test_progress_monitor_emits_for_inflight_task(self):
        bus = EventBus()
        beats = []
        bus.subscribe(
            lambda e: beats.append(e) if e["kind"] == "heartbeat" else None
        )
        monitor = ProgressMonitor(bus, interval=0.01)
        obs_runtime.task_started("live/task")
        monitor.start()
        deadline = __import__("time").monotonic() + 2.0
        while not beats and __import__("time").monotonic() < deadline:
            __import__("time").sleep(0.01)
        monitor.stop()
        assert beats and beats[0]["task"] == "live/task"


class TestProfiler:
    def test_profile_path_sanitizes(self, tmp_path):
        path = profile_path(str(tmp_path), "Suite/p0/ringen")
        assert path.endswith("Suite_p0_ringen.prof")

    def test_maybe_profile_writes_loadable_pstats(self, tmp_path):
        path = str(tmp_path / "profiles" / "t.prof")
        with maybe_profile(path):
            sum(range(1000))
        stats = pstats.Stats(path)
        assert stats.total_calls >= 1

    def test_maybe_profile_none_is_noop(self):
        with maybe_profile(None):
            pass


class TestSolverPhaseTiming:
    def test_phase_times_on_off(self):
        from repro.sat.solver import CDCLSolver

        solver = CDCLSolver()
        a, b = solver.new_var(), solver.new_var()
        solver.add_clause([a, b])
        assert solver.phase_times() == {}
        solver.set_phase_timing(True)
        assert solver.solve() is True
        times = solver.phase_times()
        assert "propagate" in times
        secs, calls = times["propagate"]
        assert secs >= 0.0 and calls >= 1
        solver.set_phase_timing(False)
        assert solver.phase_times() == {}
        assert solver.solve() is True  # timing off: still solves


class TestJournalTimestamps:
    def test_records_are_timestamped(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with ResultsJournal(path, meta={"timeout": 1.0}) as journal:
            journal.record({"task": "a", "status": "sat"})
            journal.record({"task": "b", "status": "sat", "ts": 123.0})
        meta, entries = load_journal(path)
        assert meta["version"] == 1
        assert isinstance(meta["created"], float)
        assert meta["created_iso"].endswith("+00:00")
        assert entries["a"]["ts"] > 1e9  # epoch seconds, stamped on write
        assert entries["b"]["ts"] == 123.0  # caller-supplied wins


class TestDifferential:
    """Observability must never change verdicts — on vs off, both paths."""

    def run_tiny(self, *, isolate: bool) -> object:
        return run_campaign(
            [tiny_suite()],
            solvers=["ringen"],
            timeout=5.0,
            policy=ExecPolicy(isolate=isolate),
        )

    @pytest.mark.parametrize("isolate", [False, True])
    def test_verdicts_identical_with_obs_on(self, tmp_path, isolate):
        baseline = self.run_tiny(isolate=isolate)
        trace = str(tmp_path / "trace.jsonl")
        metrics = str(tmp_path / "metrics.json")
        obs_runtime.configure(trace_path=trace, metrics=True)
        observed = self.run_tiny(isolate=isolate)
        obs_runtime.METRICS.write(metrics)
        obs_runtime.reset()
        assert comparable(observed) == comparable(baseline)
        records = load_trace(trace)
        names = {r["name"] for r in records}
        assert {"campaign", "task", "solve", "vector"} <= names
        ids = [r["id"] for r in records]
        assert len(set(ids)) == len(ids)
        known = set(ids)
        assert all(
            r["parent"] is None or r["parent"] in known for r in records
        )
        with open(metrics) as handle:
            snap = json.load(handle)
        assert snap["histograms"]["task.elapsed"]["count"] == 3
        assert snap["counters"]["task.status.sat"] == 2
        assert snap["counters"]["task.status.unsat"] == 1
        assert any(k.startswith("sat.") for k in snap["counters"])
        assert any(k.startswith("phase.") for k in snap["counters"])

    def test_campaign_obs_snapshot_feeds_report(self):
        obs_runtime.configure(metrics=True)
        campaign = self.run_tiny(isolate=False)
        obs_runtime.reset()
        assert campaign.obs is not None
        text = campaign_report(campaign, {"Tiny": 3})
        assert "## Timing breakdown — solver phases" in text
        assert "## Timing breakdown — task wall clock" in text

    def test_report_without_obs_has_no_timing_section(self):
        campaign = self.run_tiny(isolate=False)
        assert campaign.obs is None
        assert "Timing breakdown" not in campaign_report(campaign, {"Tiny": 3})


class TestLiveProgress:
    def test_isolated_hang_produces_heartbeat_renders(self):
        """A hung isolated task emits heartbeats over the verdict pipe,
        and the supervisor renders them — exactly the situation live
        progress exists for (no verdicts to print, work in flight)."""
        lines = []
        plan = ReproFaultPlan.parse("hang@0")
        campaign = run_campaign(
            [tiny_suite()],
            solvers=["ringen"],
            timeout=0.3,
            progress=lines.append,
            policy=ExecPolicy(
                isolate=True,
                fault_plan=plan,
                heartbeat_interval=0.02,
                progress_throttle=0.0,
                hard_timeout_factor=1.0,
                hard_timeout_grace=0.2,
            ),
        )
        assert campaign.exec_stats["heartbeats_received"] >= 1
        assert campaign.exec_stats["last_heartbeat"]["task"]
        assert any(line.startswith("[progress]") for line in lines)
        # the hung task was killed by the watchdog, the others finished
        statuses = {
            task_id_for(r.problem, r.solver): r.status.value
            for r in campaign.records
        }
        assert statuses["Tiny/even/ringen"] == "unknown"
        assert statuses["Tiny/incdec/ringen"] == "sat"
