"""Smoke tests: every example script runs to completion.

The examples are the quickstart documentation; they must keep working as
the API evolves.  Each is executed in-process (importing the module and
calling ``main``) to keep failures debuggable.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str) -> None:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name[:-3], path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "stlc_inhabitation.py",
        "expressiveness_tour.py",
        "custom_verification.py",
    } <= names


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "verdict: sat" in out
    assert "finite model size: 2" in out
    assert "bounded Herbrand verification: OK" in out


def test_custom_verification(capsys):
    run_example("custom_verification.py")
    out = capsys.readouterr().out
    assert "verdict: sat" in out
    assert "verdict: unsat" in out
    assert "buggy-dangling-a" in out


@pytest.mark.slow
def test_expressiveness_tour(capsys):
    run_example("expressiveness_tour.py")
    out = capsys.readouterr().out
    assert "EvenLeft" in out
    assert "Prop. 1" in out
    assert "Prop. 2" in out


@pytest.mark.slow
def test_stlc_inhabitation(capsys):
    run_example("stlc_inhabitation.py")
    out = capsys.readouterr().out
    assert "RInGen verdict: sat" in out
    assert "inductive: True" in out
