"""Tests for the finite model finder and finite structures (Sec. 4.1/4.2)."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.automata.from_model import (
    automata_to_model,
    herbrand_relation_member,
    model_to_automaton,
)
from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.chc.transform import preprocess
from repro.logic.adt import NAT, S, Z, nat, nat_system, nat_value
from repro.logic.formulas import TRUE
from repro.logic.sorts import FuncSymbol, PredSymbol, Sort
from repro.logic.terms import App, Var
from repro.mace.finder import (
    ModelFinder,
    find_model,
    flatten_clause,
    size_vectors,
)
from repro.mace.model import FiniteModel, ModelError, validate_model
from repro.problems import (
    diseq_zz_system,
    even_system,
    evenleft_system,
    incdec_system,
    odd_unsat_system,
)

NATS = nat_system()
EVEN = PredSymbol("even", (NAT,))
X = Var("x", NAT)


def paper_even_model() -> FiniteModel:
    """The Sec. 4.1 model: |M| = {0,1}, Z=0, S(x)=1-x, even={0}."""
    return FiniteModel(
        {NAT: 2},
        {Z: {(): 0}, S: {(0,): 1, (1,): 0}},
        {EVEN: {(0,)}},
    )


class TestFiniteModel:
    def test_eval_term(self):
        model = paper_even_model()
        assert model.eval_term(nat(0)) == 0
        assert model.eval_term(nat(1)) == 1
        assert model.eval_term(nat(4)) == 0

    def test_eval_term_with_env(self):
        model = paper_even_model()
        assert model.eval_term(App(S, (X,)), {X: 0}) == 1

    def test_unbound_variable_rejected(self):
        with pytest.raises(ModelError):
            paper_even_model().eval_term(X)

    def test_holds(self):
        model = paper_even_model()
        assert model.holds(EVEN, (0,))
        assert not model.holds(EVEN, (1,))

    def test_satisfies_preprocessed_even(self):
        prepared = preprocess(even_system())
        model = paper_even_model()
        # add empty diseq interpretations if any predicate is missing
        for pred in prepared.predicates.values():
            model.predicates.setdefault(pred, set())
        # Even has no diseq predicates: direct check
        assert model.satisfies(prepared)
        assert model.satisfies(prepared, herbrand=True)

    def test_violation_reported(self):
        prepared = preprocess(even_system())
        broken = paper_even_model()
        broken.predicates[EVEN] = {(0,), (1,)}
        for pred in prepared.predicates.values():
            broken.predicates.setdefault(pred, set())
        violation = broken.first_violation(prepared)
        assert violation is not None
        clause, env = violation
        assert clause.is_query

    def test_reachable_elements(self):
        model = paper_even_model()
        assert model.reachable_elements(NATS)[NAT] == {0, 1}
        # junk element: unreachable
        bigger = FiniteModel(
            {NAT: 3},
            {Z: {(): 0}, S: {(0,): 1, (1,): 0, (2,): 2}},
            {EVEN: {(0,)}},
        )
        assert bigger.reachable_elements(NATS)[NAT] == {0, 1}

    def test_validate_model_detects_partial_table(self):
        broken = FiniteModel(
            {NAT: 2}, {Z: {(): 0}, S: {(0,): 1}}, {EVEN: set()}
        )
        with pytest.raises(ModelError):
            validate_model(broken)

    def test_validate_model_detects_out_of_domain(self):
        broken = paper_even_model()
        broken.predicates[EVEN] = {(7,)}
        with pytest.raises(ModelError):
            validate_model(broken)

    def test_describe_is_readable(self):
        text = paper_even_model().describe()
        assert "M(even)" in text
        assert "|M|_Nat" in text


class TestFlattening:
    def test_flatten_introduces_definitions(self):
        system = preprocess(even_system())
        counter = itertools.count()
        flat = flatten_clause(system.clauses[1], counter)
        # head even(S(S(x))) flattens into two S-definitions
        assert len(flat.defs) == 2
        assert flat.head is not None

    def test_shared_subterms_share_variables(self):
        p = PredSymbol("p", (NAT, NAT))
        system = CHCSystem(nat_system())
        t = App(S, (App(Z),))
        system.add(Clause(TRUE, (), BodyAtom(p, (t, t))))
        flat = flatten_clause(system.clauses[0], itertools.count())
        assert flat.head.vars[0] == flat.head.vars[1]

    def test_constraint_clause_rejected(self):
        from repro.logic.formulas import Eq
        from repro.mace.finder import FinderError

        system = CHCSystem(nat_system())
        system.add(Clause(Eq(X, App(Z)), (), BodyAtom(EVEN, (X,))))
        with pytest.raises(FinderError):
            flatten_clause(system.clauses[0], itertools.count())


class TestSizeVectors:
    def test_single_sort(self):
        vectors = list(size_vectors([NAT], 3))
        assert [v[NAT] for v in vectors] == [1, 2, 3]

    def test_total_ordering(self):
        a, b = Sort("A"), Sort("B")
        vectors = list(size_vectors([a, b], 3))
        totals = [v[a] + v[b] for v in vectors]
        assert totals == sorted(totals)
        assert (1, 1) == (vectors[0][a], vectors[0][b])

    def test_min_total(self):
        vectors = list(size_vectors([NAT], 5, min_total=3))
        assert [v[NAT] for v in vectors] == [3, 4, 5]


class TestFinder:
    def test_even_finds_paper_model(self):
        prepared = preprocess(even_system())
        result = find_model(prepared)
        assert result.found
        model = result.model
        assert model.size() == 2
        # it must satisfy the clauses and alternate parity
        assert model.satisfies(prepared)
        z_val = model.eval_term(nat(0))
        assert model.holds(EVEN, (z_val,))
        assert not model.holds(EVEN, (model.eval_term(nat(1)),))

    def test_unsat_euf_side_has_no_model(self):
        # P(Z); P(x) -> P(S(x)); P(x) -> false  — no model of any size
        p = PredSymbol("p", (NAT,))
        system = CHCSystem(nat_system())
        x = Var("x", NAT)
        system.add(Clause(TRUE, (), BodyAtom(p, (App(Z),))))
        system.add(
            Clause(TRUE, (BodyAtom(p, (x,)),), BodyAtom(p, (App(S, (x,)),)))
        )
        system.add(Clause(TRUE, (BodyAtom(p, (x,)),), None))
        result = find_model(system, max_total_size=4)
        assert not result.found

    def test_symmetry_breaking_preserves_satisfiability(self):
        prepared = preprocess(even_system())
        with_sb = find_model(prepared, symmetry_breaking=True)
        without_sb = find_model(prepared, symmetry_breaking=False)
        assert with_sb.found and without_sb.found
        assert with_sb.model.size() == without_sb.model.size()

    def test_found_models_are_valid(self):
        prepared = preprocess(even_system())
        result = find_model(prepared)
        validate_model(result.model)

    def test_min_total_size_skips_small_models(self):
        prepared = preprocess(even_system())
        result = find_model(prepared, min_total_size=3)
        assert result.found
        assert result.model.size() >= 3
        assert result.model.satisfies(prepared)

    def test_timeout_returns_gracefully(self):
        from repro.problems import diag_system

        prepared = preprocess(diag_system())
        result = find_model(prepared, timeout=0.3, max_total_size=12)
        assert not result.found


SEED_SUITES = {
    "even": even_system,
    "incdec": incdec_system,
    "evenleft": evenleft_system,
    "diseq_zz": diseq_zz_system,
}
_PREPARED = {
    name: preprocess(factory()) for name, factory in SEED_SUITES.items()
}


class TestIncrementalEngine:
    """The shared-state engine must be a pure optimization."""

    @given(
        st.sampled_from(sorted(_PREPARED)),
        st.integers(min_value=4, max_value=8),
    )
    @settings(max_examples=25, deadline=None)
    def test_incremental_matches_scratch_on_seed_suites(
        self, name, max_total
    ):
        prepared = _PREPARED[name]
        inc = find_model(
            prepared, incremental=True, max_total_size=max_total
        )
        scr = find_model(
            prepared, incremental=False, max_total_size=max_total
        )
        assert inc.found and scr.found
        assert inc.model.size() == scr.model.size()
        assert inc.model.satisfies(prepared)
        assert scr.model.satisfies(prepared)

    def test_unsat_verdicts_agree(self):
        prepared = preprocess(odd_unsat_system())
        inc = find_model(prepared, incremental=True, max_total_size=5)
        scr = find_model(prepared, incremental=False, max_total_size=5)
        assert not inc.found and not scr.found

    def test_incremental_reuses_solver_state(self):
        prepared = _PREPARED["incdec"]
        inc = find_model(prepared, incremental=True)
        scr = find_model(prepared, incremental=False)
        # the whole point: carried clauses, strictly less re-encoding
        assert inc.stats.clauses_reused > 0
        assert inc.stats.clauses_encoded < scr.stats.clauses_encoded
        assert inc.stats.solver_resets == 0
        assert scr.stats.solver_resets == scr.stats.attempts
        assert scr.stats.clauses_reused == 0

    def test_search_resume_keeps_engine_state(self):
        # resuming at a larger minimum size (the Herbrand-retry path)
        # reuses the encoding instead of starting over
        finder = ModelFinder(_PREPARED["incdec"])
        first = finder.search()
        assert first.found
        resumed = finder.search(
            min_total_size=first.model.size() + 1, deadline=None
        )
        assert resumed.found
        assert resumed.model.size() > first.model.size()
        assert resumed.stats.clauses_reused > 0
        assert resumed.model.satisfies(_PREPARED["incdec"])

    def test_finder_stats_as_dict_roundtrip(self):
        result = find_model(_PREPARED["even"])
        stats = result.stats.as_dict()
        assert stats["model_size"] == result.model.size()
        assert stats["incremental"] is True
        assert stats["clauses_encoded"] > 0
        assert stats["vectors_refuted"] >= 0
        assert "vectors_skipped" in stats


class TestVerdictCompleteness:
    """FinderResult.complete: 'no model <= N' vs 'unknown (budget)'."""

    def test_found_model_is_complete(self):
        result = find_model(_PREPARED["even"])
        assert result.found
        assert result.complete

    def test_exhaustively_refuted_sweep_is_complete(self):
        prepared = preprocess(odd_unsat_system())
        result = find_model(prepared, max_total_size=5)
        assert not result.found
        assert result.complete
        stats = result.stats
        assert stats.vectors_exhausted == 0
        # every candidate vector is accounted for: refuted or skipped
        assert (
            stats.vectors_refuted + stats.vectors_skipped >= 5
            or stats.hopeless
        )

    def test_deadline_cut_sweep_is_incomplete(self):
        prepared = preprocess(odd_unsat_system())
        result = find_model(prepared, max_total_size=5, timeout=0.0)
        assert not result.found
        assert not result.complete

    def test_budget_exhausted_vectors_break_completeness(self):
        # a conflict budget of 0 aborts on the very first conflict, so
        # vectors needing real search come back indeterminate — the
        # sweep must not claim it refuted the size bound
        from repro.problems import diag_system

        prepared = preprocess(diag_system())
        result = find_model(
            prepared, max_total_size=5, max_conflicts_per_size=0
        )
        assert not result.found
        if result.stats.vectors_exhausted > 0:
            assert not result.complete
        else:  # every vector died in assumption propagation: a proof
            assert result.complete

    def test_refuted_and_exhausted_are_distinguished(self):
        prepared = preprocess(odd_unsat_system())
        full = find_model(prepared, max_total_size=5)
        starved = find_model(
            prepared, max_total_size=5, max_conflicts_per_size=0
        )
        assert full.stats.vectors_exhausted == 0
        assert (
            full.stats.vectors_refuted + full.stats.vectors_skipped
            == starved.stats.vectors_refuted
            + starved.stats.vectors_skipped
            + starved.stats.vectors_exhausted
        )


class TestTheorem1:
    """Theorem 1: L(A_P) = { t | M[[t]] in M(P) }."""

    def test_even_model_automaton_matches_evaluation(self):
        model = paper_even_model()
        auto = model_to_automaton(model, NATS, EVEN)
        for n in range(10):
            t = nat(n)
            assert auto.accepts(t) == model.holds(
                EVEN, (model.eval_term(t),)
            )
            assert auto.accepts(t) == herbrand_relation_member(
                model, EVEN, (t,)
            )

    def test_automaton_isomorphic_to_example_1(self):
        # the induced automaton is exactly the s0/s1 flip of Example 1
        model = paper_even_model()
        auto = model_to_automaton(model, NATS, EVEN)
        assert auto.transitions[("Z", ())] == 0
        assert auto.transitions[("S", (0,))] == 1
        assert auto.transitions[("S", (1,))] == 0
        assert auto.finals == frozenset({(0,)})

    def test_roundtrip_model_automata_model(self):
        model = paper_even_model()
        auto = model_to_automaton(model, NATS, EVEN)
        back = automata_to_model(NATS, {EVEN: auto})
        assert back.domains == model.domains
        assert back.predicates[EVEN] == model.predicates[EVEN]
        for n in range(6):
            assert back.eval_term(nat(n)) == model.eval_term(nat(n))

    @given(
        st.integers(min_value=1, max_value=4),
        st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_theorem1_on_random_models(self, domain, data):
        """Random finite Nat-structures: acceptance == evaluation."""
        z_val = data.draw(st.integers(min_value=0, max_value=domain - 1))
        s_table = {
            (i,): data.draw(
                st.integers(min_value=0, max_value=domain - 1)
            )
            for i in range(domain)
        }
        relation = {
            (i,)
            for i in range(domain)
            if data.draw(st.booleans())
        }
        model = FiniteModel(
            {NAT: domain}, {Z: {(): z_val}, S: s_table}, {EVEN: relation}
        )
        auto = model_to_automaton(model, NATS, EVEN)
        for n in range(8):
            t = nat(n)
            assert auto.accepts(t) == (
                (model.eval_term(t),) in relation
            )
