"""Tests for the term layer: construction, metrics, substitution, unification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.logic.adt import NAT, S, Z, nat, nat_system, nat_value
from repro.logic.sorts import FuncSymbol, Sort
from repro.logic.terms import (
    App,
    TermError,
    Var,
    compose,
    count_symbol,
    height,
    is_ground,
    matches,
    occurs,
    size,
    substitute,
    subterms,
    unify,
    variables,
)

ADTS = nat_system()
X = Var("x", NAT)
Y = Var("y", NAT)
W = Var("w", NAT)


def s(t):
    return App(S, (t,))


def z():
    return App(Z)


class TestConstruction:
    def test_constant_application(self):
        assert z().func == Z
        assert z().args == ()

    def test_nested_application(self):
        term = s(s(z()))
        assert term.func == S
        assert term.args[0] == s(z())

    def test_wrong_arity_rejected(self):
        with pytest.raises(TermError):
            App(S, ())

    def test_wrong_sort_rejected(self):
        other = Sort("Other")
        c = FuncSymbol("c", (), other)
        with pytest.raises(TermError):
            App(S, (App(c),))

    def test_equality_is_structural(self):
        assert s(z()) == s(z())
        assert s(z()) != z()

    def test_hash_consistency(self):
        assert hash(s(z())) == hash(s(z()))

    def test_immutability(self):
        term = s(z())
        with pytest.raises(AttributeError):
            term.func = Z

    def test_str_rendering(self):
        assert str(s(s(z()))) == "S(S(Z))"
        assert str(z()) == "Z"
        assert str(X) == "x"


class TestMetrics:
    def test_height_constant_is_one(self):
        assert height(z()) == 1

    def test_height_variable_is_zero(self):
        assert height(X) == 0

    def test_height_nested(self):
        assert height(s(s(z()))) == 3

    def test_size_counts_constructors(self):
        assert size(z()) == 1
        assert size(s(s(z()))) == 3
        assert size(X) == 0

    def test_numeral_roundtrip(self):
        for n in range(10):
            assert nat_value(nat(n)) == n

    def test_is_ground(self):
        assert is_ground(z())
        assert not is_ground(s(X))

    def test_count_symbol(self):
        assert count_symbol(s(s(z())), "S") == 2
        assert count_symbol(s(s(z())), "Z") == 1


class TestTraversal:
    def test_subterms_preorder(self):
        term = s(s(z()))
        assert list(subterms(term)) == [term, s(z()), z()]

    def test_variables_collects_all(self):
        assert variables(s(X)) == {X}
        assert variables(z()) == set()

    def test_occurs(self):
        assert occurs(X, s(X))
        assert not occurs(Y, s(X))


class TestSubstitution:
    def test_basic(self):
        assert substitute(s(X), {X: z()}) == s(z())

    def test_simultaneous(self):
        # simultaneous: X := Y happens without re-substituting Y
        result = substitute(s(X), {X: Y, Y: z()})
        assert result == s(Y)

    def test_identity_preserves_sharing(self):
        term = s(s(z()))
        assert substitute(term, {X: z()}) is term

    def test_compose_applies_inner_first(self):
        inner = {X: s(Y)}
        outer = {Y: z()}
        combined = compose(outer, inner)
        assert substitute(X, combined) == s(z())


class TestUnification:
    def test_unifies_var_term(self):
        subst = unify([(X, s(z()))])
        assert subst == {X: s(z())}

    def test_unifies_structures(self):
        subst = unify([(s(X), s(s(Y)))])
        assert substitute(s(X), subst) == substitute(s(s(Y)), subst)

    def test_clash_returns_none(self):
        assert unify([(z(), s(X))]) is None

    def test_occurs_check(self):
        assert unify([(X, s(X))]) is None

    def test_chained_equations(self):
        subst = unify([(X, Y), (Y, z())])
        assert substitute(X, subst) == z()
        assert substitute(Y, subst) == z()

    def test_matches_one_sided(self):
        m = matches(s(X), s(z()))
        assert m == {X: z()}
        assert matches(s(z()), s(s(z()))) is None

    def test_matches_nonlinear(self):
        f = FuncSymbol("pair", (NAT, NAT), NAT)
        pattern = App(f, (X, X))
        assert matches(pattern, App(f, (z(), z()))) == {X: z()}
        assert matches(pattern, App(f, (z(), s(z())))) is None


# ----------------------------------------------------------------------
# property-based tests
# ----------------------------------------------------------------------
nat_terms = st.integers(min_value=0, max_value=12).map(nat)


@st.composite
def open_terms(draw, max_depth=4):
    """Random Nat terms with variables at the leaves."""
    depth = draw(st.integers(min_value=0, max_value=max_depth))
    leaf = draw(st.sampled_from([X, Y, W, z()]))
    term = leaf
    for _ in range(depth):
        term = s(term)
    return term


@given(nat_terms)
def test_height_equals_size_for_numerals(term):
    # Peano numerals are unary: every constructor adds one to both
    assert height(term) == size(term)


@given(open_terms(), nat_terms)
def test_substitution_grounds_single_variable(term, filler):
    for v in variables(term):
        grounded = substitute(term, {v: filler})
        assert is_ground(grounded)


@given(open_terms(), open_terms())
@settings(max_examples=200)
def test_unify_produces_actual_unifier(left, right):
    subst = unify([(left, right)])
    if subst is not None:
        assert substitute(left, subst) == substitute(right, subst)


@given(open_terms(), nat_terms)
def test_matches_implies_substitution_equality(pattern, ground):
    m = matches(pattern, ground)
    if m is not None:
        assert substitute(pattern, m) == ground
