"""Tests for the Sec. 4 preprocessing: selectors, normalize, diseq encoding."""

import pytest

from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.chc.semantics import bounded_least_fixpoint
from repro.chc.transform import (
    diseq_rules,
    diseq_symbol,
    encode_diseq,
    has_disequalities,
    is_constraint_free,
    is_diseq_symbol,
    normalize,
    preprocess,
    remove_selectors,
    selector_func,
)
from repro.logic.adt import (
    CONS,
    NAT,
    NATLIST,
    nat,
    nat_system,
    natlist_system,
)
from repro.logic.formulas import Eq, Not, TRUE, Tester, conj, diseq as diseq_f
from repro.logic.sorts import PredSymbol
from repro.logic.terms import App, Var
from repro.problems import even_system, incdec_system, s, z

P1 = PredSymbol("p1", (NAT,))
P2 = PredSymbol("p2", (NATLIST, NATLIST))
X = Var("x", NAT)
Y = Var("y", NAT)
XS = Var("xs", NATLIST)
YS = Var("ys", NATLIST)


class TestSelectorRemoval:
    def test_paper_car_cdr_example(self):
        # ~(car(x) = cdr(y)) -> P(x, y)  becomes a constructor-equality
        # guarded clause (Sec. 4.5)
        adts = natlist_system()
        system = CHCSystem(adts)
        car = selector_func(CONS, 0)
        cdr = selector_func(CONS, 1)
        constraint = Not(
            Eq(App(car, (XS,)), App(s(z()).func, (App(car, (YS,)),)))
        )
        system.add(Clause(constraint, (), BodyAtom(P2, (XS, YS))))
        out = remove_selectors(system)
        # no selector symbols remain anywhere
        text = str(out)
        assert "cons.0" not in text
        assert "cons.1" not in text

    def test_selector_in_head_removed(self):
        adts = nat_system()
        system = CHCSystem(adts)
        prev = selector_func(adts.constructor("S"), 0)
        system.add(
            Clause(TRUE, (), BodyAtom(P1, (App(prev, (s(X),)),)))
        )
        out = remove_selectors(system)
        assert "S.0" not in str(out)

    def test_noop_without_selectors(self):
        system = even_system()
        out = remove_selectors(system)
        assert len(out) == len(system)


class TestNormalize:
    def test_even_normalizes_constraint_free(self):
        out = normalize(even_system())
        assert is_constraint_free(out)
        assert len(out) == 3

    def test_incdec_equalities_unified_away(self):
        out = normalize(incdec_system())
        assert is_constraint_free(out)
        # base clause head becomes inc(Z, S(Z))
        base = [c for c in out.clauses if c.name == "inc-base"][0]
        assert str(base.head) == "inc(Z, S(Z))"

    def test_trivially_true_clause_dropped(self):
        system = CHCSystem(nat_system())
        # Z = S(x) is unsatisfiable: clause disappears
        system.add(Clause(Eq(z(), s(X)), (), BodyAtom(P1, (X,))))
        out = normalize(system)
        assert len(out) == 0

    def test_ground_disequality_simplified(self):
        system = CHCSystem(nat_system())
        system.add(
            Clause(diseq_f(z(), s(z())), (), BodyAtom(P1, (X,)))
        )
        out = normalize(system)
        assert len(out) == 1
        assert out.clauses[0].constraint == TRUE

    def test_reflexive_disequality_drops_clause(self):
        system = CHCSystem(nat_system())
        system.add(Clause(diseq_f(X, X), (), BodyAtom(P1, (X,))))
        out = normalize(system)
        assert len(out) == 0

    def test_positive_tester_becomes_equality(self):
        adts = nat_system()
        system = CHCSystem(adts)
        system.add(
            Clause(
                Tester(adts.constructor("S"), X), (), BodyAtom(P1, (X,))
            )
        )
        out = normalize(system)
        assert is_constraint_free(out)
        assert str(out.clauses[0].head).startswith("p1(S(")

    def test_negative_tester_expands_to_others(self):
        adts = nat_system()
        system = CHCSystem(adts)
        system.add(
            Clause(
                Not(Tester(adts.constructor("S"), X)),
                (),
                BodyAtom(P1, (X,)),
            )
        )
        out = normalize(system)
        assert len(out) == 1
        assert str(out.clauses[0].head) == "p1(Z)"

    def test_disjunction_splits_clauses(self):
        from repro.logic.formulas import disj

        system = CHCSystem(nat_system())
        system.add(
            Clause(
                disj(Eq(X, z()), Eq(X, s(z()))), (), BodyAtom(P1, (X,))
            )
        )
        out = normalize(system)
        assert len(out) == 2


class TestDiseqEncoding:
    def test_rules_least_model_is_true_disequality(self):
        # Lemma 3 on a bounded universe: saturate the diseq rules and
        # compare with actual disequality of all term pairs
        adts = nat_system()
        system = CHCSystem(adts)
        for rule in diseq_rules(adts, NAT):
            system.add(rule)
        result = bounded_least_fixpoint(
            system, max_height=4, check_queries=False
        )
        facts = result.facts[diseq_symbol(NAT)]
        terms = adts.terms_up_to_height(NAT, 4)
        for a in terms:
            for b in terms:
                assert ((a, b) in facts) == (a != b)

    def test_encode_produces_constraint_free(self):
        system = CHCSystem(nat_system())
        system.add(
            Clause(diseq_f(X, Y), (BodyAtom(P1, (X,)),), BodyAtom(P1, (Y,)))
        )
        out = encode_diseq(normalize(system.copy()))
        assert is_constraint_free(out)
        assert any(is_diseq_symbol(p) for p in out.predicates.values())

    def test_transitive_sort_closure(self):
        # diseq over NatList requires diseq over Nat (element positions)
        system = CHCSystem(natlist_system())
        system.add(
            Clause(
                diseq_f(XS, YS), (BodyAtom(P2, (XS, YS)),), None
            )
        )
        out = encode_diseq(normalize(system))
        names = set(out.predicates)
        assert diseq_symbol(NATLIST).name in names
        assert diseq_symbol(NAT).name in names

    def test_paper_example_3_shape(self):
        # S = { Z != S(Z) -> false } produces rules + rewritten query;
        # with our normalizer the ground true literal is simplified first,
        # so encode the un-simplifiable variable form instead
        system = CHCSystem(nat_system())
        system.add(Clause(diseq_f(X, s(X)), (), None, "q"))
        out = encode_diseq(normalize(system))
        query = out.queries[0]
        assert is_diseq_symbol(query.body[0].pred)

    def test_has_disequalities(self):
        system = CHCSystem(nat_system())
        system.add(Clause(diseq_f(X, Y), (BodyAtom(P1, (X,)),), None))
        assert has_disequalities(system)
        assert not has_disequalities(even_system())


class TestPreprocess:
    @pytest.mark.parametrize(
        "factory",
        [even_system, incdec_system],
        ids=["even", "incdec"],
    )
    def test_preprocess_is_constraint_free(self, factory):
        assert is_constraint_free(preprocess(factory()))

    def test_preprocess_preserves_satisfiability_direction(self):
        # Theorem 5 direction used by the pipeline: any finite model of
        # the preprocessed system induces a Herbrand model of the
        # original; exercised end-to-end by the core tests.  Here: the
        # preprocessed Even admits the same bounded least model on the
        # original predicate.
        original = even_system()
        prepared = preprocess(original)
        fp_orig = bounded_least_fixpoint(
            original, max_height=5, check_queries=False
        )
        fp_prep = bounded_least_fixpoint(
            prepared, max_height=5, check_queries=False
        )
        even = original.predicates["even"]
        assert fp_orig.facts[even] == fp_prep.facts[even]
