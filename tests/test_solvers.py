"""Tests for the baseline solvers: Elem, SizeElem, Induct, VeriMAP.

The key assertions mirror Figure 3: each solver succeeds exactly on the
programs whose invariants its representation class contains (and within
its search budgets), and diverges on the rest.
"""

import pytest

from repro.logic.adt import NAT, nat, nat_system, nat_value
from repro.problems import (
    diag_system,
    even_system,
    evenleft_system,
    incdec_system,
    ltgt_system,
    odd_unsat_system,
)
from repro.solvers.elem import (
    ElemConfig,
    ElemSolver,
    ground_instances,
    implied_negatives,
    solve_elem,
    terms_capped,
)
from repro.solvers.induct import solve_induct
from repro.solvers.sizeelem import (
    SizeAtom,
    SizeTemplate,
    abstract_system,
    size_expr,
    solve_sizeelem,
)
from repro.solvers.verimap import solve_verimap
from repro.theory.normal_form import (
    ELEM_FALSE,
    ELEM_TRUE,
    ElemFormula,
    GroundEqAtom,
    Literal,
    PathEqAtom,
    PathTesterAtom,
)
from repro.theory.paths import EMPTY_PATH, Path, Step

NATS = nat_system()


class TestNormalFormEval:
    def test_tester_guarded(self):
        atom = PathTesterAtom(0, Path((Step("S", 0),)), "Z")
        # S.0(Z) is undefined: guarded false
        assert not atom.eval((nat(0),), NATS)
        assert atom.eval((nat(1),), NATS)
        assert not atom.eval((nat(2),), NATS)

    def test_path_eq(self):
        atom = PathEqAtom(0, Path((Step("S", 0),)), 1, EMPTY_PATH)
        assert atom.eval((nat(3), nat(2)), NATS)  # pred(3) = 2
        assert not atom.eval((nat(3), nat(3)), NATS)
        assert not atom.eval((nat(0), nat(0)), NATS)  # undefined

    def test_ground_eq(self):
        atom = GroundEqAtom(0, EMPTY_PATH, nat(2))
        assert atom.eval((nat(2),), NATS)
        assert not atom.eval((nat(1),), NATS)

    def test_literal_negation(self):
        atom = GroundEqAtom(0, EMPTY_PATH, nat(0))
        assert Literal(atom, False).eval((nat(1),), NATS)
        assert not Literal(atom, False).eval((nat(0),), NATS)

    def test_formula_dnf_semantics(self):
        a = Literal(GroundEqAtom(0, EMPTY_PATH, nat(0)), True)
        b = Literal(GroundEqAtom(0, EMPTY_PATH, nat(1)), True)
        either = ElemFormula(((a,), (b,)))
        assert either.eval((nat(0),), NATS)
        assert either.eval((nat(1),), NATS)
        assert not either.eval((nat(2),), NATS)

    def test_true_and_false(self):
        assert ELEM_TRUE.eval((nat(5),), NATS)
        assert not ELEM_FALSE.eval((nat(5),), NATS)
        assert str(ELEM_FALSE) == "false"


class TestElemSolver:
    def test_incdec_sat_with_offset_invariant(self):
        result = solve_elem(incdec_system(), timeout=20)
        assert result.is_sat
        text = result.invariant.describe()
        assert "inc" in text and "dec" in text
        # the inc invariant must hold exactly on the +1 pairs near zero
        inc = [p for p in result.invariant.formulas if p.name == "inc"][0]
        assert result.invariant.member(inc, (nat(2), nat(3)))
        assert not result.invariant.member(inc, (nat(2), nat(2)))

    def test_diag_sat_with_equality_invariant(self):
        result = solve_elem(diag_system(), timeout=20)
        assert result.is_sat
        eqp = [p for p in result.invariant.formulas if p.name == "eqp"][0]
        assert result.invariant.member(eqp, (nat(4), nat(4)))
        assert not result.invariant.member(eqp, (nat(4), nat(5)))

    def test_even_diverges(self):
        # Prop. 1: no elementary invariant exists
        result = solve_elem(even_system(), timeout=10)
        assert result.is_unknown

    def test_evenleft_diverges(self):
        result = solve_elem(evenleft_system(), timeout=8)
        assert result.is_unknown

    def test_ltgt_diverges(self):
        result = solve_elem(ltgt_system(), timeout=8)
        assert result.is_unknown

    def test_unsat_found(self):
        result = solve_elem(odd_unsat_system(), timeout=10)
        assert result.is_unsat

    def test_terms_capped_reaches_deep(self):
        terms = terms_capped(NATS, NAT, 8)
        assert len(terms) == 8
        assert nat_value(terms[-1]) == 7

    def test_implied_negatives_for_even(self):
        from repro.chc.semantics import bounded_least_fixpoint

        system = even_system()
        fixpoint = bounded_least_fixpoint(
            system, max_height=4, check_queries=False
        )
        positives = {
            p: set(fixpoint.facts.get(p, set()))
            for p in system.predicates.values()
        }
        instances = ground_instances(system, terms_per_sort=8)
        negatives = implied_negatives(instances, positives)
        even = system.predicates["even"]
        neg_values = {nat_value(args[0]) for args in negatives[even]}
        # successors of known evens can never be in a safe invariant
        assert 1 in neg_values
        assert 3 in neg_values


class TestSizeExpr:
    def test_ground_term_size(self):
        e = size_expr(nat(3))
        assert e.const == 4 and not e.coeffs

    def test_variable_coefficient(self):
        from repro.logic.terms import Var
        from repro.problems import s

        x = Var("x", NAT)
        e = size_expr(s(s(x)))
        assert e.const == 2
        assert dict(e.coeffs) == {x: 1}
        assert e.eval({x: 5}) == 7

    def test_abstract_system_shape(self):
        clauses = abstract_system(even_system())
        assert clauses is not None
        assert len(clauses) == 3


class TestSizeTemplates:
    def test_mod_template(self):
        t = SizeTemplate((SizeAtom("mod", 0, m=2, r=1),))
        assert t.eval([3])
        assert not t.eval([4])

    def test_cmp_template(self):
        t = SizeTemplate((SizeAtom("cmp", 0, 1, op="<"),))
        assert t.eval([2, 5])
        assert not t.eval([5, 2])

    def test_offset_template(self):
        t = SizeTemplate((SizeAtom("offset", 1, 0, c=1),))
        assert t.eval([2, 3])
        assert not t.eval([2, 4])

    def test_modsum_template(self):
        t = SizeTemplate((SizeAtom("modsum", 0, 1, m=2, r=0),))
        assert t.eval([1, 3])
        assert not t.eval([1, 2])

    def test_conjunction(self):
        t = SizeTemplate(
            (SizeAtom("mod", 0, m=2, r=1), SizeAtom("const", 0, op=">=", c=3))
        )
        assert t.eval([5])
        assert not t.eval([1])
        assert not t.eval([4])

    def test_describe(self):
        t = SizeTemplate((SizeAtom("mod", 0, m=2, r=1),))
        assert "mod" in str(t)


class TestSizeElemSolver:
    def test_even_sat_via_parity(self):
        # Prop. 8: size(x) = 1 + 2n, i.e. size ≡ 1 (mod 2)
        result = solve_sizeelem(even_system(), timeout=20)
        assert result.is_sat
        assert result.details.get("phase") == "size"
        even = [p for p in result.invariant.templates if p.name == "even"][0]
        for n in range(8):
            assert result.invariant.member(even, (nat(n),)) == (n % 2 == 0)

    def test_ltgt_sat_via_orderings(self):
        # Prop. 12
        result = solve_sizeelem(ltgt_system(), timeout=30)
        assert result.is_sat
        lt = [p for p in result.invariant.templates if p.name == "lt"][0]
        assert result.invariant.member(lt, (nat(1), nat(4)))
        assert not result.invariant.member(lt, (nat(4), nat(1)))

    def test_incdec_sat(self):
        result = solve_sizeelem(incdec_system(), timeout=30)
        assert result.is_sat

    def test_diag_sat_through_elem_phase(self):
        result = solve_sizeelem(diag_system(), timeout=30)
        assert result.is_sat
        assert result.details.get("phase") == "elem"

    def test_evenleft_diverges(self):
        # Prop. 2: EvenLeft has no SizeElem invariant
        result = solve_sizeelem(evenleft_system(), timeout=12)
        assert result.is_unknown

    def test_unsat_found(self):
        result = solve_sizeelem(odd_unsat_system(), timeout=10)
        assert result.is_unsat


class TestInductAndVerimap:
    def test_induct_never_sat(self):
        for factory in (even_system, incdec_system):
            result = solve_induct(factory(), timeout=3)
            assert result.is_unknown

    def test_induct_finds_unsat(self):
        result = solve_induct(odd_unsat_system(), timeout=10)
        assert result.is_unsat

    def test_verimap_solves_size_abstractable(self):
        result = solve_verimap(even_system(), timeout=15)
        assert result.is_sat
        # no ADT-level invariant is produced (transformational tool)
        assert result.invariant is None
        assert "transformed_certificate" in result.details

    def test_verimap_finds_unsat(self):
        result = solve_verimap(odd_unsat_system(), timeout=10)
        assert result.is_unsat

    def test_verimap_diverges_on_evenleft(self):
        result = solve_verimap(evenleft_system(), timeout=8)
        assert result.is_unknown


class TestSolverRegistry:
    def test_registry_contents(self):
        from repro.solvers import REPRESENTATION, SOLVER_CLASSES

        assert set(SOLVER_CLASSES) == {
            "ringen", "elem", "sizeelem", "cvc4-ind", "verimap-iddt",
        }
        assert REPRESENTATION["ringen"] == "Reg"
        assert REPRESENTATION["sizeelem"] == "SizeElem"
        assert REPRESENTATION["elem"] == "Elem"

    def test_unknown_options_rejected(self):
        with pytest.raises(TypeError):
            solve_elem(even_system(), bogus=1)
        with pytest.raises(TypeError):
            solve_sizeelem(even_system(), bogus=1)
        with pytest.raises(TypeError):
            solve_induct(even_system(), bogus=1)
        with pytest.raises(TypeError):
            solve_verimap(even_system(), bogus=1)
