"""Tests for the CDCL SAT solver, cross-checked against brute force."""

import itertools
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat.cnf import (
    SelectorPool,
    at_most_one,
    exactly_one,
    from_dimacs,
    implies,
    to_dimacs,
)
from repro.sat.solver import (
    SNAPSHOT_VERSION,
    CDCLSolver,
    SatError,
    brute_force_sat,
    solve_cnf,
    _luby,
)


def check_model(clauses, model):
    return all(any(model[abs(l)] == (l > 0) for l in c) for c in clauses)


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert solve_cnf([], 3) is not None

    def test_unit_clause(self):
        model = solve_cnf([[1]], 1)
        assert model == {1: True}

    def test_contradiction(self):
        assert solve_cnf([[1], [-1]], 1) is None

    def test_simple_implication_chain(self):
        clauses = [[1], implies([1], 2), implies([2], 3)]
        model = solve_cnf(clauses, 3)
        assert model == {1: True, 2: True, 3: True}

    def test_requires_backtracking(self):
        # (x1 | x2) & (~x1 | x3) & (~x2 | ~x3) & (~x1 | ~x2)
        clauses = [[1, 2], [-1, 3], [-2, -3], [-1, -2]]
        model = solve_cnf(clauses, 3)
        assert model is not None
        assert check_model(clauses, model)

    def test_pigeonhole_3_into_2_unsat(self):
        # var p_{i,j}: pigeon i in hole j; 3 pigeons, 2 holes
        def v(i, j):
            return i * 2 + j + 1

        clauses = []
        for i in range(3):
            clauses.append([v(i, 0), v(i, 1)])
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-v(i1, j), -v(i2, j)])
        assert solve_cnf(clauses, 6) is None

    def test_zero_literal_rejected(self):
        solver = CDCLSolver(1)
        with pytest.raises(SatError):
            solver.add_clause([0])

    def test_unknown_variable_rejected(self):
        solver = CDCLSolver(1)
        with pytest.raises(SatError):
            solver.add_clause([5])

    def test_tautological_clause_ignored(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, -1])
        assert solver.solve() is True

    def test_duplicate_literals_collapsed(self):
        solver = CDCLSolver(1)
        solver.add_clause([1, 1, 1])
        assert solver.solve() is True
        assert solver.model()[1] is True

    def test_assumptions(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]) is True
        assert solver.model()[2] is True
        solver2 = CDCLSolver(2)
        solver2.add_clause([1])
        assert solver2.solve(assumptions=[-1]) is False

    def test_conflict_budget_returns_none(self):
        # a hard unsat instance with tiny budget: None (gave up)
        def v(i, j):
            return i * 4 + j + 1

        clauses = []
        for i in range(5):
            clauses.append([v(i, j) for j in range(4)])
        for j in range(4):
            for i1 in range(5):
                for i2 in range(i1 + 1, 5):
                    clauses.append([-v(i1, j), -v(i2, j)])
        solver = CDCLSolver(20)
        for c in clauses:
            solver.add_clause(c)
        assert solver.solve(max_conflicts=1) is None

    def test_luby_sequence(self):
        assert [_luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_stats_populated(self):
        solver = CDCLSolver(3)
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        solver.solve()
        assert solver.stats.decisions >= 1
        assert solver.stats.clauses_added == 2
        assert solver.stats.solve_calls == 1


def pigeonhole_clauses(holes: int):
    """PHP(holes+1, holes): unsat, generates plenty of conflicts."""
    pigeons = holes + 1

    def v(i, j):
        return i * holes + j + 1

    clauses = [[v(i, j) for j in range(holes)] for i in range(pigeons)]
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                clauses.append([-v(i1, j), -v(i2, j)])
    return clauses, pigeons * holes


class TestIncrementalUse:
    """One solver, many solve() calls: the model finder's usage pattern."""

    def test_add_clause_between_solves(self):
        solver = CDCLSolver(3)
        solver.add_clause([1, 2])
        assert solver.solve() is True
        # the trail still holds the answer; adding a unit clause must
        # backtrack first instead of mis-simplifying against it
        solver.add_clause([-1])
        solver.add_clause([-2, 3])
        assert solver.solve() is True
        model = solver.model()
        assert model[1] is False and model[2] is True and model[3] is True

    def test_unit_against_stale_assignment(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve() is True
        forced = 1 if solver.model()[1] else 2
        # force the opposite of what the previous answer chose
        assert solver.add_clause([-forced]) is True
        assert solver.solve() is True
        assert solver.model()[forced] is False

    def test_learned_clauses_persist_across_assumption_calls(self):
        clauses, num_vars = pigeonhole_clauses(4)
        solver = CDCLSolver(num_vars + 1)
        sel = num_vars + 1
        for clause in clauses:
            solver.add_clause([-sel] + clause)  # guarded group
        assert solver.solve(assumptions=[sel]) is False
        learned_after_first = len(solver.learned_clauses)
        assert solver.solve(assumptions=[sel]) is False
        assert len(solver.learned_clauses) >= learned_after_first
        # deactivated group: trivially satisfiable
        assert solver.solve(assumptions=[-sel]) is True
        assert solver.stats.solve_calls == 3

    def test_max_conflicts_is_per_call(self):
        clauses, num_vars = pigeonhole_clauses(5)
        solver = CDCLSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve(max_conflicts=1) is None
        # cumulative accounting would make every later call give up
        # immediately; per-call budgets let a bigger one finish
        assert solver.solve(max_conflicts=200_000) is False

    def test_reduce_learned_keeps_solver_correct(self):
        clauses, num_vars = pigeonhole_clauses(4)
        solver = CDCLSolver(num_vars + 1)
        sel = num_vars + 1
        for clause in clauses:
            solver.add_clause([-sel] + clause)
        assert solver.solve(assumptions=[sel]) is False
        assert len(solver.learned_clauses) > 4
        dropped = solver.reduce_learned(4)
        assert dropped > 0
        # glue clauses (dynamic LBD <= GLUE_LBD) survive the cap
        # unconditionally; everything else must fit inside it
        non_glue = [
            c for c in solver.learned_clauses
            if solver._lbd.get(id(c), 1 << 30) > CDCLSolver.GLUE_LBD
        ]
        assert len(non_glue) <= 4
        assert solver.solve(assumptions=[sel]) is False
        assert solver.solve(assumptions=[-sel]) is True


class TestModelStatus:
    """model() must never hand back a stale or partial assignment."""

    def test_model_before_any_solve_raises(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, 2])
        with pytest.raises(SatError):
            solver.model()

    def test_model_after_unsat_raises(self):
        solver = CDCLSolver(1)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve() is False
        with pytest.raises(SatError):
            solver.model()

    def test_model_after_budget_exhausted_raises(self):
        clauses, num_vars = pigeonhole_clauses(5)
        solver = CDCLSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve(max_conflicts=1) is None
        # the trail holds a partial assignment from the aborted call;
        # handing it out as a model would silently mis-decode
        with pytest.raises(SatError):
            solver.model()
        # a later successful call makes the model available again
        solver2 = CDCLSolver(2)
        solver2.add_clause([1, 2])
        assert solver2.solve() is True
        assert solver2.model()

    def test_model_after_deadline_exhausted_raises(self):
        clauses, num_vars = pigeonhole_clauses(6)
        solver = CDCLSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve(deadline=time.monotonic() - 1.0) is None
        with pytest.raises(SatError):
            solver.model()

    def test_add_clause_invalidates_model(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve() is True
        assert solver.model()
        solver.add_clause([-1, -2])
        with pytest.raises(SatError):
            solver.model()
        assert solver.solve() is True
        assert solver.model()

    def test_fixed_reads_level0_only(self):
        solver = CDCLSolver(3)
        solver.add_clause([1])
        solver.add_clause([2, 3])
        assert solver.solve() is True
        assert solver.fixed(1) is True
        assert solver.fixed(-1) is False
        # 2/3 were decided, not implied at level 0
        assert solver.fixed(2) is None or solver.fixed(3) is None
        with pytest.raises(SatError):
            solver.fixed(99)


class TestClausesAddedAccounting:
    """clauses_added bumps exactly once per accepted add_clause call,
    whatever simplification path the clause takes."""

    def test_tautology_and_satisfied_count_uniformly(self):
        solver = CDCLSolver(3)
        assert solver.stats.clauses_added == 0
        solver.add_clause([1])  # unit, immediately propagated
        assert solver.stats.clauses_added == 1
        solver.add_clause([2, -2])  # tautology
        assert solver.stats.clauses_added == 2
        solver.add_clause([1, 2])  # satisfied at level 0
        assert solver.stats.clauses_added == 3
        solver.add_clause([-1, 3])  # shortened at level 0
        assert solver.stats.clauses_added == 4
        solver.add_clause([2, 3])  # stored as-is
        assert solver.stats.clauses_added == 5

    def test_rejected_clauses_do_not_count(self):
        solver = CDCLSolver(2)
        with pytest.raises(SatError):
            solver.add_clause([0])
        with pytest.raises(SatError):
            solver.add_clause([9])
        assert solver.stats.clauses_added == 0
        solver.add_clause([1])
        solver.add_clause([-1])  # contradiction: accepted, solver now unsat
        assert solver.stats.clauses_added == 2
        # once inconsistent, nothing counts (add_clause returns False)
        assert solver.add_clause([2]) is False
        assert solver.add_clause([2, -2]) is False
        assert solver.stats.clauses_added == 2


class TestDeadlinePrecision:
    def test_solve_deadline_overshoot_is_bounded(self):
        # a large, conflict-heavy instance with a tiny budget: the old
        # every-512-outer-iterations poll could overshoot by the length
        # of whatever propagation run straddled the deadline
        clauses, num_vars = pigeonhole_clauses(8)
        solver = CDCLSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        budget = 0.05
        start = time.monotonic()
        outcome = solver.solve(deadline=start + budget)
        elapsed = time.monotonic() - start
        assert outcome is None
        assert elapsed < budget + 0.25, elapsed

    def test_aborted_propagation_resumes_without_skipping(self):
        # regression: the in-propagation deadline poll must leave
        # _queue_head ON the unprocessed literal — level-0 trail
        # entries survive the backtrack, so skipping one would leave
        # its watch lists unprocessed forever in an incremental solver
        n = 3000  # long enough that the poll fires mid-cascade
        solver = CDCLSolver(n)
        clauses = []
        for v in range(1, n):
            solver.add_clause([-v, v + 1])
            clauses.append([-v, v + 1])
        # a pending unit (the path learned units take between calls)
        # makes the whole cascade run at level 0 *inside* solve, where
        # the deadline is armed and the poll aborts it partway
        solver._pending_units.append(1)
        clauses.append([1])
        assert solver.solve(deadline=time.monotonic() - 1.0) is None
        # the same solver must finish correctly on the next call
        assert solver.solve() is True
        model = solver.model()
        assert check_model(clauses, model)
        assert all(model[v] for v in range(1, n + 1))

    def test_expired_deadline_returns_immediately(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, 2])
        start = time.monotonic()
        # already-expired deadline: either instant None or instant True
        # (the formula is trivial); must not hang
        solver.solve(deadline=start - 1.0)
        assert time.monotonic() - start < 0.5


class TestUnsatCore:
    """solve(assumptions) is False must expose a usable core()."""

    def test_core_unavailable_after_sat(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve() is True
        with pytest.raises(SatError):
            solver.core()

    def test_core_unavailable_after_budget_exhaustion(self):
        clauses, num_vars = pigeonhole_clauses(5)
        solver = CDCLSolver(num_vars)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve(max_conflicts=1) is None
        with pytest.raises(SatError):
            solver.core()

    def test_empty_core_when_database_alone_unsat(self):
        solver = CDCLSolver(2)
        solver.add_clause([1])
        solver.add_clause([-1])
        assert solver.solve(assumptions=[2]) is False
        assert solver.core() == []

    def test_failed_assumption_at_enqueue(self):
        # -1 is refuted by the level-0 database before any propagation
        solver = CDCLSolver(1)
        solver.add_clause([1])
        assert solver.solve(assumptions=[-1]) is False
        assert solver.core() == [-1]

    def test_contradictory_assumption_pair(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[1, -1]) is False
        assert sorted(solver.core()) == [-1, 1]

    def test_assumption_propagation_conflict(self):
        # the early conflict path: 1 and 3 clash through two binary
        # clauses while the assumptions are still being enqueued;
        # the irrelevant assumption 4 must stay out of the core
        solver = CDCLSolver(4)
        solver.add_clause([-1, 2])
        solver.add_clause([-3, -2])
        assert solver.solve(assumptions=[1, 3, 4]) is False
        assert set(solver.core()) == {1, 3}

    def test_deep_conflict_core_isolates_selector(self):
        # pigeonhole clauses guarded by one selector, plus an unused
        # selector: the refutation needs real search, and the final
        # conflict analysis must blame exactly the guarding selector
        clauses, num_vars = pigeonhole_clauses(4)
        solver = CDCLSolver(num_vars + 2)
        sel, unused = num_vars + 1, num_vars + 2
        for clause in clauses:
            solver.add_clause([-sel] + clause)
        assert solver.solve(assumptions=[sel, unused]) is False
        assert solver.core() == [sel]
        # re-assuming exactly the core is still unsat
        assert solver.solve(assumptions=solver.core()) is False

    def test_core_invalidated_by_next_solve(self):
        solver = CDCLSolver(1)
        solver.add_clause([1])
        assert solver.solve(assumptions=[-1]) is False
        assert solver.core() == [-1]
        assert solver.solve() is True
        with pytest.raises(SatError):
            solver.core()


@st.composite
def random_cnf_with_assumptions(draw):
    clauses, num_vars = draw(random_cnf())
    count = draw(st.integers(min_value=0, max_value=num_vars))
    signs = [draw(st.sampled_from([1, -1])) for _ in range(count)]
    assumptions = [v * s for v, s in zip(range(1, count + 1), signs)]
    return clauses, num_vars, assumptions


@given(random_cnf_with_assumptions())
@settings(max_examples=200, deadline=None)
def test_core_is_subset_and_unsat(case):
    """Core ⊆ assumptions, and re-assuming only the core stays unsat."""
    clauses, num_vars, assumptions = case
    solver = CDCLSolver(num_vars)
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    outcome = solver.solve(assumptions=assumptions)
    reference = brute_force_sat(
        clauses + [[a] for a in assumptions], num_vars
    )
    if ok:
        assert (outcome is True) == (reference is not None)
    if outcome is not False:
        return
    core = solver.core()
    assert set(core) <= set(assumptions)
    # the core alone refutes: both by brute force and by a fresh solver
    assert brute_force_sat(clauses + [[c] for c in core], num_vars) is None
    resolver = CDCLSolver(num_vars)
    ok2 = True
    for clause in clauses:
        ok2 = resolver.add_clause(clause) and ok2
    if ok2:
        assert resolver.solve(assumptions=core) is False


class TestLbdRetention:
    """reduce_learned keeps glue (LBD <= 2) clauses unconditionally."""

    def _learned_solver(self):
        clauses, num_vars = pigeonhole_clauses(5)
        solver = CDCLSolver(num_vars + 1)
        sel = num_vars + 1
        for clause in clauses:
            solver.add_clause([-sel] + clause)
        assert solver.solve(assumptions=[sel]) is False
        return solver, sel

    def test_learned_clauses_carry_lbd_and_activity(self):
        solver, _ = self._learned_solver()
        assert solver.learned_clauses
        for clause in solver.learned_clauses:
            assert id(clause) in solver._lbd
            assert solver._lbd[id(clause)] >= 1
            assert id(clause) in solver._cla_act
        assert solver.stats.glue_learned >= 0

    def test_glue_survives_aggressive_reduction(self):
        solver, sel = self._learned_solver()
        glue_before = {
            id(c)
            for c in solver.learned_clauses
            if solver._lbd[id(c)] <= CDCLSolver.GLUE_LBD
        }
        solver.reduce_learned(1)
        alive = {id(c) for c in solver.learned_clauses}
        assert glue_before <= alive, "a glue clause was dropped"
        # metadata of dropped clauses is forgotten, survivors keep theirs
        assert set(solver._lbd) == alive
        assert set(solver._cla_act) == alive
        # the solver still answers correctly afterwards
        assert solver.solve(assumptions=[sel]) is False
        assert solver.solve(assumptions=[-sel]) is True

    def test_reduction_ranks_by_lbd_tier(self):
        solver, _ = self._learned_solver()
        keep = max(len(solver.learned_clauses) // 2, 1)
        lbd = dict(solver._lbd)
        glue_count = sum(
            1 for v in lbd.values() if v <= CDCLSolver.GLUE_LBD
        )
        total = len(solver.learned_clauses)
        dropped = solver.reduce_learned(keep)
        # exactly the non-glue overflow is dropped
        assert dropped == total - max(keep, glue_count)
        assert len(solver.learned_clauses) == max(keep, glue_count)
        kept_ids = {id(c) for c in solver.learned_clauses}
        dropped_lbds = [
            v for cid, v in lbd.items() if cid not in kept_ids
        ]
        # nothing dropped is glue, and no dropped clause sits in a
        # strictly better LBD tier than the worst non-glue survivor
        assert all(v > CDCLSolver.GLUE_LBD for v in dropped_lbds)
        non_glue_kept = [
            lbd[id(c)]
            for c in solver.learned_clauses
            if lbd[id(c)] > CDCLSolver.GLUE_LBD
        ]
        if dropped_lbds and non_glue_kept:
            assert min(dropped_lbds) >= max(non_glue_kept)

    def test_legacy_length_policy_still_available(self):
        clauses, num_vars = pigeonhole_clauses(4)
        solver = CDCLSolver(num_vars, lbd_retention=False)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve() is False


class TestSolveCnfIndeterminate:
    """solve_cnf must never collapse a timeout into 'unsat'."""

    def test_budget_exhaustion_raises(self):
        clauses, num_vars = pigeonhole_clauses(5)
        with pytest.raises(SatError):
            solve_cnf(clauses, num_vars, max_conflicts=1)

    def test_expired_deadline_raises_or_answers(self):
        clauses, num_vars = pigeonhole_clauses(6)
        with pytest.raises(SatError):
            solve_cnf(
                clauses, num_vars, deadline=time.monotonic() - 1.0
            )

    def test_unsat_still_returns_none(self):
        assert solve_cnf([[1], [-1]], 1) is None
        assert solve_cnf([[1], [-1]], 1, max_conflicts=10_000) is None


class TestSelectorPool:
    def test_selectors_are_stable_per_key(self):
        solver = CDCLSolver()
        pool = SelectorPool(solver)
        s1 = pool.selector(("group", 1))
        assert pool.selector(("group", 1)) == s1
        assert pool.selector(("group", 2)) != s1
        assert ("group", 1) in pool and len(pool) == 2
        assert pool.peek(("group", 3)) is None

    def test_guarded_group_activation(self):
        solver = CDCLSolver(2)
        pool = SelectorPool(solver)
        solver.add_clause(pool.guard([1], "g1"))
        solver.add_clause(pool.guard([-1], "g2"))
        on_g1 = pool.assumptions(on=["g1"], off=["g2"])
        assert solver.solve(on_g1) is True and solver.model()[1] is True
        on_g2 = pool.assumptions(on=["g2"], off=["g1"])
        assert solver.solve(on_g2) is True and solver.model()[1] is False
        both = pool.assumptions(on=["g1", "g2"])
        assert solver.solve(both) is False

    def test_retire_permanently_deactivates_group(self):
        solver = CDCLSolver(1)
        pool = SelectorPool(solver)
        solver.add_clause(pool.guard([1], "a"))
        solver.add_clause(pool.guard([-1], "b"))
        assert solver.solve(pool.assumptions(on=["a", "b"])) is False
        old = pool.selector("a")
        assert pool.retire("a") is True
        assert pool.retire("a") is False  # already gone
        # the retired selector is pinned false: its group can never
        # constrain again, even if something still assumes it
        assert solver.fixed(old) is False
        assert solver.solve(pool.assumptions(on=["b"])) is True
        assert solver.model()[1] is False
        # the key recycles to a fresh literal with a fresh group
        assert pool.selector("a") != old
        solver.add_clause(pool.guard([1], "a"))
        assert solver.solve(pool.assumptions(on=["a", "b"])) is False


class TestEncodings:
    def test_at_most_one_semantics(self):
        clauses = list(at_most_one([1, 2, 3]))
        for bits in itertools.product([False, True], repeat=3):
            model = {i + 1: bits[i] for i in range(3)}
            expected = sum(bits) <= 1
            assert check_model(clauses, model) == expected

    def test_exactly_one_semantics(self):
        clauses = list(exactly_one([1, 2, 3]))
        for bits in itertools.product([False, True], repeat=3):
            model = {i + 1: bits[i] for i in range(3)}
            expected = sum(bits) == 1
            assert check_model(clauses, model) == expected

    def test_exactly_one_empty_rejected(self):
        with pytest.raises(SatError):
            list(exactly_one([]))

    def test_dimacs_roundtrip(self):
        clauses = [[1, -2], [2, 3], [-1]]
        text = to_dimacs(clauses, 3)
        parsed, nvars = from_dimacs(text)
        assert parsed == clauses
        assert nvars == 3

    def test_dimacs_malformed_problem_line(self):
        with pytest.raises(SatError):
            from_dimacs("p wrong 1 2")


# ----------------------------------------------------------------------
# equivalence with brute force on random small CNFs
# ----------------------------------------------------------------------
@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    num_clauses = draw(st.integers(min_value=1, max_value=14))
    clauses = []
    for _ in range(num_clauses):
        width = draw(st.integers(min_value=1, max_value=3))
        clause = [
            draw(st.integers(min_value=1, max_value=num_vars))
            * draw(st.sampled_from([1, -1]))
            for _ in range(width)
        ]
        clauses.append(clause)
    return clauses, num_vars


@given(random_cnf())
@settings(max_examples=300, deadline=None)
def test_cdcl_agrees_with_brute_force(case):
    clauses, num_vars = case
    reference = brute_force_sat(clauses, num_vars)
    model = solve_cnf(clauses, num_vars)
    if reference is None:
        assert model is None
    else:
        assert model is not None
        assert check_model(clauses, model)


@given(random_cnf())
@settings(max_examples=100, deadline=None)
def test_incremental_addition_matches_batch(case):
    clauses, num_vars = case
    solver = CDCLSolver(num_vars)
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    outcome = solver.solve() if ok else False
    assert outcome == (brute_force_sat(clauses, num_vars) is not None)


# ----------------------------------------------------------------------
# the unsat-core-guided sweep end to end: verdicts must be identical
# with the guidance on and off across the example suite
# ----------------------------------------------------------------------
def test_core_guided_sweep_matches_unguided_on_examples():
    from repro.chc.transform import preprocess
    from repro.mace.finder import find_model
    from repro.problems import ALL_PAPER_SYSTEMS, odd_unsat_system

    cases = [(name, factory, {"max_total_size": 5})
             for name, factory in ALL_PAPER_SYSTEMS.items()]
    cases.append(("odd_unsat", odd_unsat_system, {"max_total_size": 5}))
    for name, factory, kwargs in cases:
        prepared = preprocess(factory())
        guided = find_model(prepared, core_guided_sweep=True, **kwargs)
        unguided = find_model(
            prepared, core_guided_sweep=False, **kwargs
        )
        assert guided.found == unguided.found, name
        assert guided.stats.model_size == unguided.stats.model_size, name
        assert guided.complete == unguided.complete, name
        # the guidance only ever *prunes* proven-unsat vectors
        assert guided.stats.attempts <= unguided.stats.attempts, name
        assert unguided.stats.vectors_skipped == 0, name


def test_core_guided_sweep_skips_on_multi_sort_problems():
    from repro.chc.transform import preprocess
    from repro.mace.finder import find_model
    from repro.stlc import stlc_problems

    problem = next(
        p for p in stlc_problems() if p.category == "non-tautology"
    )
    prepared = preprocess(problem.system())
    guided = find_model(
        prepared, core_guided_sweep=True, max_total_size=7
    )
    unguided = find_model(
        prepared, core_guided_sweep=False, max_total_size=7
    )
    assert guided.found == unguided.found
    assert guided.stats.model_size == unguided.stats.model_size
    assert guided.stats.vectors_skipped > 0
    assert guided.stats.cores_extracted > 0
    assert (
        guided.stats.attempts + guided.stats.vectors_skipped
        == unguided.stats.attempts
    )


# ----------------------------------------------------------------------
# snapshot / restore: a restored solver must be semantically
# indistinguishable from the original on any continuation
# ----------------------------------------------------------------------
@st.composite
def random_incremental_history(draw):
    """A CNF split into a prefix (solved before the snapshot) and a
    suffix (added after), plus assumptions to probe both solvers with."""
    clauses, num_vars = draw(random_cnf())
    split = draw(st.integers(min_value=0, max_value=len(clauses)))
    assumptions = draw(
        st.lists(
            st.integers(min_value=1, max_value=num_vars).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            max_size=3,
            unique_by=abs,
        )
    )
    return clauses, num_vars, split, assumptions


class TestSnapshotRestore:
    @given(random_incremental_history())
    @settings(max_examples=150, deadline=None)
    def test_round_trip_preserves_semantics(self, case):
        clauses, num_vars, split, assumptions = case
        original = CDCLSolver(num_vars)
        ok = True
        for clause in clauses[:split]:
            ok = original.add_clause(clause) and ok
        if ok:
            original.solve()  # accumulate learned clauses / phases
        restored = CDCLSolver.restore(original.snapshot())

        # identical continuations must produce identical verdicts
        for solver in (original, restored):
            solver_ok = solver._ok
            for clause in clauses[split:]:
                solver_ok = solver.add_clause(clause) and solver_ok
        verdict_a = original.solve(assumptions) if original._ok else False
        verdict_b = restored.solve(assumptions) if restored._ok else False
        assert verdict_a == verdict_b
        assert verdict_b == (
            brute_force_sat(
                clauses + [[l] for l in assumptions], num_vars
            )
            is not None
        )
        # level-0 facts agree in both directions (meaningless once the
        # clause database is contradictory, so only compared while ok)
        if original._ok and restored._ok:
            for var in range(1, num_vars + 1):
                assert original.fixed(var) == restored.fixed(var)

    @given(random_cnf())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_accounting(self, case):
        clauses, num_vars = case
        original = CDCLSolver(num_vars)
        ok = True
        for clause in clauses:
            ok = original.add_clause(clause) and ok
        if ok:
            original.solve()
        restored = CDCLSolver.restore(original.snapshot())
        assert restored.num_vars == original.num_vars
        assert restored.stats.clauses_added == original.stats.clauses_added
        assert restored.learned_count() == original.learned_count()
        assert restored.clauses == original.clauses
        assert restored.learned_clauses == original.learned_clauses

    def test_wrong_version_rejected(self):
        solver = CDCLSolver(2)
        solver.add_clause([1, 2])
        snap = solver.snapshot()
        snap["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(SatError, match="version"):
            CDCLSolver.restore(snap)

    def test_wrong_schema_rejected(self):
        with pytest.raises(SatError):
            CDCLSolver.restore({"schema": "engine", "version": 1})

    def test_restored_solver_remains_incremental(self):
        solver = CDCLSolver(3)
        solver.add_clause([1, 2])
        solver.add_clause([-1, 3])
        assert solver.solve()
        restored = CDCLSolver.restore(solver.snapshot())
        assert restored.solve([-2])  # forces 1, then 3
        assert restored.add_clause([-3])
        assert not restored.solve([-2])
        assert restored.solve()

    @given(random_cnf_with_assumptions())
    @settings(max_examples=60, deadline=None)
    def test_restored_solver_cores_remain_usable(self, case):
        clauses, num_vars, assumptions = case
        original = CDCLSolver(num_vars)
        ok = True
        for clause in clauses:
            ok = original.add_clause(clause) and ok
        if not ok:
            return  # nothing to snapshot meaningfully
        original.solve()
        if not original._ok:
            return
        restored = CDCLSolver.restore(original.snapshot())
        if restored.solve(assumptions) is not False:
            return
        core = restored.core()
        # a core is a subset of the assumptions that is still unsat
        assert set(core) <= set(assumptions)
        assert restored.solve(core) is False
