"""Tests for the expressiveness atlas: Figure 3 with verified witnesses."""

import pytest

from repro.automata.from_model import automata_to_model
from repro.automata.ops import complete, intersection, union
from repro.chc.transform import preprocess
from repro.logic.adt import nat, nat_system, tree_system
from repro.problems import (
    DEC,
    EVEN,
    EVENLEFT,
    INC,
    even_system,
    evenleft_system,
    incdec_system,
)
from repro.theory.atlas import (
    ATLAS,
    dec_member,
    diseq_member,
    eq_member,
    even_automaton,
    even_member,
    evenleft_automaton,
    evenleft_member,
    figure3_rows,
    format_figure3,
    gt_member,
    inc_member,
    incdec_automata,
    leftmost_length,
    lt_member,
)
from repro.problems import leaf, node


class TestGroundTruth:
    def test_even_member(self):
        assert even_member(nat(0)) and even_member(nat(4))
        assert not even_member(nat(3))

    def test_inc_dec_members(self):
        assert inc_member(nat(2), nat(3))
        assert not inc_member(nat(3), nat(2))
        assert dec_member(nat(3), nat(2))

    def test_leftmost_length(self):
        assert leftmost_length(leaf()) == 0
        assert leftmost_length(node(node(leaf(), leaf()), leaf())) == 2

    def test_orderings(self):
        assert lt_member(nat(1), nat(3))
        assert gt_member(nat(3), nat(1))
        assert not lt_member(nat(3), nat(3))

    def test_eq_diseq(self):
        assert eq_member(nat(2), nat(2))
        assert diseq_member(nat(2), nat(3))


class TestPaperAutomataAreInductive:
    """Each positive Reg witness, converted to a finite model via the
    Theorem 1 isomorphism, must satisfy the preprocessed system exactly."""

    def test_even_automaton_is_inductive(self):
        adts = nat_system()
        auto = complete(even_automaton(adts))
        model = automata_to_model(adts, {EVEN: auto})
        prepared = preprocess(even_system())
        for pred in prepared.predicates.values():
            model.predicates.setdefault(pred, set())
        assert model.satisfies(prepared, herbrand=True)

    def test_evenleft_automaton_is_inductive(self):
        adts = tree_system()
        auto = complete(evenleft_automaton(adts))
        model = automata_to_model(adts, {EVENLEFT: auto})
        prepared = preprocess(evenleft_system())
        for pred in prepared.predicates.values():
            model.predicates.setdefault(pred, set())
        assert model.satisfies(prepared, herbrand=True)

    def test_incdec_automata_are_inductive(self):
        adts = nat_system()
        autos = {
            p: complete(a) for p, a in incdec_automata(adts).items()
        }
        model = automata_to_model(adts, autos)
        prepared = preprocess(incdec_system())
        for pred in prepared.predicates.values():
            model.predicates.setdefault(pred, set())
        assert model.satisfies(prepared, herbrand=True)

    def test_incdec_automata_overapproximate_least_model(self):
        autos = incdec_automata()
        inc = next(a for p, a in autos.items() if p.name == "inc")
        # Prop. 4: the mod-3 relation contains the true +1 pairs
        for n in range(8):
            assert inc.accepts(nat(n), nat(n + 1))


class TestClassification:
    def test_figure3_matches_paper(self):
        expected = {
            "Even": (True, False, True),
            "IncDec": (True, True, True),
            "EvenLeft": (True, False, False),
            "Diag": (False, True, True),
            "LtGt": (False, False, True),
        }
        for name, (reg, elem, size) in expected.items():
            entry = ATLAS[name]
            assert entry.in_reg == reg, name
            assert entry.in_elem == elem, name
            assert entry.in_sizeelem == size, name

    def test_elem_subset_of_sizeelem(self):
        # the containment Elem ⊆ SizeElem visible in Figure 3
        for entry in ATLAS.values():
            if entry.in_elem:
                assert entry.in_sizeelem

    def test_rows_and_rendering(self):
        rows = figure3_rows()
        assert len(rows) == 5
        text = format_figure3()
        assert "EvenLeft" in text
        assert "yes" in text and "no" in text

    def test_every_entry_builds_its_system(self):
        for entry in ATLAS.values():
            system = entry.system_factory()
            assert len(system) >= 3


class TestSolversAgreeWithAtlas:
    """The empirical core of the paper: solver success correlates with
    definability.  Solvers must succeed on programs whose class column is
    'yes' and diverge when it is 'no'."""

    @pytest.mark.parametrize("name", list(ATLAS))
    def test_ringen_matches_reg_column(self, name):
        from repro import solve

        entry = ATLAS[name]
        result = solve(entry.system_factory(), timeout=8)
        if entry.in_reg:
            assert result.is_sat, f"{name} should have a regular model"
        else:
            assert result.is_unknown, f"{name} should diverge for RInGen"

    @pytest.mark.parametrize("name", list(ATLAS))
    def test_sizeelem_matches_column(self, name):
        from repro.solvers.sizeelem import solve_sizeelem

        entry = ATLAS[name]
        result = solve_sizeelem(entry.system_factory(), timeout=12)
        if entry.in_sizeelem:
            assert result.is_sat, f"{name} should have a SizeElem invariant"
        else:
            assert result.is_unknown

    @pytest.mark.parametrize("name", list(ATLAS))
    def test_elem_matches_column(self, name):
        from repro.solvers.elem import solve_elem

        entry = ATLAS[name]
        result = solve_elem(entry.system_factory(), timeout=8)
        if entry.in_elem:
            assert result.is_sat, f"{name} should have an Elem invariant"
        else:
            assert result.is_unknown
