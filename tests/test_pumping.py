"""Tests for the pumping machinery: Lemma 8's construction and the
mechanical replays of Prop. 1 and Prop. 2."""

import pytest

from repro.logic.adt import NAT, TREE, nat, nat_system, tree_system
from repro.problems import leaf, node
from repro.solvers.elem import atom_space, candidate_formulas
from repro.theory.atlas import even_member, evenleft_member
from repro.theory.normal_form import (
    ElemFormula,
    GroundEqAtom,
    Literal,
    PathEqAtom,
    PathTesterAtom,
)
from repro.theory.paths import EMPTY_PATH, Path, Step, apply_path, leaves
from repro.theory.pumping import (
    PathCongruence,
    cube_satisfied_by,
    find_pumping_counterexample,
    find_size_indistinguishable_pair,
    formula_pumping_constant,
    pump,
    pump_set,
    pumping_threshold,
)

NATS = nat_system()
TREES = tree_system()


def p(*steps):
    return Path(tuple(Step(c, i) for c, i in steps))


class TestCongruence:
    def test_union_find(self):
        c = PathCongruence()
        a, b, d = p(("node", 0)), p(("node", 1)), p(("node", 0), ("node", 0))
        c.add(a), c.add(b), c.add(d)
        c.union(a, b)
        assert set(map(str, c.equivalence_class(a))) == {str(a), str(b)}
        assert c.find(d) == d

    def test_appendix_b_example(self):
        """The paper's worked example: LLx = RRx & LRx = RRx, p = RRLR.

        One suffix q = LR of p is in the graph, r_q = RR, and the class of
        LR is {RR, LR, LL}, so P = {RRRR, RRLR, RRLL}.
        """
        # L = node.0, R = node.1; path "LL" (select L then L again) has
        # the innermost-last representation (L, L) etc.
        L, R = ("node", 0), ("node", 1)
        ll, lr, rr = p(L, L), p(L, R), p(R, R)
        cube = (
            Literal(PathEqAtom(0, ll, 0, rr), True),
            Literal(PathEqAtom(0, lr, 0, rr), True),
        )
        target = p(R, R, L, R)  # RRLR: LR applied first, then RR
        result = pump_set(cube, target)
        expected = {
            str(p(R, R, R, R)),
            str(p(R, R, L, R)),
            str(p(R, R, L, L)),
        }
        assert {str(q) for q in result} == expected

    def test_pump_set_without_graph_is_singleton(self):
        cube = (Literal(PathTesterAtom(0, EMPTY_PATH, "S"), True),)
        target = p(("S", 0), ("S", 0))
        assert pump_set(cube, target) == [target]


class TestPump:
    def test_pump_replaces_all_paths(self):
        g = node(node(leaf(), leaf()), node(leaf(), leaf()))
        paths = [p(("node", 0)), p(("node", 1))]
        t = leaf()
        assert pump(g, paths, t, TREES) == node(leaf(), leaf())

    def test_threshold_exceeds_height(self):
        from repro.logic.terms import height

        g = nat(5)
        assert pumping_threshold(g) == height(g) + 1

    def test_pumping_constant_grows_with_formula(self):
        small = ElemFormula(
            ((Literal(GroundEqAtom(0, EMPTY_PATH, nat(0)), True),),)
        )
        big = ElemFormula(
            (
                (
                    Literal(GroundEqAtom(0, EMPTY_PATH, nat(0)), True),
                    Literal(PathEqAtom(0, p(("S", 0)), 0, EMPTY_PATH), False),
                ),
            )
        )
        assert formula_pumping_constant(big, NATS) > formula_pumping_constant(
            small, NATS
        )

    def test_cube_satisfied_by(self):
        tester = Literal(PathTesterAtom(0, EMPTY_PATH, "Z"), True)
        other = Literal(PathTesterAtom(0, EMPTY_PATH, "S"), True)
        formula = ElemFormula(((tester,), (other,)))
        assert cube_satisfied_by(formula, nat(0), NATS) == (tester,)
        assert cube_satisfied_by(formula, nat(1), NATS) == (other,)
        empty = ElemFormula(())
        assert cube_satisfied_by(empty, nat(0), NATS) is None


class TestProp1:
    """Prop. 1 replayed mechanically: Even is not elementary.

    Every candidate elementary formula over Nat (from the Elem solver's
    own atom space) that agrees with Even on the small evens is defeated
    by a pumping counterexample.
    """

    def test_every_small_candidate_is_refuted(self):
        atoms = atom_space(
            __import__("repro.problems", fromlist=["EVEN"]).EVEN,
            NATS,
            max_path_depth=1,
            max_ground_height=3,
            max_atoms=32,
        )
        refuted = 0
        consistent = 0
        for formula in candidate_formulas(atoms, limit=600):
            # candidates must at least match Even on 0..2 (0, 2 in; 1 out)
            if not all(
                formula.eval((nat(n),), NATS) == even_member(nat(n))
                for n in range(3)
            ):
                continue
            consistent += 1
            witness = find_pumping_counterexample(
                formula, even_member, NAT, NATS,
                max_base_height=9, max_filler_height=11,
            )
            if witness is not None:
                refuted += 1
                # the witness is self-checking:
                assert formula.eval(
                    (witness.pumped,), NATS
                ) != even_member(witness.pumped)
        assert consistent > 0
        assert refuted == consistent

    def test_specific_pump_on_even(self):
        # pump S^6(Z) at its leaf with S^9(Z): formula-style candidates
        # cannot tell the results apart, but Even can
        g = nat(6)
        assert even_member(g)
        leaf_paths = leaves(g, NAT, NATS)
        pumped = pump(g, leaf_paths, nat(9), NATS)
        assert not even_member(pumped)


class TestProp2:
    """Prop. 2's core: same-size trees split by EvenLeft."""

    def test_size_indistinguishable_pair_exists(self):
        witness = find_size_indistinguishable_pair(
            evenleft_member, TREE, TREES, max_height=4
        )
        assert witness is not None
        from repro.logic.terms import size

        assert size(witness.inside) == size(witness.outside) == witness.size
        assert evenleft_member(witness.inside)
        assert not evenleft_member(witness.outside)

    def test_no_pair_for_size_determined_language(self):
        # size parity *is* size-determined: no witness can exist
        from repro.logic.terms import size

        witness = find_size_indistinguishable_pair(
            lambda t: size(t) % 4 == 1, TREE, TREES, max_height=4
        )
        assert witness is None

    def test_nat_languages_never_split_by_size(self):
        # over Nat, size determines the term: no language is splittable
        witness = find_size_indistinguishable_pair(
            even_member, NAT, NATS, max_height=6
        )
        assert witness is None
