"""Tests for clause unfolding (the fold/unfold transformation half)."""

import pytest

from repro.chc.clauses import BodyAtom, CHCError, CHCSystem, Clause
from repro.chc.semantics import bounded_least_fixpoint
from repro.chc.transform import preprocess
from repro.chc.unfold import inline_nonrecursive, unfold_atom, unfold_system
from repro.logic.adt import NAT, nat, nat_system
from repro.logic.formulas import TRUE
from repro.logic.sorts import PredSymbol
from repro.logic.terms import Var
from repro.problems import even_system, odd_unsat_system, s, z

P = PredSymbol("p", (NAT,))
Q = PredSymbol("q", (NAT,))
X = Var("x", NAT)
Y = Var("y", NAT)


def chain_system() -> CHCSystem:
    """q(x) defined through the auxiliary p: p(Z); p(x) -> q(S(x))."""
    system = CHCSystem(nat_system())
    system.add(Clause(TRUE, (), BodyAtom(P, (z(),)), "p-base"))
    system.add(
        Clause(TRUE, (BodyAtom(P, (X,)),), BodyAtom(Q, (s(X),)), "q-def")
    )
    system.add(Clause(TRUE, (BodyAtom(Q, (X,)),), None, "query"))
    return system


class TestUnfoldAtom:
    def test_single_resolution(self):
        system = chain_system()
        query = system.queries[0]
        resolved = unfold_atom(query, 0, system)
        assert len(resolved) == 1
        # the query now demands p(x) directly
        assert resolved[0].body[0].pred == P

    def test_unifier_applied(self):
        system = chain_system()
        q_def = [c for c in system.clauses if c.name == "q-def"][0]
        resolved = unfold_atom(q_def, 0, system)
        assert len(resolved) == 1
        # unfolding p's only definition grounds x to Z
        assert str(resolved[0].head) == "q(S(Z))"
        assert not resolved[0].body

    def test_no_definitions_yields_nothing(self):
        system = CHCSystem(nat_system())
        system.add(Clause(TRUE, (BodyAtom(P, (X,)),), None, "query"))
        resolved = unfold_atom(system.queries[0], 0, system)
        assert resolved == []

    def test_index_checked(self):
        system = chain_system()
        with pytest.raises(CHCError):
            unfold_atom(system.queries[0], 3, system)

    def test_universal_block_rejected(self):
        system = CHCSystem(nat_system())
        blocked = BodyAtom(P, (X,), universal_vars=(X,))
        system.add(Clause(TRUE, (blocked,), None, "query"))
        with pytest.raises(CHCError):
            unfold_atom(system.queries[0], 0, system)

    def test_variable_capture_avoided(self):
        # the definition uses the same variable name `x`: must be renamed
        system = CHCSystem(nat_system())
        system.add(
            Clause(TRUE, (BodyAtom(P, (X,)),), BodyAtom(Q, (X,)), "q-def")
        )
        system.add(
            Clause(TRUE, (BodyAtom(Q, (s(X),)),), None, "query")
        )
        resolved = unfold_atom(system.queries[0], 0, system)
        assert len(resolved) == 1
        assert resolved[0].body[0].pred == P


class TestUnfoldSystem:
    def test_preserves_bounded_least_model(self):
        system = even_system()
        unfolded = unfold_system(system)
        even = system.predicates["even"]
        before = bounded_least_fixpoint(
            system, max_height=6, check_queries=False
        )
        after = bounded_least_fixpoint(
            unfolded, max_height=6, check_queries=False
        )
        assert before.facts[even] == after.facts[even]

    def test_preserves_refutability(self):
        system = odd_unsat_system()
        unfolded = unfold_system(system)
        result = bounded_least_fixpoint(unfolded, max_height=4)
        assert result.refutation is not None

    def test_unfolding_doubles_visible_depth(self):
        # even-step unfolded once steps by 4 — facts at height 5 appear
        # after one round instead of two
        system = even_system()
        unfolded = unfold_system(system)
        even = system.predicates["even"]
        facts = bounded_least_fixpoint(
            unfolded, max_height=5, check_queries=False
        ).facts[even]
        assert (nat(4),) in facts

    def test_budget_enforced(self):
        system = even_system()
        with pytest.raises(CHCError):
            unfold_system(system, max_clauses=1)


class TestInlineNonrecursive:
    def test_auxiliary_predicate_eliminated(self):
        system = chain_system()
        inlined = inline_nonrecursive(system)
        # p fed into q; q's definition now references nothing
        assert all(
            atom.pred.name != "p"
            for cl in inlined.clauses
            for atom in cl.body
        )

    def test_recursive_predicates_survive(self):
        system = even_system()
        inlined = inline_nonrecursive(system)
        assert any(
            cl.head is not None and cl.head.pred.name == "even"
            for cl in inlined.clauses
        )

    def test_satisfiability_preserved(self):
        from repro import solve

        system = chain_system()
        # the chain system is UNSAT (q(S(Z)) derivable, query kills it)
        direct = solve(system, timeout=10)
        inlined_result = solve(inline_nonrecursive(system), timeout=10)
        assert direct.status == inlined_result.status
