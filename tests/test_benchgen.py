"""Tests for the benchmark generators: population structure + ground truth."""

import pytest

from repro.benchgen import (
    TIP_SIZE,
    adtbench_suites,
    diseq_suite,
    positiveeq_suite,
    tip_statistics,
    tip_suite,
)
from repro.benchgen.builders import (
    broken_mod_system,
    diag_variant_system,
    functionality_query_system,
    list_alternating_system,
    mirror_system,
    nat_mod_system,
    offset_pair_system,
    ordering_system,
    revacc_system,
    tree_branch_parity_system,
)
from repro.chc.semantics import bounded_least_fixpoint
from repro.chc.transform import is_constraint_free, preprocess


class TestSuiteShapes:
    def test_positiveeq_has_35(self):
        assert len(positiveeq_suite()) == 35

    def test_diseq_has_25(self):
        assert len(diseq_suite()) == 25

    def test_tip_has_454(self):
        assert len(tip_suite()) == TIP_SIZE == 454

    def test_tip_statistics(self):
        stats = tip_statistics(tip_suite())
        assert stats["total"] == 454
        assert stats["unsat"] == 42
        assert stats["ordering"] == 26

    def test_unique_names(self):
        for suite in (*adtbench_suites(), tip_suite()):
            names = [p.name for p in suite]
            assert len(set(names)) == len(names), suite.name

    def test_positiveeq_really_has_no_disequalities(self):
        from repro.chc.transform import has_disequalities

        for problem in positiveeq_suite():
            assert not has_disequalities(problem.build()), problem.name

    def test_diseq_problems_have_disequalities(self):
        from repro.chc.transform import has_disequalities

        with_diseq = [
            p for p in diseq_suite() if has_disequalities(p.build())
        ]
        assert len(with_diseq) >= 20

    def test_every_problem_preprocesses(self):
        for suite in adtbench_suites():
            for problem in suite:
                prepared = preprocess(problem.build())
                assert is_constraint_free(prepared), problem.name

    def test_tip_sample_preprocesses(self):
        suite = tip_suite()
        for problem in suite.problems[::23]:
            prepared = preprocess(problem.build())
            assert is_constraint_free(prepared), problem.name


class TestGroundTruth:
    """Spot-check expected statuses with the bounded semantics."""

    def test_sat_problems_have_no_shallow_refutation(self):
        for suite in adtbench_suites():
            for problem in suite.sat_problems()[:10]:
                prepared = preprocess(problem.build())
                result = bounded_least_fixpoint(
                    prepared, max_height=3, max_facts=20_000
                )
                assert result.refutation is None, problem.name

    def test_unsat_problems_are_refutable(self):
        for suite in adtbench_suites():
            for problem in suite.unsat_problems():
                prepared = preprocess(problem.build())
                result = bounded_least_fixpoint(
                    prepared, max_height=4, max_facts=50_000
                )
                assert result.refutation is not None, problem.name

    def test_tip_broken_problems_are_refutable_at_their_depth(self):
        suite = tip_suite()
        shallow = [
            p for p in suite.unsat_problems()
            if "mod2-d1" in p.name or "mod3-d1" in p.name
            or p.name == "tip-broken-list-1"
        ]
        assert len(shallow) >= 10
        for problem in shallow:
            prepared = preprocess(problem.build())
            result = bounded_least_fixpoint(
                prepared, max_height=4, max_facts=50_000
            )
            assert result.refutation is not None, problem.name

    def test_tip_deep_broken_problems_need_depth(self):
        suite = tip_suite()
        deep = [
            p for p in suite.unsat_problems() if "mod7-d2" in p.name
        ]
        assert deep
        prepared = preprocess(deep[0].build())
        result = bounded_least_fixpoint(
            prepared, max_height=4, max_facts=50_000
        )
        assert result.refutation is None


class TestBuilders:
    def test_nat_mod_safe_iff_not_divisible(self):
        # clash divisible by modulus -> the query fires: UNSAT
        system = nat_mod_system(2, 0, 2)
        prepared = preprocess(system)
        result = bounded_least_fixpoint(prepared, max_height=5)
        assert result.refutation is not None
        # non-divisible clash: safe
        system = nat_mod_system(2, 0, 1)
        prepared = preprocess(system)
        result = bounded_least_fixpoint(prepared, max_height=5)
        assert result.refutation is None

    def test_broken_mod_depth_controls_refutation_height(self):
        shallow = preprocess(broken_mod_system(2, 1))
        deep = preprocess(broken_mod_system(2, 4))
        assert bounded_least_fixpoint(
            shallow, max_height=4
        ).refutation is not None
        assert bounded_least_fixpoint(
            deep, max_height=4
        ).refutation is None  # needs height 9

    def test_alternating_list_is_regularly_solvable(self):
        from repro import solve

        result = solve(list_alternating_system(), timeout=15)
        assert result.is_sat

    def test_tree_parity_is_regularly_solvable(self):
        from repro import solve

        result = solve(tree_branch_parity_system(left=True), timeout=15)
        assert result.is_sat

    def test_offset_pair_elem_solvable(self):
        from repro.solvers.elem import solve_elem

        result = solve_elem(offset_pair_system(1, 2), timeout=15)
        assert result.is_sat

    def test_ordering_sizeelem_solvable(self):
        from repro.solvers.sizeelem import solve_sizeelem

        result = solve_sizeelem(ordering_system(strict=True), timeout=20)
        assert result.is_sat

    def test_mirror_is_safe(self):
        prepared = preprocess(mirror_system(0))
        result = bounded_least_fixpoint(
            prepared, max_height=3, max_facts=30_000
        )
        assert result.refutation is None

    def test_revacc_is_safe(self):
        prepared = preprocess(revacc_system(0))
        result = bounded_least_fixpoint(
            prepared, max_height=3, max_facts=30_000
        )
        assert result.refutation is None

    def test_functionality_is_safe(self):
        for kind in ("add", "dbl"):
            prepared = preprocess(functionality_query_system(kind))
            result = bounded_least_fixpoint(
                prepared, max_height=3, max_facts=30_000
            )
            assert result.refutation is None, kind

    def test_diag_variants_elem_solvable(self):
        from repro.solvers.elem import solve_elem

        result = solve_elem(diag_variant_system("nat"), timeout=15)
        assert result.is_sat

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            diag_variant_system("bogus")
        with pytest.raises(ValueError):
            functionality_query_system("bogus")
