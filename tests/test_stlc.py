"""Tests for the STLC case study (Sec. 5 + Appendix A)."""

import itertools

import pytest

from repro.chc.transform import preprocess
from repro.logic.terms import App
from repro.stlc import (
    TYPECHECK,
    abs_,
    app_,
    arrow,
    cons_env,
    empty,
    env_of,
    evar,
    find_inhabitant,
    goal_identity,
    goal_not_classical,
    goal_peirce,
    in_invariant,
    in_invariant_under,
    interpretations,
    invariant_automaton,
    invariant_model,
    is_classical_tautology,
    prim_p,
    prim_q,
    stlc_adts,
    stlc_problems,
    type_checks,
    type_truth,
    typecheck_vc,
    vx,
    vy,
)
from repro.stlc.typecheck import (
    t_identity,
    t_konst,
    t_not_taut,
    t_peirce,
)


class TestTypeChecker:
    def test_identity_types(self):
        identity = abs_(vx(), evar(vx()))
        assert type_checks(empty(), identity, t_identity())
        assert type_checks(
            empty(), identity, arrow(prim_q(), prim_q())
        )

    def test_identity_wrong_type(self):
        identity = abs_(vx(), evar(vx()))
        assert not type_checks(empty(), identity, arrow(prim_p(), prim_q()))

    def test_konst(self):
        konst = abs_(vx(), abs_(vy(), evar(vx())))
        assert type_checks(empty(), konst, t_konst())

    def test_application(self):
        # (λx.x) applied through an app-typed context
        applied = app_(abs_(vx(), evar(vx())), evar(vy()))
        env = env_of([(vy(), prim_p())])
        assert type_checks(env, applied, prim_p())

    def test_variable_lookup_respects_shadowing(self):
        env = env_of([(vx(), prim_p()), (vx(), prim_q())])
        assert type_checks(env, evar(vx()), prim_p())
        # the skip rule also allows reaching the deeper binding
        assert type_checks(env, evar(vx()), prim_q())

    def test_unbound_variable(self):
        assert not type_checks(empty(), evar(vx()), prim_p())

    def test_find_inhabitant_identity(self):
        witness = find_inhabitant(t_identity())
        assert witness is not None
        assert type_checks(empty(), witness, t_identity())

    def test_goal_type_uninhabited(self):
        assert find_inhabitant(t_not_taut(), max_depth=3) is None


class TestTautologies:
    def test_classical_tautology_check(self):
        assert is_classical_tautology(t_identity())
        assert is_classical_tautology(t_peirce())  # classical but not int.
        assert not is_classical_tautology(t_not_taut())

    def test_type_truth(self):
        interp = {"p": True, "q": False}
        assert type_truth(prim_p(), interp)
        assert not type_truth(arrow(prim_p(), prim_q()), interp)
        assert type_truth(arrow(prim_q(), prim_p()), interp)

    def test_interpretations_cover_all(self):
        assert len(list(interpretations())) == 4


class TestInvariant:
    def test_invariant_is_intersection_of_fixed_interpretations(self):
        env = env_of([(vx(), prim_p())])
        e = evar(vx())
        for t in (prim_p(), arrow(prim_p(), prim_q()), t_identity()):
            expected = all(
                in_invariant_under(env, e, t, m)
                for m in interpretations()
            )
            assert in_invariant(env, e, t) == expected

    def test_tautologies_always_in_invariant(self):
        assert in_invariant(empty(), evar(vx()), t_identity())

    def test_goal_type_not_in_invariant_at_empty_env(self):
        assert not in_invariant(empty(), evar(vx()), t_not_taut())

    def test_automaton_realizes_all_false_interpretation(self):
        auto = invariant_automaton()
        all_false = {"p": False, "q": False}
        adts = stlc_adts()
        types = adts.terms_up_to_height(
            __import__("repro.stlc.adts", fromlist=["TYPE"]).TYPE, 3
        )
        envs = adts.terms_up_to_height(
            __import__("repro.stlc.adts", fromlist=["ENV"]).ENV, 3
        )
        e = evar(vx())
        for env in envs[:12]:
            for t in types[:20]:
                assert auto.accepts(env, e, t) == in_invariant_under(
                    env, e, t, all_false
                )

    def test_hand_model_satisfies_vc_exactly(self):
        # Sec. 5's headline: the automaton is a safe inductive invariant
        vc = typecheck_vc()
        prepared = preprocess(vc)
        model = invariant_model()
        assert model.satisfies(prepared, herbrand=True)

    def test_hand_model_fails_for_inhabited_goal(self):
        # for a -> a the assertion is false, so NO invariant can satisfy
        # the VC; in particular the hand model must violate it
        vc = typecheck_vc(goal_identity)
        prepared = preprocess(vc)
        model = invariant_model()
        assert not model.satisfies(prepared, herbrand=True)


class TestPipelineOnStlc:
    def test_ringen_solves_the_case_study(self):
        from repro import solve

        result = solve(typecheck_vc(), timeout=60)
        assert result.is_sat
        # the paper's invariant: Var=1, Type=2, Expr=1, Env=2 (size 6)
        assert result.details["model_size"] == 6

    def test_ringen_diverges_on_peirce(self):
        from repro import solve

        result = solve(typecheck_vc(goal_peirce), timeout=6)
        assert result.is_unknown


class TestProblemSuite:
    def test_exactly_23_problems(self):
        problems = stlc_problems()
        assert len(problems) == 23

    def test_category_ground_truth_consistency(self):
        for problem in stlc_problems():
            goal = problem.goal(prim_p(), prim_q())
            if problem.category == "inhabited":
                assert problem.expected == "unsat"
            if problem.category == "non-tautology":
                assert not is_classical_tautology(goal)
                assert problem.expected == "sat"
            if problem.category == "classical-only":
                assert is_classical_tautology(goal)

    def test_inhabited_problems_have_witnesses(self):
        inhabited = [
            p for p in stlc_problems() if p.category == "inhabited"
        ][:4]
        for problem in inhabited:
            goal = problem.goal(prim_p(), prim_q())
            witness = find_inhabitant(goal, max_depth=3)
            assert witness is not None, problem.name

    def test_non_tautology_problems_build_systems(self):
        for problem in stlc_problems()[:5]:
            system = problem.system()
            assert len(system) == 5
