"""Tests for the supervised execution layer: workers, watchdog, faults,
journal/resume, and graceful interruption.

Every failure mode is driven deterministically through
:class:`repro.exec.ReproFaultPlan` — the same plans CI's fault-injection
job runs against a full campaign.
"""

import os
import signal
import time

import pytest

from repro.benchgen.suite import Problem, Suite
from repro.core.result import Status
from repro.exec import (
    CampaignInterrupted,
    ExecPolicy,
    FaultPlanError,
    ReproFaultPlan,
    ResultsJournal,
    load_journal,
)
from repro.exec.faults import FaultSpec
from repro.exec.journal import JournalError
from repro.exec.supervisor import _graceful_signals
from repro.harness.runner import run_campaign, run_problem, task_id_for
from repro.problems import (
    diag_system,
    even_system,
    incdec_system,
    odd_unsat_system,
)


def tiny_suite() -> Suite:
    suite = Suite("Tiny")
    suite.add("even", "parity", even_system, "sat")
    suite.add("incdec", "offset", incdec_system, "sat")
    suite.add("broken", "broken", odd_unsat_system, "unsat")
    return suite


def fault10_suite() -> Suite:
    """Ten quick problems with known answers (acceptance-style campaign)."""
    suite = Suite("Fault10")
    factories = [even_system, incdec_system, odd_unsat_system]
    expected = ["sat", "sat", "unsat"]
    for i in range(10):
        suite.add(f"p{i}", "fam", factories[i % 3], expected[i % 3])
    return suite


def verdicts(campaign):
    """The comparable core of a campaign: per-task (status, correctness)."""
    return {
        task_id_for(r.problem, r.solver): (r.status.value, r.correct)
        for r in campaign.records
    }


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = ReproFaultPlan.parse("crash@2,hang@tree/size,oom@7,flaky@3x2")
        assert len(plan) == 4
        assert plan.encode() == "crash@2,hang@tree/size,oom@7,flaky@3x2"
        assert ReproFaultPlan.parse(plan.encode()).encode() == plan.encode()

    def test_empty_plans(self):
        assert not ReproFaultPlan.parse(None)
        assert not ReproFaultPlan.parse("")
        assert not ReproFaultPlan.parse("  ")
        assert ReproFaultPlan.parse("crash@1")

    def test_parse_errors(self):
        with pytest.raises(FaultPlanError):
            ReproFaultPlan.parse("crash2")  # missing @key
        with pytest.raises(FaultPlanError):
            ReproFaultPlan.parse("explode@2")  # unknown kind
        with pytest.raises(FaultPlanError):
            ReproFaultPlan.parse("crash@")  # empty key
        with pytest.raises(FaultPlanError):
            ReproFaultPlan.parse("flaky@x3")  # repetition without key

    def test_from_env(self):
        plan = ReproFaultPlan.from_env({"REPRO_FAULT_PLAN": "crash@0"})
        assert len(plan) == 1 and plan.specs[0].kind == "crash"
        assert not ReproFaultPlan.from_env({})

    def test_matching_by_index_and_substring(self):
        spec = FaultSpec("crash", "3")
        assert spec.matches("Suite/p9/ringen", 3)
        assert not spec.matches("Suite/p3/ringen", 4)
        by_id = FaultSpec("hang", "p3/ringen")
        assert by_id.matches("Suite/p3/ringen", 0)
        assert not by_id.matches("Suite/p30/eldarica", 0)

    def test_crash_fires_only_on_match(self):
        plan = ReproFaultPlan.parse("crash@1")
        plan.fire("t0", 0, 1, isolated=False)  # no match: no raise
        with pytest.raises(Exception, match="injected crash"):
            plan.fire("t1", 1, 1, isolated=False)

    def test_flaky_succeeds_after_n_attempts(self):
        plan = ReproFaultPlan.parse("flaky@0x2")
        for attempt in (1, 2):
            with pytest.raises(Exception, match="transient"):
                plan.fire("t0", 0, attempt, isolated=False)
        plan.fire("t0", 0, 3, isolated=False)  # succeeds


class TestJournal:
    def test_roundtrip_and_later_entry_wins(self, tmp_path):
        path = str(tmp_path / "journal.jsonl")
        with ResultsJournal(path, meta={"timeout": 1.0}) as journal:
            journal.record({"task": "a", "status": "unknown"})
            journal.record({"task": "b", "status": "sat"})
            journal.record({"task": "a", "status": "sat"})
        meta, entries = load_journal(path)
        assert meta["timeout"] == 1.0 and meta["kind"] == "meta"
        assert set(entries) == {"a", "b"}
        assert entries["a"]["status"] == "sat"  # later entry wins

    def test_record_requires_task_id(self, tmp_path):
        with ResultsJournal(str(tmp_path / "j.jsonl")) as journal:
            with pytest.raises(JournalError):
                journal.record({"status": "sat"})

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "torn.jsonl")
        with ResultsJournal(path) as journal:
            journal.record({"task": "a", "status": "sat"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "record", "task": "b", "sta')  # torn
        meta, entries = load_journal(path)
        assert set(entries) == {"a"}

    def test_missing_journal_is_empty(self, tmp_path):
        meta, entries = load_journal(str(tmp_path / "nope.jsonl"))
        assert meta == {} and entries == {}

    def test_reopen_appends_without_second_header(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with ResultsJournal(path, meta={"timeout": 1.0}) as journal:
            journal.record({"task": "a", "status": "sat"})
        with ResultsJournal(path, meta={"timeout": 2.0}) as journal:
            journal.record({"task": "b", "status": "unsat"})
        with open(path, encoding="utf-8") as handle:
            headers = [l for l in handle if '"kind": "meta"' in l]
        assert len(headers) == 1
        meta, entries = load_journal(path)
        assert meta["timeout"] == 1.0 and set(entries) == {"a", "b"}


class TestRunProblemErrors:
    def test_crash_captures_type_and_traceback(self):
        def exploding_factory():
            raise RuntimeError("boom at build time")

        problem = Problem("bad", "Tiny", "fam", exploding_factory, "sat")
        record = run_problem(problem, "ringen", timeout=1.0)
        assert record.status is Status.UNKNOWN
        assert record.errored and record.error_kind == "crash"
        assert record.details["exception_type"] == "RuntimeError"
        assert "boom at build time" in record.reason
        assert record.reason.startswith("error:crash:")
        assert "exploding_factory" in record.traceback

    def test_errors_render_in_report(self):
        from repro.harness import campaign_report
        from repro.harness.runner import Campaign, RunRecord

        campaign = Campaign(timeout=1.0)

        def exploding_factory():
            raise RuntimeError("boom")

        problem = Problem("bad", "Tiny", "fam", exploding_factory, "sat")
        campaign.add(run_problem(problem, "ringen", timeout=1.0))
        text = campaign_report(campaign, {"Tiny": 1})
        assert "## Errors — crashed / killed / OOM tasks" in text
        assert "RuntimeError" in text


class TestSupervisedInprocess:
    def test_verdicts_match_legacy(self):
        legacy = run_campaign([tiny_suite()], solvers=["ringen"], timeout=5.0)
        supervised = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            policy=ExecPolicy(),
        )
        assert verdicts(legacy) == verdicts(supervised)
        assert supervised.exec_stats["isolate"] is False
        assert supervised.exec_stats["tasks_executed"] == 3

    def test_flaky_retried_with_backoff(self):
        plan = ReproFaultPlan.parse("flaky@0x1")
        campaign = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            policy=ExecPolicy(fault_plan=plan, backoff_base=0.01),
        )
        record = campaign.record("even", "ringen")
        assert record.status is Status.SAT and record.attempts == 2
        assert campaign.exec_stats["retries"] == 1

    def test_flaky_exhausts_retry_budget(self):
        plan = ReproFaultPlan.parse("flaky@0x5")
        campaign = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            policy=ExecPolicy(
                fault_plan=plan, max_retries=1, backoff_base=0.01
            ),
        )
        record = campaign.record("even", "ringen")
        assert record.errored and record.error_kind == "crash"
        assert campaign.exec_stats["retries"] == 1

    def test_crash_and_oom_become_structured_verdicts(self):
        plan = ReproFaultPlan.parse("crash@0,oom@1")
        campaign = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            policy=ExecPolicy(fault_plan=plan),
        )
        assert campaign.record("even", "ringen").error_kind == "crash"
        assert campaign.record("incdec", "ringen").error_kind == "oom"
        assert campaign.record("broken", "ringen").status is Status.UNSAT

    def test_backoff_is_deterministic_and_growing(self):
        policy = ExecPolicy(backoff_base=0.1, backoff_factor=2.0)
        second = policy.backoff("t", 2)
        third = policy.backoff("t", 3)
        assert second == policy.backoff("t", 2)  # deterministic
        assert 0.1 <= second <= 0.1 * 1.25
        assert third > second  # exponential growth dominates jitter

    def test_cooperative_timeout_overshoot_bounded(self):
        """A genuinely slow solve is cut off close to its deadline."""
        timeout = 0.3
        start = time.monotonic()
        record = run_problem(
            Problem("diag", "Tiny", "fam", diag_system, "unsat"),
            "ringen",
            timeout,
        )
        elapsed = time.monotonic() - start
        assert record.status is Status.UNKNOWN
        assert record.details.get("timeout_hit") is True
        assert "wall-clock timeout" in record.reason
        # the cooperative deadline is checked between solver steps, so
        # some overshoot is inherent — but it must stay bounded
        assert elapsed < timeout + 2.0

    def test_injected_hang_reports_cooperative_timeout(self):
        plan = ReproFaultPlan.parse("hang@0")
        start = time.monotonic()
        campaign = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=0.2,
            policy=ExecPolicy(fault_plan=plan),
        )
        elapsed = time.monotonic() - start
        record = campaign.record("even", "ringen")
        assert record.status is Status.UNKNOWN and not record.errored
        assert record.details.get("timeout_hit") is True
        assert "wall-clock timeout (cooperative)" in record.reason
        assert elapsed < 0.2 + 2.0


class TestIsolated:
    def test_acceptance_fault_campaign(self):
        """ISSUE acceptance: crash + hang + OOM + flaky in 10 problems."""
        plan = ReproFaultPlan.parse("crash@1,hang@3,oom@5,flaky@7x1")
        policy = ExecPolicy(
            isolate=True, fault_plan=plan, mem_limit_mb=512,
            backoff_base=0.01,
        )
        campaign = run_campaign(
            [fault10_suite()], solvers=["ringen"], timeout=1.0,
            policy=policy,
        )
        assert len(campaign.records) == 10
        kinds = {r.error_kind for r in campaign.records if r.errored}
        assert kinds == {"crash", "timeout_hard", "oom"}
        assert campaign.record("p1", "ringen").reason.startswith(
            "error:crash:"
        )
        assert campaign.record("p3", "ringen").reason.startswith(
            "error:timeout_hard:"
        )
        assert campaign.record("p5", "ringen").reason.startswith(
            "error:oom:"
        )
        flaky = campaign.record("p7", "ringen")
        assert flaky.status is Status.SAT and flaky.attempts == 2
        assert campaign.exec_stats["retries"] == 1
        # every non-faulted task still gets its honest verdict
        for name in ("p0", "p2", "p4", "p6", "p8", "p9"):
            assert campaign.record(name, "ringen").solved, name

    def test_verdicts_match_inprocess(self):
        inproc = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            policy=ExecPolicy(),
        )
        isolated = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            policy=ExecPolicy(isolate=True),
        )
        assert verdicts(inproc) == verdicts(isolated)
        assert isolated.exec_stats["isolate"] is True
        assert isolated.exec_stats["workers_spawned"] == 3

    def test_watchdog_kills_hang_within_bound(self):
        plan = ReproFaultPlan.parse("hang@0")
        timeout = 0.2
        policy = ExecPolicy(isolate=True, fault_plan=plan)
        hard = policy.hard_timeout(timeout)
        start = time.monotonic()
        campaign = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=timeout,
            policy=policy,
        )
        elapsed = time.monotonic() - start
        record = campaign.record("even", "ringen")
        assert record.error_kind == "timeout_hard"
        assert record.status is Status.UNKNOWN
        # the worker spins forever; only the watchdog ends it — within
        # the hard budget plus kill/cleanup slack
        assert elapsed < hard + 5.0
        # the bystanders were rescheduled and still answered
        assert campaign.record("incdec", "ringen").solved
        assert campaign.record("broken", "ringen").solved

    def test_oom_under_memory_cap(self):
        plan = ReproFaultPlan.parse("oom@0")
        campaign = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            policy=ExecPolicy(isolate=True, fault_plan=plan,
                              mem_limit_mb=512),
        )
        record = campaign.record("even", "ringen")
        assert record.error_kind == "oom"
        assert record.reason.startswith("error:oom:")
        assert campaign.record("incdec", "ringen").solved

    def test_share_engines_batches_and_matches(self):
        # fault10 repeats three systems, so batch_order groups the
        # signature-identical copies and each group rides one worker
        shared = run_campaign(
            [fault10_suite()], solvers=["ringen"], timeout=5.0,
            share_engines=True,
            policy=ExecPolicy(isolate=True),
        )
        plain = run_campaign(
            [fault10_suite()], solvers=["ringen"], timeout=5.0,
            policy=ExecPolicy(isolate=True),
        )
        assert verdicts(shared) == verdicts(plain)
        # 10 tasks in 3 signature groups: strictly fewer workers
        assert shared.exec_stats["workers_spawned"] < 10
        assert plain.exec_stats["workers_spawned"] == 10
        # the workers' private pools report aggregated reuse counters
        assert shared.pool_stats is not None
        assert shared.pool_stats.get("problems", 0) >= 2


class TestResumeAndInterrupt:
    def test_sigterm_becomes_campaign_interrupted(self):
        with pytest.raises(CampaignInterrupted):
            with _graceful_signals():
                os.kill(os.getpid(), signal.SIGTERM)
                # the handler raises synchronously on delivery; give the
                # kernel a beat in case delivery is deferred
                for _ in range(100):
                    time.sleep(0.01)
        # the previous handler is restored afterwards
        assert signal.getsignal(signal.SIGTERM) is not None

    def test_interrupt_flushes_partial_journal_then_resume(self, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        # injected interrupt before task 2: simulates Ctrl-C mid-campaign
        plan = ReproFaultPlan.parse("interrupt@2")
        partial = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=journal,
            policy=ExecPolicy(fault_plan=plan),
        )
        assert partial.interrupted
        assert len(partial.records) == 2  # only the journaled prefix
        meta, entries = load_journal(journal)
        assert len(entries) == 2
        # the partial report says so
        from repro.harness import campaign_report

        text = campaign_report(partial, {"Tiny": 3})
        assert "**PARTIAL REPORT**" in text

        # resume: only the remainder executes, verdicts identical to an
        # uninterrupted run
        resumed = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=journal, resume=True,
            policy=ExecPolicy(),
        )
        assert not resumed.interrupted
        assert resumed.exec_stats["tasks_resumed"] == 2
        assert resumed.exec_stats["tasks_executed"] == 1
        reference = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            policy=ExecPolicy(),
        )
        assert verdicts(resumed) == verdicts(reference)

    def test_resume_complete_journal_executes_nothing(self, tmp_path):
        journal = str(tmp_path / "done.jsonl")
        first = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=journal, policy=ExecPolicy(),
        )
        resumed = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=journal, resume=True, policy=ExecPolicy(),
        )
        assert resumed.exec_stats["tasks_executed"] == 0
        assert resumed.exec_stats["tasks_resumed"] == 3
        assert verdicts(resumed) == verdicts(first)

    def test_journal_written_in_isolated_mode(self, tmp_path):
        journal = str(tmp_path / "iso.jsonl")
        campaign = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=journal, policy=ExecPolicy(isolate=True),
        )
        meta, entries = load_journal(journal)
        assert meta["solvers"] == ["ringen"]
        assert len(entries) == 3
        for record in campaign.records:
            task_id = task_id_for(record.problem, record.solver)
            assert entries[task_id]["status"] == record.status.value


class TestWarmWorkers:
    """Engine snapshots across worker boundaries (share_engines)."""

    def test_warm_reschedule_after_worker_death(self):
        # flaky@ kills the whole worker process mid-batch; with engine
        # sharing the supervisor must reschedule the batch remainder on
        # a worker warm-started from the last snapshot it received.
        # Index 5 is the *second* task of its signature batch, so the
        # first task's verdict already carried a snapshot for the group
        plan = ReproFaultPlan.parse("flaky@5x1")
        faulted = run_campaign(
            [fault10_suite()], solvers=["ringen"], timeout=5.0,
            share_engines=True,
            policy=ExecPolicy(
                isolate=True, fault_plan=plan, backoff_base=0.01
            ),
        )
        clean = run_campaign(
            [fault10_suite()], solvers=["ringen"], timeout=5.0,
            share_engines=True,
            policy=ExecPolicy(isolate=True),
        )
        assert verdicts(faulted) == verdicts(clean)
        assert faulted.exec_stats["snapshots_collected"] > 0
        assert faulted.exec_stats["workers_warm_started"] >= 1
        assert clean.exec_stats["workers_warm_started"] == 0

    def test_snapshots_stay_out_of_the_journal(self, tmp_path):
        journal = str(tmp_path / "warm.jsonl")
        run_campaign(
            [fault10_suite()], solvers=["ringen"], timeout=5.0,
            share_engines=True, journal_path=journal,
            policy=ExecPolicy(isolate=True),
        )
        meta, entries = load_journal(journal)
        assert entries
        for entry in entries.values():
            assert "engine_snapshot" not in entry

    def test_snapshot_store_keeps_freshest_not_last_arrival(self):
        # Regression: two workers share a fingerprint; the slow cold
        # one's snapshot (stamp 1) arrives *after* the fast warm one's
        # (stamp 3).  The old last-write-wins store would clobber the
        # fresher snapshot with the stale one.
        from repro.exec.supervisor import _SnapshotStore

        store = _SnapshotStore()
        assert store.seq("g") == 0
        assert store.offer("g", 3, {"who": "fast"})
        assert not store.offer("g", 1, {"who": "slow-straggler"})
        assert store.get("g") == {"who": "fast"}
        assert store.seq("g") == 3
        # equal stamps (independent workers racing from the same seed):
        # most recent arrival wins, like the pre-fix coin toss
        assert store.offer("g", 3, {"who": "peer"})
        assert store.get("g") == {"who": "peer"}
        # groups are independent
        assert store.offer("h", 1, {"who": "other-group"})
        assert store.get("g") == {"who": "peer"}

    def test_racing_workers_keep_snapshot_stamps_monotonic(self):
        # Two same-signature batches raced through workers: the stamp
        # seeded into each new worker equals the freshest collected so
        # far, so a respawned worker's snapshots always outrank the
        # snapshots it warm-started from.
        plan = ReproFaultPlan.parse("flaky@5x1")
        faulted = run_campaign(
            [fault10_suite()], solvers=["ringen"], timeout=5.0,
            share_engines=True,
            policy=ExecPolicy(
                isolate=True, fault_plan=plan, backoff_base=0.01
            ),
        )
        assert faulted.exec_stats["workers_warm_started"] >= 1
        # every verdict is still correct after the race
        assert all(r.correct for r in faulted.records)


class TestJournalConfigGuard:
    """Resume must refuse journals from an incompatible configuration."""

    def test_meta_records_backend_and_fingerprint(self, tmp_path):
        journal = str(tmp_path / "meta.jsonl")
        run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=journal, policy=ExecPolicy(),
        )
        meta, _ = load_journal(journal)
        assert meta["sat_backend"] == "python"
        assert meta["config_fingerprint"]

    def test_mismatched_config_refused(self, tmp_path):
        journal = str(tmp_path / "guard.jsonl")
        run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=journal,
            policy=ExecPolicy(
                solver_opts={"core_guided_sweep": True}
            ),
        )
        with pytest.raises(JournalError, match="configuration"):
            run_campaign(
                [tiny_suite()], solvers=["ringen"], timeout=5.0,
                journal_path=journal, resume=True,
                policy=ExecPolicy(
                    solver_opts={"core_guided_sweep": False}
                ),
            )

    def test_cache_dir_never_affects_the_fingerprint(self, tmp_path):
        journal = str(tmp_path / "cache.jsonl")
        run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=journal, policy=ExecPolicy(),
        )
        # same configuration, different warm cache: resume is fine
        resumed = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=journal, resume=True,
            engine_cache_dir=str(tmp_path / "engines"),
            policy=ExecPolicy(),
        )
        assert resumed.exec_stats["tasks_resumed"] == 3

    def test_legacy_journal_without_fields_resumes(self, tmp_path):
        import json

        journal = tmp_path / "legacy.jsonl"
        first = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=str(journal), policy=ExecPolicy(),
        )
        # strip the new meta fields, as a journal from an older build
        lines = journal.read_text().splitlines()
        meta = json.loads(lines[0])
        meta.pop("sat_backend", None)
        meta.pop("config_fingerprint", None)
        journal.write_text(
            "\n".join([json.dumps(meta)] + lines[1:]) + "\n"
        )
        resumed = run_campaign(
            [tiny_suite()], solvers=["ringen"], timeout=5.0,
            journal_path=str(journal), resume=True, policy=ExecPolicy(),
        )
        assert resumed.exec_stats["tasks_resumed"] == 3
        assert verdicts(resumed) == verdicts(first)
