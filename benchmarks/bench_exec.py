"""Supervised execution vs. plain in-process: verdict parity + overhead.

Runs one quick campaign (the ``nat_mod`` family plus the three tiny
paper systems) three ways:

* **inprocess**: the legacy fast path, no supervisor;
* **supervised**: the supervisor's in-process mode (journal, retry and
  interrupt machinery armed, but no subprocesses);
* **isolated**: one worker subprocess per task under the hard watchdog
  and a 1 GiB address-space cap.

All three must produce identical (status, correctness) verdicts —
:func:`repro.exec.worker.solve_task` drives both execution modes, so
any divergence is a supervisor bug, not solver noise.  A fourth pass
re-runs the isolated campaign under a fault plan injecting a crash, a
hang, an OOM and a flaky task, and checks the three structured error
verdicts land while every unfaulted task keeps its honest answer.

The measurements land in ``BENCH_exec.json`` at the repo root;
``benchmarks/smoke.sh`` fails on any verdict divergence or missing
fault verdict.

Usable both as a script (``python benchmarks/bench_exec.py``, exit
code 1 on disagreement) and as a pytest module.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro.benchgen.builders import nat_mod_system
from repro.benchgen.suite import Suite
from repro.exec import ExecPolicy, ReproFaultPlan
from repro.harness.runner import run_campaign, task_id_for
from repro.problems import even_system, incdec_system, odd_unsat_system

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_exec.json"
)

PER_PROBLEM_TIMEOUT = 30.0
FAULT_PLAN = "crash@1,hang@3,oom@5,flaky@7x1"
MEM_LIMIT_MB = 1024


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def exec_suite() -> Suite:
    suite = Suite("Exec")
    suite.add("even", "parity", even_system, "sat")
    suite.add("incdec", "offset", incdec_system, "sat")
    suite.add("broken", "broken", odd_unsat_system, "unsat")
    for m in (2, 3, 4):
        for r, c in ((0, 1), (1, 2)):
            if c % m == 0:
                continue
            suite.add(
                f"nat-mod{m}-r{r}-c{c}",
                "nat_mod",
                (lambda m=m, r=r, c=c: nat_mod_system(m, r, c)),
                "sat",
            )
    return suite


def _verdicts(campaign) -> dict[str, tuple[str, bool]]:
    return {
        task_id_for(r.problem, r.solver): (r.status.value, r.correct)
        for r in campaign.records
    }


def _measure(policy) -> tuple[dict, float, object]:
    start = time.monotonic()
    campaign = run_campaign(
        [exec_suite()],
        solvers=["ringen"],
        timeout=PER_PROBLEM_TIMEOUT,
        policy=policy,
    )
    elapsed = time.monotonic() - start
    return _verdicts(campaign), elapsed, campaign


def run_exec_ablation() -> dict:
    inproc_verdicts, inproc_time, _ = _measure(None)
    sup_verdicts, sup_time, _ = _measure(ExecPolicy())
    iso_verdicts, iso_time, iso_campaign = _measure(
        ExecPolicy(isolate=True, mem_limit_mb=MEM_LIMIT_MB)
    )

    # fault pass: the quick fault campaign every CI run exercises
    plan = ReproFaultPlan.parse(FAULT_PLAN)
    fault_start = time.monotonic()
    fault_campaign = run_campaign(
        [exec_suite()],
        solvers=["ringen"],
        timeout=2.0,
        policy=ExecPolicy(
            isolate=True,
            fault_plan=plan,
            mem_limit_mb=MEM_LIMIT_MB,
            backoff_base=0.01,
        ),
    )
    fault_time = time.monotonic() - fault_start
    fault_kinds = sorted(
        {r.error_kind for r in fault_campaign.records if r.errored}
    )
    flaky = fault_campaign.records[7]
    unfaulted_ok = all(
        r.solved
        for i, r in enumerate(fault_campaign.records)
        if i not in (1, 3, 5)
    )

    totals = {
        "problems": len(inproc_verdicts),
        "inprocess_time": inproc_time,
        "supervised_time": sup_time,
        "isolated_time": iso_time,
        "fault_time": fault_time,
        "supervised_agrees": sup_verdicts == inproc_verdicts,
        "isolated_agrees": iso_verdicts == inproc_verdicts,
        "workers_spawned": iso_campaign.exec_stats["workers_spawned"],
        "fault_kinds": fault_kinds,
        "flaky_attempts": flaky.attempts,
        "flaky_recovered": flaky.solved and flaky.attempts > 1,
        "unfaulted_tasks_ok": unfaulted_ok,
        "fault_retries": fault_campaign.exec_stats["retries"],
    }
    report = {
        "scale": bench_scale(),
        "fault_plan": FAULT_PLAN,
        "verdicts": {
            task: list(verdict) for task, verdict in inproc_verdicts.items()
        },
        "totals": totals,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_exec_ablation():
    """Isolated == supervised == in-process verdicts; faults structured."""
    report = run_exec_ablation()
    totals = report["totals"]
    assert totals["supervised_agrees"], report
    assert totals["isolated_agrees"], report
    assert totals["fault_kinds"] == ["crash", "oom", "timeout_hard"], totals
    assert totals["flaky_recovered"], totals
    assert totals["unfaulted_tasks_ok"], totals


def main() -> int:
    report = run_exec_ablation()
    totals = report["totals"]
    print(json.dumps(totals, indent=2))
    print(f"artifact: {ARTIFACT}")
    if not (totals["supervised_agrees"] and totals["isolated_agrees"]):
        print("FAIL: supervised/isolated verdicts diverge from in-process")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
