"""Experiment E1-E3: regenerate Table 1 (Sec. 8).

Paper's shape (300 s timeout, the authors' testbed):

    PositiveEq (35):  RInGen 27 SAT  >>  Spacer 4, Eldarica 1
    Diseq (25):       RInGen 4 SAT + 1 UNSAT; others <= 2 SAT
    TIP (454):        Eldarica 46 SAT > RInGen 30 > Spacer 26;
                      UNSAT: RInGen 21 ~ Spacer 22 > CVC4-Ind 13 > Eldarica 12
    CVC4-Ind:         0 SAT everywhere

What must hold here (scaled-down timeouts; see EXPERIMENTS.md for the
measured numbers): RInGen dominates PositiveEq by a wide margin; the Diseq
subset collapses everyone's SAT counts; the single Diseq UNSAT is found;
on TIP the ordering problems make the SizeElem baseline the SAT leader
while the structural-parity problems are RInGen-only.

The rendered table is written to benchmarks/output/table1*.txt.
"""

import pytest

from repro.core.result import Status
from repro.harness import format_table1, table1
from repro.harness.runner import run_problem
from repro.problems import even_system

from conftest import write_artifact


def test_table1_positiveeq(benchmark, adtbench_campaign):
    campaign, sizes = adtbench_campaign
    rows = table1(campaign, {"PositiveEq": sizes["PositiveEq"]})
    text = format_table1(rows)
    write_artifact("table1_positiveeq.txt", text)
    print("\n" + text)

    sat = {
        s: campaign.count("PositiveEq", s, Status.SAT)
        for s in ("ringen", "spacer", "eldarica", "cvc4-ind")
    }
    # the paper's headline: regular invariants dominate this suite
    assert sat["ringen"] >= 20
    assert sat["ringen"] > sat["spacer"]
    assert sat["ringen"] > sat["eldarica"]
    assert sat["cvc4-ind"] == 0
    # no incorrect verdicts anywhere
    assert all(r.correct for r in campaign.for_suite("PositiveEq"))

    # benchmark proper: one representative RInGen solve
    from repro.benchgen import positiveeq_suite

    problem = positiveeq_suite().problems[0]
    benchmark.pedantic(
        lambda: run_problem(problem, "ringen", 2.0), rounds=3, iterations=1
    )


def test_table1_diseq(benchmark, adtbench_campaign):
    campaign, sizes = adtbench_campaign
    rows = table1(campaign, {"Diseq": sizes["Diseq"]})
    text = format_table1(rows)
    write_artifact("table1_diseq.txt", text)
    print("\n" + text)

    ringen_sat = campaign.count("Diseq", "ringen", Status.SAT)
    ringen_unsat = campaign.count("Diseq", "ringen", Status.UNSAT)
    pos_sat = campaign.count("PositiveEq", "ringen", Status.SAT)
    # Sec. 4.4's prediction: diseq problems rarely have finite models
    assert ringen_sat <= 8
    assert ringen_sat / sizes["Diseq"] < pos_sat / sizes["PositiveEq"]
    # the one UNSAT problem is refuted
    assert ringen_unsat == 1
    assert all(r.correct for r in campaign.for_suite("Diseq"))

    from repro.benchgen import diseq_suite

    problem = diseq_suite().problems[0]  # diseq-guard-2: solvable
    benchmark.pedantic(
        lambda: run_problem(problem, "ringen", 2.0), rounds=3, iterations=1
    )


def test_table1_tip(benchmark, tip_campaign):
    campaign, sizes = tip_campaign
    rows = table1(campaign, sizes)
    text = format_table1(rows)
    write_artifact("table1_tip.txt", text)
    print("\n" + text)

    sat = {
        s: campaign.count("TIP", s, Status.SAT)
        for s in ("ringen", "spacer", "eldarica", "cvc4-ind")
    }
    unsat = {
        s: campaign.count("TIP", s, Status.UNSAT)
        for s in ("ringen", "spacer", "eldarica", "cvc4-ind")
    }
    # shape: the SizeElem baseline leads SAT counts (orderings), every
    # solver leaves the long tail unsolved, CVC4-Ind proves nothing SAT
    assert sat["eldarica"] >= sat["spacer"]
    assert sat["ringen"] > 0
    assert sat["cvc4-ind"] == 0
    # unique SATs exist on both sides (structural vs ordering problems).
    # Uniqueness is computed among the *invariant-producing* solvers: our
    # VeriMAP proxy shares the size engine with the SizeElem baseline (the
    # original tool certifies at the transformed level), so including it
    # would structurally shadow Eldarica's ordering solves.
    invariant_solvers = ["ringen", "spacer", "eldarica", "cvc4-ind"]
    uniq_ringen = campaign.unique_count(
        "TIP", "ringen", Status.SAT, invariant_solvers
    )
    uniq_eldarica = campaign.unique_count(
        "TIP", "eldarica", Status.SAT, invariant_solvers
    )
    assert uniq_ringen > 0
    assert uniq_eldarica > 0
    # refutations: the graded broken problems are found by the deeper
    # searchers at least as often as by the shallow ones
    assert unsat["ringen"] > 0
    assert all(r.correct for r in campaign.for_suite("TIP"))

    benchmark.pedantic(
        lambda: run_problem(
            # a parity problem both RInGen and Eldarica solve
            [p for p in __import__("repro.benchgen", fromlist=["tip_suite"])
             .tip_suite().problems if p.family == "parity"][0],
            "ringen",
            2.0,
        ),
        rounds=3,
        iterations=1,
    )


def test_table1_total_row(benchmark, adtbench_campaign):
    campaign, sizes = adtbench_campaign
    rows = benchmark.pedantic(
        lambda: table1(campaign, sizes), rounds=1, iterations=1
    )
    total_sat = [r for r in rows if r.suite == "Total" and r.answer == "SAT"]
    assert len(total_sat) == 1
    assert total_sat[0].counts["ringen"] == (
        campaign.count("PositiveEq", "ringen", Status.SAT)
        + campaign.count("Diseq", "ringen", Status.SAT)
    )
