"""Ablation: incremental model-finding engine vs. from-scratch re-encoding.

Runs the finite model finder twice per problem — once with the shared
CDCL engine (one solver spans the size sweep, clauses guarded by
existence selectors, per-vector solving under assumptions) and once with
the engine reset before every size vector (the seed behaviour) — and
records wall-clock plus clause-encoding statistics for both.  Results
must agree exactly (same found/not-found verdicts, same model sizes);
the point of the incremental engine is to do strictly less encoding
work for the same answers.

The measurements are written to ``BENCH_incremental.json`` at the repo
root so the performance trajectory is recorded from this PR onward;
``benchmarks/smoke.sh`` runs the quick scale and fails if the
incremental engine is more than 10% slower than from-scratch.

Usable both as a script (``python benchmarks/bench_incremental.py``,
exit code 1 on disagreement) and as a pytest module.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro.chc.transform import preprocess
from repro.mace.finder import find_model
from repro.problems import (
    diag_system,
    diseq_zz_system,
    even_system,
    evenleft_system,
    incdec_system,
    odd_unsat_system,
)

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_incremental.json"
)

# (name, system factory, find_model kwargs) — SAT problems exercise
# model decoding across resumed sweeps, UNSAT ones exercise deep sweeps
# where clause reuse matters most.
QUICK_PROBLEMS = [
    ("even", even_system, {}),
    ("incdec", incdec_system, {}),
    ("evenleft", evenleft_system, {}),
    ("diseq_zz", diseq_zz_system, {}),
    ("odd_unsat", odd_unsat_system, {"max_total_size": 5}),
    ("diag", diag_system, {"max_total_size": 5}),
]

FULL_EXTRA = [
    ("diag-6", diag_system, {"max_total_size": 6}),
    ("diag-7", diag_system, {"max_total_size": 7, "timeout": 60}),
]


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def _measure(prepared, incremental: bool, kwargs: dict) -> dict:
    start = time.monotonic()
    result = find_model(prepared, incremental=incremental, **kwargs)
    elapsed = time.monotonic() - start
    stats = result.stats.as_dict()
    stats["time"] = elapsed
    stats["found"] = result.found
    return stats


def run_ablation() -> dict:
    scale = bench_scale()
    problems = list(QUICK_PROBLEMS)
    if scale == "full":
        problems += FULL_EXTRA
    rows = []
    for name, factory, kwargs in problems:
        prepared = preprocess(factory())
        inc = _measure(prepared, True, kwargs)
        scr = _measure(prepared, False, kwargs)
        rows.append(
            {
                "problem": name,
                "incremental": inc,
                "scratch": scr,
                "agree": (
                    inc["found"] == scr["found"]
                    and inc["model_size"] == scr["model_size"]
                ),
            }
        )
    totals = {
        "incremental_time": sum(r["incremental"]["time"] for r in rows),
        "scratch_time": sum(r["scratch"]["time"] for r in rows),
        "incremental_clauses_encoded": sum(
            r["incremental"]["clauses_encoded"] for r in rows
        ),
        "scratch_clauses_encoded": sum(
            r["scratch"]["clauses_encoded"] for r in rows
        ),
        "clauses_reused": sum(
            r["incremental"]["clauses_reused"] for r in rows
        ),
        "all_agree": all(r["agree"] for r in rows),
    }
    if totals["incremental_time"] > 0:
        totals["speedup"] = (
            totals["scratch_time"] / totals["incremental_time"]
        )
    report = {"scale": scale, "problems": rows, "totals": totals}
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_incremental_ablation():
    """Results agree and the incremental engine encodes fewer clauses."""
    report = run_ablation()
    totals = report["totals"]
    assert totals["all_agree"], report
    assert (
        totals["incremental_clauses_encoded"]
        < totals["scratch_clauses_encoded"]
    ), totals
    assert totals["clauses_reused"] > 0, totals


def main() -> int:
    report = run_ablation()
    totals = report["totals"]
    print(json.dumps(totals, indent=2))
    print(f"artifact: {ARTIFACT}")
    if not totals["all_agree"]:
        print("FAIL: incremental and from-scratch results disagree")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
