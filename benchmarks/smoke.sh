#!/usr/bin/env bash
# Quick performance gate for the incremental model-finding engine.
#
# Runs the incremental-vs-from-scratch ablation at quick scale, emits
# BENCH_incremental.json at the repo root, and fails if
#   * the two engines disagree on any verdict or model size, or
#   * the incremental engine is more than 10% slower than from-scratch
#     on the quick suite.
#
# Usage: benchmarks/smoke.sh   (from anywhere; CI runs it as-is)
set -euo pipefail
cd "$(dirname "$0")/.."

export REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-quick}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python benchmarks/bench_incremental.py

python - <<'EOF'
import json
import sys

with open("BENCH_incremental.json") as handle:
    report = json.load(handle)
totals = report["totals"]

if not totals["all_agree"]:
    sys.exit("FAIL: incremental and from-scratch results disagree")

inc, scr = totals["incremental_time"], totals["scratch_time"]
print(f"incremental: {inc:.3f}s  from-scratch: {scr:.3f}s  "
      f"speedup: {totals.get('speedup', float('nan')):.2f}x")
print(f"clauses encoded: {totals['incremental_clauses_encoded']} vs "
      f"{totals['scratch_clauses_encoded']} "
      f"(reused {totals['clauses_reused']})")
if inc > 1.10 * scr:
    sys.exit(f"FAIL: incremental engine {inc:.3f}s is >10% slower than "
             f"from-scratch {scr:.3f}s")
print("OK: incremental engine within budget")
EOF
