#!/usr/bin/env bash
# Quick performance gates for the model-finding engine.
#
# Gate 1 (PR 1): incremental-vs-from-scratch ablation; emits
# BENCH_incremental.json and fails if
#   * the two engines disagree on any verdict or model size, or
#   * the incremental engine is more than 10% slower than from-scratch
#     on the quick suite.
#
# Gate 2 (PR 2): campaign-vs-fresh-engine ablation over a
# shared-signature batch; emits BENCH_campaign.json and fails if
#   * statuses disagree,
#   * campaign mode shows no cross-problem reuse, or
#   * campaign mode is more than 10% slower than fresh engines.
#
# Gate 3 (PR 3): unsat-core-guided sweep ablation; emits
# BENCH_core.json and fails if
#   * the guided and unguided sweeps disagree on any verdict,
#   * no benchmark family shows measured vector skips, or
#   * the guided sweep is more than 10% slower than unguided.
#
# Gate 4 (PR 6): supervised execution parity; emits BENCH_exec.json
# and fails if
#   * isolated-mode or supervised-in-process verdicts diverge from the
#     plain in-process fast path on the quick suite, or
#   * the fault-injected campaign (crash + hang + OOM + flaky) fails
#     to produce its three structured error verdicts, or the flaky
#     task does not recover via retry.
#
# Gate 5 (PR 7): SAT backend boundary ablation; emits
# BENCH_backend.json and fails if
#   * any backend configuration (pure-Python default, pure-Python
#     without core minimization, PySAT when installed) disagrees on a
#     status or model size,
#   * core minimization never fires on the quick suite, or
#   * the pure-Python default is more than 10% slower than its
#     no-minimization baseline.
#
# Gate 6 (PR 8): engine snapshot/restore + warm cache; emits
# BENCH_snapshot.json and fails if
#   * a restored engine's verdicts diverge from cold runs,
#   * a warm-cache second campaign diverges from the cold first run,
#   * the warm run is not at least 10% faster than the cold run, or
#   * a fault-killed engine-sharing worker's batch remainder is not
#     rescheduled onto a warm-started worker with unchanged verdicts.
#
# Gate 7 (PR 9): observability overhead + fidelity; emits
# BENCH_obs.json and fails if
#   * verdicts change with tracing/metrics enabled,
#   * the produced trace is malformed (duplicate span ids, dangling
#     parents, missing hierarchy levels, broken Chrome export), or
#   * the obs-off path is more than 5% slower than baseline (the
#     instrumentation guards must be free when disabled).
#
# Gate 8 (PR 10): speculative parallel size sweeps; emits
# BENCH_parallel.json and fails if
#   * sequential, 1-shard, and 2-shard verdicts/model sizes disagree,
#   * the 2-shard portfolio is not >=10% faster than 1 shard,
#   * no speculation, core broadcast, or cross-shard queue prune was
#     observed, or
#   * the 1-shard path is more than 5% slower than the sequential
#     baseline (the machinery must be free when disabled).
#
# Usage: benchmarks/smoke.sh   (from anywhere; CI runs it as-is)
set -euo pipefail
cd "$(dirname "$0")/.."

export REPRO_BENCH_SCALE="${REPRO_BENCH_SCALE:-quick}"
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python benchmarks/bench_incremental.py

python - <<'EOF'
import json
import sys

with open("BENCH_incremental.json") as handle:
    report = json.load(handle)
totals = report["totals"]

if not totals["all_agree"]:
    sys.exit("FAIL: incremental and from-scratch results disagree")

inc, scr = totals["incremental_time"], totals["scratch_time"]
print(f"incremental: {inc:.3f}s  from-scratch: {scr:.3f}s  "
      f"speedup: {totals.get('speedup', float('nan')):.2f}x")
print(f"clauses encoded: {totals['incremental_clauses_encoded']} vs "
      f"{totals['scratch_clauses_encoded']} "
      f"(reused {totals['clauses_reused']})")
if inc > 1.10 * scr:
    sys.exit(f"FAIL: incremental engine {inc:.3f}s is >10% slower than "
             f"from-scratch {scr:.3f}s")
print("OK: incremental engine within budget")
EOF

python benchmarks/bench_campaign.py

python - <<'EOF'
import json
import sys

with open("BENCH_campaign.json") as handle:
    report = json.load(handle)
totals = report["totals"]

if not totals["all_agree"]:
    sys.exit("FAIL: campaign and fresh-engine results disagree")
if totals["cross_problem_clauses"] <= 0:
    sys.exit("FAIL: campaign mode shows no cross-problem reuse")

camp, fresh = totals["campaign_time"], totals["fresh_time"]
print(f"campaign: {camp:.3f}s  fresh engines: {fresh:.3f}s  "
      f"speedup: {totals.get('speedup', float('nan')):.2f}x")
print(f"clauses encoded: {totals['campaign_clauses_encoded']} vs "
      f"{totals['fresh_clauses_encoded']} "
      f"(inherited {totals['cross_problem_clauses']})")
if camp > 1.10 * fresh:
    sys.exit(f"FAIL: campaign mode {camp:.3f}s is >10% slower than "
             f"fresh engines {fresh:.3f}s")
print("OK: campaign engine pool within budget")
EOF

python benchmarks/bench_core.py

python - <<'EOF'
import json
import sys

with open("BENCH_core.json") as handle:
    report = json.load(handle)
totals = report["totals"]

if not totals["all_agree"]:
    sys.exit("FAIL: core-guided and unguided sweeps disagree")
if totals["vectors_skipped"] <= 0:
    sys.exit("FAIL: core guidance skipped no vectors")

on, off = totals["guided_time"], totals["unguided_time"]
print(f"core-guided: {on:.3f}s  unguided: {off:.3f}s  "
      f"speedup: {totals.get('speedup', float('nan')):.2f}x")
print(f"vectors: {totals['attempts_guided']} attempted + "
      f"{totals['vectors_skipped']} skipped "
      f"(vs {totals['attempts_unguided']} unguided; "
      f"{totals['cores_extracted']} cores)")
if on > 1.10 * off:
    sys.exit(f"FAIL: core-guided sweep {on:.3f}s is >10% slower than "
             f"unguided {off:.3f}s")
print("OK: core-guided sweep within budget")
EOF

python benchmarks/bench_exec.py

python - <<'EOF'
import json
import sys

with open("BENCH_exec.json") as handle:
    report = json.load(handle)
totals = report["totals"]

if not totals["supervised_agrees"]:
    sys.exit("FAIL: supervised in-process verdicts diverge from legacy")
if not totals["isolated_agrees"]:
    sys.exit("FAIL: isolated-mode verdicts diverge from in-process")
if sorted(totals["fault_kinds"]) != ["crash", "oom", "timeout_hard"]:
    sys.exit(f"FAIL: fault campaign produced {totals['fault_kinds']} "
             f"instead of crash/oom/timeout_hard")
if not totals["flaky_recovered"]:
    sys.exit("FAIL: flaky task did not recover via retry")
if not totals["unfaulted_tasks_ok"]:
    sys.exit("FAIL: a fault leaked into an unfaulted task's verdict")

inproc, iso = totals["inprocess_time"], totals["isolated_time"]
print(f"in-process: {inproc:.3f}s  isolated: {iso:.3f}s  "
      f"({totals['workers_spawned']} workers)  "
      f"fault campaign: {totals['fault_time']:.3f}s "
      f"({totals['fault_retries']} retries)")
print("OK: supervised execution verdict parity + structured faults")
EOF

python benchmarks/bench_backend.py

python - <<'EOF'
import json
import sys

with open("BENCH_backend.json") as handle:
    report = json.load(handle)
totals = report["totals"]

if not totals["all_agree"]:
    sys.exit("FAIL: SAT backend configurations disagree on a status")
if totals["cores_minimized"] <= 0:
    sys.exit("FAIL: core minimization never fired on the quick suite")

on, off = totals["python_time"], totals["python-nomin_time"]
print(f"backends: {', '.join(totals['configs'])}")
print(f"python: {on:.3f}s  python w/o minimization: {off:.3f}s  "
      f"({totals['cores_minimized']} cores minimized, "
      f"{totals['core_lits_dropped']} literals dropped)")
if "pysat_time" in totals:
    print(f"pysat: {totals['pysat_time']:.3f}s")
if on > 1.10 * off:
    sys.exit(f"FAIL: pure-Python default {on:.3f}s is >10% slower than "
             f"its no-minimization baseline {off:.3f}s")
print("OK: backend boundary status parity + pure-Python within budget")
EOF

python benchmarks/bench_snapshot.py

python - <<'EOF'
import json
import sys

with open("BENCH_snapshot.json") as handle:
    report = json.load(handle)

rt, wc, ww = report["roundtrip"], report["warmcache"], report["warmworkers"]
if not rt["parity"]:
    sys.exit("FAIL: restored-engine verdicts diverge from cold runs")
if not wc["parity"]:
    sys.exit("FAIL: warm-cache campaign verdicts diverge from cold run")
if not wc["fast_enough"]:
    sys.exit(f"FAIL: warm run {wc['warm_time']:.3f}s not >=10% faster "
             f"than cold {wc['cold_time']:.3f}s")
if not ww["parity"]:
    sys.exit("FAIL: warm-rescheduled campaign verdicts diverge")
if ww["workers_warm_started"] < 1:
    sys.exit("FAIL: no worker was warm-started after the injected death")

print(f"snapshot round-trip: {rt['agreed']}/{rt['problems']} agree "
      f"({rt['snapshot_bytes']} bytes, {rt['snapshot_groups']} groups)")
print(f"warm cache: cold {wc['cold_time']:.3f}s -> warm "
      f"{wc['warm_time']:.3f}s "
      f"({wc['warm_pool']['snapshot_hits']} snapshot hits)")
print(f"warm workers: {ww['workers_warm_started']} warm-started, "
      f"{ww['snapshots_collected']} snapshots collected, "
      f"{ww['retries']} retries")
print("OK: engine snapshot/restore parity + warm-cache speedup")
EOF

python benchmarks/bench_obs.py

python - <<'EOF'
import json
import sys

with open("BENCH_obs.json") as handle:
    report = json.load(handle)
totals = report["totals"]

if not totals["verdict_parity"]:
    sys.exit("FAIL: verdicts changed with observability enabled")
if not totals["trace_valid"]:
    sys.exit(f"FAIL: malformed trace: {totals['trace_problems']}")
if totals["trace_spans"] <= 0:
    sys.exit("FAIL: enabled run produced an empty trace")
if not (totals["metrics_have_phases"] and totals["metrics_have_sat"]):
    sys.exit("FAIL: metrics snapshot is missing phase.* or sat.* counters")

base, off = totals["baseline_time"], totals["disabled_time"]
on = totals["enabled_time"]
print(f"baseline: {base:.3f}s  obs-off: {off:.3f}s  obs-on: {on:.3f}s  "
      f"({totals['trace_spans']} spans, "
      f"{totals['chrome_events']} chrome events)")
# 50ms absolute slack: the quick suite finishes in tens of ms, where
# scheduler noise alone can exceed a bare 5% ratio
if off > 1.05 * base + 0.05:
    sys.exit(f"FAIL: obs-off path {off:.3f}s is >5% slower than "
             f"baseline {base:.3f}s — disabled guards are not free")
print("OK: observability free when off, verdicts unchanged when on")
EOF

python benchmarks/bench_parallel.py

python - <<'EOF'
import json
import sys

with open("BENCH_parallel.json") as handle:
    report = json.load(handle)
totals, gates = report["totals"], report["gates"]

if not gates["parity"]:
    sys.exit("FAIL: parallel-sweep verdicts diverge from sequential")
if not gates["speculation"]:
    sys.exit("FAIL: no vector speculation or core broadcast observed")
if not gates["queue_pruned"]:
    sys.exit("FAIL: no broadcast core pruned a sibling shard's queue")

seq, one, two = (totals["sequential_time"], totals["shards1_time"],
                 totals["shards2_time"])
print(f"sequential: {seq:.3f}s  1 shard: {one:.3f}s  2 shards: {two:.3f}s  "
      f"speedup: {totals['speedup_vs_shards1']:.2f}x")
print(f"speculated {totals['vectors_speculated']} vectors, broadcast "
      f"{totals['cores_broadcast']} cores, pruned "
      f"{totals['speculative_pruned']} sibling-queue vectors")
if not gates["speedup"]:
    sys.exit(f"FAIL: 2-shard portfolio {two:.3f}s not >=10% faster than "
             f"1 shard {one:.3f}s")
if not gates["no_tax_disabled"]:
    sys.exit(f"FAIL: 1-shard path {one:.3f}s is >5% slower than the "
             f"sequential baseline {seq:.3f}s — parallel machinery "
             f"taxes the disabled path")
print("OK: parallel sweep parity + speedup, no tax when disabled")
EOF
