"""Experiments E4/E5: Figures 4 and 5 — engine timing scatters.

Figure 4 plots RInGen's time against each competitor's on every problem
(timeouts pinned to the boundary); Figure 5 restricts to problems where
someone found an invariant.  The paper's reading: "not only did RInGen
infer more invariants, it was also generally faster" — on the SAT subset
the points mass below the diagonal.

We regenerate the data from the De Angelis campaign and check that
diagonal dominance; the raw points go to benchmarks/output/.
"""

import pytest

from repro.harness import (
    figure4_data,
    figure5_data,
    format_scatter,
)

from conftest import write_artifact


def _dump(points_by_solver, name):
    lines = []
    for solver, points in points_by_solver.items():
        for x, y, problem in points:
            lines.append(f"{solver}\t{problem}\t{x:.4f}\t{y:.4f}")
    write_artifact(name, "\n".join(lines) + "\n")


def test_figure4_all_results(benchmark, adtbench_campaign):
    campaign, _ = adtbench_campaign
    data = benchmark.pedantic(
        lambda: figure4_data(campaign), rounds=1, iterations=1
    )
    _dump(data, "figure4_points.tsv")
    summary = format_scatter(
        data, title="Figure 4 (all results, x=ringen y=competitor):"
    )
    write_artifact("figure4_summary.txt", summary)
    print("\n" + summary)
    # every competitor pairing covers the full problem set
    for solver, points in data.items():
        assert len(points) == 60, solver


def test_figure5_sat_only_dominance(benchmark, adtbench_campaign):
    campaign, _ = adtbench_campaign
    data = benchmark.pedantic(
        lambda: figure5_data(campaign), rounds=1, iterations=1
    )
    _dump(data, "figure5_points.tsv")
    summary = format_scatter(
        data, title="Figure 5 (SAT results only):"
    )
    write_artifact("figure5_summary.txt", summary)
    print("\n" + summary)
    # the paper's claim on invariant-finding speed: against each
    # competitor, RInGen is at least as often faster than slower on the
    # problems where an invariant was found at all
    for solver, points in data.items():
        if not points:
            continue
        wins = sum(1 for x, y, _ in points if x < y)
        losses = sum(1 for x, y, _ in points if x > y)
        assert wins >= losses, (solver, wins, losses)


def test_bench_scatter_extraction(benchmark, adtbench_campaign):
    campaign, _ = adtbench_campaign
    benchmark(lambda: figure4_data(campaign))
