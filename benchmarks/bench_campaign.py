"""Campaign batch mode vs. fresh-engine-per-problem (cross-problem reuse).

Solves shared-signature batches twice:

* **fresh**: a new RInGen (and hence a new incremental engine) per
  problem, the PR-1 behaviour;
* **campaign**: one :class:`repro.mace.pool.EnginePool` spans the batch,
  so every problem after the first inherits the warm engine — the
  signature-level cell encoding, every clause group it shares with
  earlier problems (ground instances *and* the learned clauses that
  mention their selectors), VSIDS activity and saved phases.

The quick batch is the ``nat_mod`` family (one Nat signature, heavily
overlapping clause sets — the shape of the paper's PositiveEq
campaign); the full scale adds the STLC inhabitation batch, whose five
typing-rule clauses are shared verbatim by all 23 problems.

Statuses must agree exactly — the pool only changes the solver state a
search starts from, never satisfiability.  Model sizes are compared
only for systems without universal blocks: on quantifier-alternating
systems (STLC) the model *found* at a given size depends on solver
state, and a candidate can fail the exact Herbrand check and resume at
a larger size, so equally-correct runs may report different (verified)
sizes.

The measurements land in ``BENCH_campaign.json`` at the repo root and
``benchmarks/smoke.sh`` fails if campaign mode is more than 10% slower
than fresh mode or shows no cross-problem reuse.

Usable both as a script (``python benchmarks/bench_campaign.py``, exit
code 1 on disagreement) and as a pytest module.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro import solve
from repro.automata.ops import clear_op_caches
from repro.benchgen.builders import (
    nat_mod_system,
    nat_two_residues_system,
)
from repro.mace.pool import EnginePool
from repro.stlc import stlc_problems

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_campaign.json"
)

PER_PROBLEM_TIMEOUT = 30.0


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def campaign_problems() -> list[tuple[str, object, bool]]:
    """(name, system factory, compare_model_size) batch entries."""
    problems: list[tuple[str, object, bool]] = []
    for m in (2, 3, 4, 5):
        for r, c in ((0, 1), (1, 2), (0, 3)):
            if c % m == 0:
                continue
            problems.append(
                (
                    f"nat-mod{m}-r{r}-c{c}",
                    (lambda m=m, r=r, c=c: nat_mod_system(m, r, c)),
                    True,
                )
            )
    for m, r1, r2 in ((2, 0, 1), (3, 0, 2)):
        problems.append(
            (
                f"nat-two-{m}-{r1}-{r2}",
                (
                    lambda m=m, r1=r1, r2=r2: nat_two_residues_system(
                        m, r1, r2
                    )
                ),
                True,
            )
        )
    if bench_scale() == "full":
        for p in stlc_problems():
            if p.category == "non-tautology":
                problems.append(
                    (f"stlc-{p.name}", p.system, False)
                )
    return problems


def _measure(factory, pool) -> dict:
    # the automata verdict caches are process-global and would let the
    # second run inherit Herbrand-verification work the first run paid
    # for; clearing isolates the effect under measurement (engine reuse)
    clear_op_caches()
    start = time.monotonic()
    result = solve(
        factory(), timeout=PER_PROBLEM_TIMEOUT, engine_pool=pool
    )
    elapsed = time.monotonic() - start
    finder = result.details.get("finder", {})
    return {
        "status": result.status.value,
        "model_size": result.details.get("model_size"),
        "time": elapsed,
        "clauses_encoded": finder.get("clauses_encoded", 0),
        "cross_problem_clauses": finder.get("cross_problem_clauses", 0),
    }


def run_campaign_ablation() -> dict:
    problems = campaign_problems()
    pool = EnginePool()
    rows = []
    for name, factory, strict_size in problems:
        fresh = _measure(factory, None)
        pooled = _measure(factory, pool)
        rows.append(
            {
                "problem": name,
                "fresh": fresh,
                "campaign": pooled,
                "agree": (
                    fresh["status"] == pooled["status"]
                    and (
                        not strict_size
                        or fresh["model_size"] == pooled["model_size"]
                    )
                ),
            }
        )
    totals = {
        "fresh_time": sum(r["fresh"]["time"] for r in rows),
        "campaign_time": sum(r["campaign"]["time"] for r in rows),
        "fresh_clauses_encoded": sum(
            r["fresh"]["clauses_encoded"] for r in rows
        ),
        "campaign_clauses_encoded": sum(
            r["campaign"]["clauses_encoded"] for r in rows
        ),
        "cross_problem_clauses": sum(
            r["campaign"]["cross_problem_clauses"] for r in rows
        ),
        "all_agree": all(r["agree"] for r in rows),
    }
    if totals["campaign_time"] > 0:
        totals["speedup"] = (
            totals["fresh_time"] / totals["campaign_time"]
        )
    report = {
        "scale": bench_scale(),
        "problems": rows,
        "totals": totals,
        "pool": pool.as_dict(),
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_campaign_ablation():
    """Statuses agree and the pool produces real cross-problem reuse."""
    report = run_campaign_ablation()
    totals = report["totals"]
    assert totals["all_agree"], report
    assert totals["cross_problem_clauses"] > 0, totals
    assert report["pool"]["engine_hits"] >= len(report["problems"]) - 2
    # shared clause groups + shared cells: the campaign encodes less
    assert (
        totals["campaign_clauses_encoded"]
        < totals["fresh_clauses_encoded"]
    ), totals


def main() -> int:
    report = run_campaign_ablation()
    totals = report["totals"]
    print(json.dumps(totals, indent=2))
    print(f"artifact: {ARTIFACT}")
    if not totals["all_agree"]:
        print("FAIL: campaign and fresh-engine results disagree")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
