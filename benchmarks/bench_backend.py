"""Ablation gate for the pluggable SAT backend boundary.

Runs the finite model finder over the quick problem set once per
backend configuration and asserts the boundary is *behavior-preserving*:

* ``python`` — the in-repo CDCL solver with the hot-path upgrades this
  boundary shipped with (deletion-based core minimization, dynamic LBD
  re-computation) at their defaults;
* ``python-nomin`` — the same solver with ``core_minimization=False``,
  the pre-upgrade pure-Python baseline the regression gate compares
  against;
* ``pysat`` — the optional `python-sat`/Glucose adapter, included only
  when the dependency is importable (the default CI leg proves the
  pure-Python fallback, a dedicated job installs python-sat and runs
  the cross-backend comparison).

Statuses (model found / model size) must be identical across every
configuration — backends may differ in *which* model they return and
how fast, never in the verdict.  The wall-clock gate protects the
pure-Python default path: with minimization on it must stay within 10%
of the no-minimization baseline over the suite (the probes are
budget-capped precisely so their cost stays in the noise while the
shrunken cores prune more of the sweep).

Measurements land in ``BENCH_backend.json`` at the repo root;
``benchmarks/smoke.sh`` runs the quick scale and fails on status
disagreement or a pure-Python regression beyond the threshold.

Usable both as a script (``python benchmarks/bench_backend.py``, exit
code 1 on a gate failure) and as a pytest module.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro.chc.transform import preprocess
from repro.mace.finder import find_model
from repro.problems import (
    diag_system,
    diseq_zz_system,
    even_system,
    evenleft_system,
    incdec_system,
    ltgt_system,
    odd_unsat_system,
    z_neq_sz_system,
)
from repro.sat.backend import backend_available
from repro.stlc import stlc_problems

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_backend.json"
)

#: pure-Python default may be at most this much slower than the
#: no-minimization baseline over the whole suite
REGRESSION_THRESHOLD = 1.10

#: (name, find_model overrides) per configuration; ``pysat`` joins at
#: collection time when the dependency is importable
CONFIGS = [
    ("python", {"sat_backend": "python", "core_minimization": True}),
    (
        "python-nomin",
        {"sat_backend": "python", "core_minimization": False},
    ),
]


def _stlc_systems(count: int):
    problems = [
        p for p in stlc_problems() if p.category == "non-tautology"
    ]
    return [
        (f"stlc/{p.name}", p.system, {"max_total_size": 7})
        for p in problems[:count]
    ]


def quick_problems():
    """(name, system factory, find_model kwargs) rows for the quick scale.

    Same spread as ``bench_core.py``: SAT problems prove no backend
    invents a refutation, exhaustive/UNSAT sweeps are where cores (and
    their minimization) actually run.
    """
    rows = [
        ("even", even_system, {}),
        ("incdec", incdec_system, {}),
        ("evenleft", evenleft_system, {}),
        ("diseq_zz", diseq_zz_system, {}),
        ("odd_unsat", odd_unsat_system, {"max_total_size": 5}),
        ("diag", diag_system, {"max_total_size": 5}),
        ("ltgt", ltgt_system, {"max_total_size": 5}),
        ("z_neq_sz", z_neq_sz_system, {"max_total_size": 6}),
    ]
    rows += _stlc_systems(3)
    return rows


def full_extra():
    return [
        ("diag-6", diag_system, {"max_total_size": 6}),
        ("ltgt-6", ltgt_system, {"max_total_size": 6}),
    ] + _stlc_systems(8)[3:]


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def configs():
    rows = list(CONFIGS)
    if backend_available("pysat"):
        rows.append(
            ("pysat", {"sat_backend": "pysat", "core_minimization": True})
        )
    return rows


def _measure(prepared, active, kwargs: dict) -> dict:
    """Best-of-5 wall clock per configuration, repetitions interleaved
    across configurations so load drift on shared CI hardware hits
    every leg alike — the regression gate compares totals in the
    few-hundred-millisecond range, where a one-sided timer blip would
    dominate the 10% threshold."""
    best: dict = {}
    for _ in range(5):
        for cfg_name, overrides in active:
            start = time.monotonic()
            result = find_model(prepared, **overrides, **kwargs)
            elapsed = time.monotonic() - start
            slot = best.get(cfg_name)
            if slot is None or elapsed < slot[1]:
                best[cfg_name] = (result, elapsed)
    runs = {}
    for cfg_name, (result, elapsed) in best.items():
        stats = result.stats.as_dict()
        stats["time"] = elapsed
        stats["found"] = result.found
        stats["complete"] = result.complete
        runs[cfg_name] = stats
    return runs


def run_ablation() -> dict:
    scale = bench_scale()
    problems = quick_problems()
    if scale == "full":
        problems += full_extra()
    active = configs()
    rows = []
    for name, factory, kwargs in problems:
        prepared = preprocess(factory())
        runs = _measure(prepared, active, kwargs)
        reference = runs["python"]
        rows.append(
            {
                "problem": name,
                "runs": runs,
                # the gate is on statuses: found / model size must be
                # identical whichever engine (or core pipeline) ran
                "agree": all(
                    r["found"] == reference["found"]
                    and r["model_size"] == reference["model_size"]
                    for r in runs.values()
                ),
            }
        )
    totals: dict = {
        "configs": [cfg_name for cfg_name, _ in active],
        "all_agree": all(r["agree"] for r in rows),
        "cores_minimized": sum(
            r["runs"]["python"]["cores_minimized"] for r in rows
        ),
        "core_lits_dropped": sum(
            r["runs"]["python"]["core_lits_dropped"] for r in rows
        ),
    }
    for cfg_name, _ in active:
        totals[f"{cfg_name}_time"] = sum(
            r["runs"][cfg_name]["time"] for r in rows
        )
    if totals["python-nomin_time"] > 0:
        totals["python_vs_baseline"] = (
            totals["python_time"] / totals["python-nomin_time"]
        )
    report = {"scale": scale, "problems": rows, "totals": totals}
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_backend_ablation():
    """Statuses identical across backends; minimization within budget."""
    report = run_ablation()
    totals = report["totals"]
    assert totals["all_agree"], report
    assert totals["cores_minimized"] > 0, totals
    assert totals["core_lits_dropped"] >= 0, totals
    assert (
        totals["python_time"]
        <= REGRESSION_THRESHOLD * totals["python-nomin_time"]
    ), totals


def main() -> int:
    report = run_ablation()
    totals = report["totals"]
    print(json.dumps(totals, indent=2))
    print(f"artifact: {ARTIFACT}")
    failed = False
    if not totals["all_agree"]:
        print("FAIL: backend configurations disagree on a status")
        failed = True
    ratio = totals.get("python_vs_baseline")
    if ratio is not None and ratio > REGRESSION_THRESHOLD:
        print(
            f"FAIL: core minimization regresses the pure-Python path "
            f"{ratio:.2f}x (threshold {REGRESSION_THRESHOLD:.2f}x)"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
