"""Ablation: unsat-core-guided size sweep vs. the unguided sweep.

Runs the finite model finder twice per problem — once with
``core_guided_sweep=True`` (refuted vectors leave their unsat core
behind as transferable size bounds; covered candidates are skipped
without re-solving, and a selector-only core stops the sweep outright)
and once unguided — and records wall-clock plus sweep statistics for
both.  The guidance is a pure pruning of *proven-unsat* candidates, so
verdicts (found / model size) must agree exactly; the benchmark exists
to demonstrate that and to measure the skipped work.

Multi-sort problems are where the pruning bites: their sweeps
enumerate many compositions of each total size, and a refutation core
that ignores one sort's bounds covers a whole band of later
compositions.  The STLC inhabitation problems (4 sorts) are the
representative family here; the single-sort paper examples mostly
check the no-regression side.

The measurements are written to ``BENCH_core.json`` at the repo root;
``benchmarks/smoke.sh`` runs the quick scale and fails if statuses
disagree, if no problem shows any vector skips, or if the guided sweep
is more than 10% slower than the unguided one.

Usable both as a script (``python benchmarks/bench_core.py``, exit
code 1 on disagreement) and as a pytest module.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro.chc.transform import preprocess
from repro.mace.finder import find_model
from repro.problems import (
    diag_system,
    diseq_zz_system,
    even_system,
    evenleft_system,
    incdec_system,
    ltgt_system,
    odd_unsat_system,
    z_neq_sz_system,
)
from repro.stlc import stlc_problems

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_core.json"
)


def _stlc_systems(count: int):
    problems = [
        p for p in stlc_problems() if p.category == "non-tautology"
    ]
    return [
        (f"stlc/{p.name}", p.system, {"max_total_size": 7})
        for p in problems[:count]
    ]


def quick_problems():
    """(name, system factory, find_model kwargs) rows for the quick scale.

    SAT problems check the guidance never skips a satisfiable vector;
    UNSAT/exhaustive sweeps are where cores accumulate and prune.
    """
    rows = [
        ("even", even_system, {}),
        ("incdec", incdec_system, {}),
        ("evenleft", evenleft_system, {}),
        ("diseq_zz", diseq_zz_system, {}),
        ("odd_unsat", odd_unsat_system, {"max_total_size": 5}),
        ("diag", diag_system, {"max_total_size": 5}),
        ("ltgt", ltgt_system, {"max_total_size": 5}),
        ("z_neq_sz", z_neq_sz_system, {"max_total_size": 6}),
    ]
    rows += _stlc_systems(3)
    return rows


def full_extra():
    return [
        ("diag-6", diag_system, {"max_total_size": 6}),
        ("ltgt-6", ltgt_system, {"max_total_size": 6}),
    ] + _stlc_systems(8)[3:]


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def _measure(prepared, core_guided: bool, kwargs: dict) -> dict:
    start = time.monotonic()
    result = find_model(
        prepared, core_guided_sweep=core_guided, **kwargs
    )
    elapsed = time.monotonic() - start
    stats = result.stats.as_dict()
    stats["time"] = elapsed
    stats["found"] = result.found
    stats["complete"] = result.complete
    return stats


def run_ablation() -> dict:
    scale = bench_scale()
    problems = quick_problems()
    if scale == "full":
        problems += full_extra()
    rows = []
    for name, factory, kwargs in problems:
        prepared = preprocess(factory())
        guided = _measure(prepared, True, kwargs)
        unguided = _measure(prepared, False, kwargs)
        rows.append(
            {
                "problem": name,
                "guided": guided,
                "unguided": unguided,
                # the ISSUE gate is on *statuses* (found / model size);
                # completeness may legitimately differ when a conflict
                # budget binds — the guidance can skip a vector the
                # unguided sweep exhausts its budget on, which is
                # exactly the intended benefit, not a disagreement
                "agree": (
                    guided["found"] == unguided["found"]
                    and guided["model_size"] == unguided["model_size"]
                ),
            }
        )
    totals = {
        "guided_time": sum(r["guided"]["time"] for r in rows),
        "unguided_time": sum(r["unguided"]["time"] for r in rows),
        "vectors_skipped": sum(
            r["guided"]["vectors_skipped"] for r in rows
        ),
        "cores_extracted": sum(
            r["guided"]["cores_extracted"] for r in rows
        ),
        "vectors_refuted": sum(
            r["guided"]["vectors_refuted"] for r in rows
        ),
        "attempts_guided": sum(r["guided"]["attempts"] for r in rows),
        "attempts_unguided": sum(
            r["unguided"]["attempts"] for r in rows
        ),
        "all_agree": all(r["agree"] for r in rows),
    }
    if totals["guided_time"] > 0:
        totals["speedup"] = (
            totals["unguided_time"] / totals["guided_time"]
        )
    report = {"scale": scale, "problems": rows, "totals": totals}
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_core_guided_ablation():
    """Verdicts agree and the guidance measurably prunes the sweep."""
    report = run_ablation()
    totals = report["totals"]
    assert totals["all_agree"], report
    assert totals["vectors_skipped"] > 0, totals
    assert totals["cores_extracted"] > 0, totals
    assert (
        totals["attempts_guided"] < totals["attempts_unguided"]
    ), totals


def main() -> int:
    report = run_ablation()
    totals = report["totals"]
    print(json.dumps(totals, indent=2))
    print(f"artifact: {ARTIFACT}")
    if not totals["all_agree"]:
        print("FAIL: core-guided and unguided results disagree")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
