"""Shared fixtures for the experiment benchmarks.

The campaigns regenerating Table 1 / Figures 4-6 are expensive (hundreds
of problems x five solvers), so they run once per session and are shared
by every bench that needs them.  Scale is controlled by environment
variables:

* ``REPRO_BENCH_SCALE=quick`` (default): the full De Angelis suites (60
  problems) and a deterministic 1-in-9 subsample of TIP (51 problems),
  with a small per-run timeout.
* ``REPRO_BENCH_SCALE=full``: all 514 problems — closer to the paper's
  runs; expect tens of minutes.
* ``REPRO_BENCH_TIMEOUT``: per-(problem, solver) timeout in seconds
  (default 2.0 quick / 8.0 full; the paper used 300 s per problem).

Campaign outputs (the rendered table and figure data) are written to
``benchmarks/output/`` so the artifacts survive the run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.benchgen import adtbench_suites, tip_suite
from repro.harness import run_campaign

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def bench_timeout() -> float:
    default = 2.0 if bench_scale() == "quick" else 8.0
    return float(os.environ.get("REPRO_BENCH_TIMEOUT", default))


def write_artifact(name: str, content: str) -> pathlib.Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / name
    path.write_text(content)
    return path


@pytest.fixture(scope="session")
def adtbench_campaign():
    """Both De Angelis-style suites, all five solvers."""
    suites = adtbench_suites()
    return run_campaign(suites, timeout=bench_timeout()), {
        s.name: len(s) for s in suites
    }


@pytest.fixture(scope="session")
def tip_campaign():
    """The TIP-style suite (subsampled in quick mode)."""
    suite = tip_suite()
    if bench_scale() == "quick":
        suite.problems = suite.problems[::9]
    return run_campaign([suite], timeout=bench_timeout()), {
        "TIP": len(suite)
    }
