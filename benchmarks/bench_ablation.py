"""Experiments A1-A3: ablations of the pipeline's design choices.

A1 — symmetry breaking in the model finder (least-number constraints on
constants): searching without it must still find the same-size models,
generally exploring at least as much.

A2 — the diseq encoding of Sec. 4.4: *without* it, clauses with
disequalities cannot be handed to the EUF model finder soundly; the
ablation quantifies what the encoding costs on problems that don't need
it and confirms it is required on ones that do (the finder would
otherwise report bogus models that fail the Herbrand check).

A3 — interleaving the counterexample search before model search: on
UNSAT problems the cex phase answers quickly; ablating it to model-search
only leaves the problem undecided (there is no finite model to find).
"""

import itertools

import pytest

from repro.chc.clauses import CHCSystem, Clause
from repro.chc.transform import (
    encode_diseq,
    normalize,
    preprocess,
    remove_selectors,
)
from repro.core.ringen import RInGen, RInGenConfig
from repro.mace.finder import find_model
from repro.problems import (
    diseq_zz_system,
    even_system,
    incdec_system,
    odd_unsat_system,
    z_neq_sz_system,
)


class TestA1SymmetryBreaking:
    def test_same_model_sizes(self, benchmark):
        prepared = preprocess(incdec_system())
        with_sb = find_model(prepared, symmetry_breaking=True)
        without_sb = find_model(prepared, symmetry_breaking=False)
        assert with_sb.model.size() == without_sb.model.size() == 3
        benchmark.pedantic(
            lambda: find_model(prepared, symmetry_breaking=True),
            rounds=3,
            iterations=1,
        )

    def test_search_without_symmetry_breaking(self, benchmark):
        prepared = preprocess(incdec_system())
        benchmark.pedantic(
            lambda: find_model(prepared, symmetry_breaking=False),
            rounds=3,
            iterations=1,
        )


class TestA2DiseqEncoding:
    def test_encoding_required_for_soundness(self, benchmark):
        """Without the Sec. 4.4 encoding, the finder sees no constraint at
        all where a disequality stood and accepts collapsed models; the
        encoded system correctly has *no* model (the system is UNSAT)."""
        system = z_neq_sz_system()
        # normalization alone already evaluates the ground disequality
        # here, so build the undecided variable form from Example 3
        from repro.logic.formulas import Not, Eq
        from repro.logic.terms import Var
        from repro.logic.adt import NAT, nat_system
        from repro.chc.clauses import BodyAtom
        from repro.logic.sorts import PredSymbol
        from repro.problems import s, z

        x = Var("x", NAT)
        p = PredSymbol("P", (NAT,))
        raw = CHCSystem(nat_system())
        raw.add(Clause(Not(Eq(x, s(x))), (BodyAtom(p, (x,)),), None, "q"))
        raw.add(Clause(Eq(x, z()), (), BodyAtom(p, (x,)), "base"))

        # the system is UNSAT over ADTs: x != S(x) always holds and P(Z)
        # is derivable.  With the full encoding the finder correctly
        # reports no finite model of the EUF side
        encoded = encode_diseq(normalize(raw))
        encoded_result = benchmark.pedantic(
            lambda: find_model(encoded, max_total_size=5),
            rounds=1,
            iterations=1,
        )
        assert encoded_result.model is None  # correctly UNSAT

        # ablation: keep the diseq *atoms* but drop the generating rules
        # of Sec. 4.4 — the finder then interprets diseq as empty and
        # produces a bogus model, demonstrating the rules are what ties
        # the uninterpreted symbol to actual disequality
        ablated = CHCSystem(encoded.adts, dict(encoded.predicates))
        for cl in encoded.clauses:
            if not cl.name.startswith("diseq-"):
                ablated.add(cl)
        ablated_result = find_model(ablated, max_total_size=4)
        assert ablated_result.model is not None  # bogus model without them

    def test_encoding_overhead(self, benchmark):
        # cost of the diseq rules on a problem that also solves without
        system = diseq_zz_system()
        benchmark.pedantic(
            lambda: find_model(preprocess(system)), rounds=3, iterations=1
        )


class TestA3CexInterleaving:
    def test_unsat_needs_cex_phase(self, benchmark):
        system = odd_unsat_system()
        with_cex = benchmark.pedantic(
            lambda: RInGen(RInGenConfig(timeout=10)).solve(system),
            rounds=1,
            iterations=1,
        )
        assert with_cex.is_unsat
        # ablation: skip the cex phase by zeroing its height budget
        config = RInGenConfig(timeout=3, cex_max_height=0, max_model_size=6)
        without_cex = RInGen(config).solve(system)
        assert not without_cex.is_unsat

    def test_cex_phase_cost_on_sat_problem(self, benchmark):
        # on SAT problems the cex phase is pure overhead; measure it
        from repro.core.cex import search_counterexample

        prepared = preprocess(even_system())
        benchmark.pedantic(
            lambda: search_counterexample(prepared, max_height=4),
            rounds=3,
            iterations=1,
        )
