"""Experiments E8/E9: the STLC case study and the 23 type-theory problems.

E8 — Sec. 5 reports the invariant for the ``(a -> b) -> a`` inhabitation
VC was "discovered ... in less than a second" by the finite-model engine;
our measured model-search time is benchmarked here (the end-to-end solve
adds preprocessing + verification).

E9 — Sec. 8, "Other experiments": 23 hand-written type-theory problems
"intractable for all the solvers, except the finite model finder".  We
run the regenerated suite and check exactly that pattern: the finite
model finder solves the classical-non-tautology fraction; the Elem and
SizeElem baselines solve none.
"""

import os

import pytest

from repro import solve
from repro.chc.transform import preprocess
from repro.mace.finder import find_model
from repro.solvers.elem import solve_elem
from repro.solvers.sizeelem import solve_sizeelem
from repro.stlc import stlc_problems, typecheck_vc

from conftest import bench_scale, write_artifact


def test_case_study_model_found_fast(benchmark):
    """E8: the finite-model phase alone is sub-second (paper: < 1 s)."""
    prepared = preprocess(typecheck_vc())
    result = benchmark.pedantic(
        lambda: find_model(prepared, max_total_size=8),
        rounds=3,
        iterations=1,
    )
    assert result.found
    assert result.model.size() == 6
    assert result.stats.elapsed < 5.0


def test_case_study_end_to_end(benchmark):
    result = benchmark.pedantic(
        lambda: solve(typecheck_vc(), timeout=60), rounds=1, iterations=1
    )
    assert result.is_sat
    assert result.details["model_size"] == 6


def test_stlc_suite(benchmark):
    """E9: only the finite-model engine makes progress on the suite."""
    problems = stlc_problems()
    if bench_scale() == "quick":
        # 4 per category keeps the quick run in seconds-per-problem land
        per_category: dict[str, int] = {}
        kept = []
        for p in problems:
            if per_category.get(p.category, 0) < 4:
                per_category[p.category] = per_category.get(p.category, 0) + 1
                kept.append(p)
        problems = kept

    lines = []
    fmf_sat = 0
    baseline_sat = 0
    for problem in problems:
        system = problem.system()
        r_fmf = solve(system, timeout=20)
        r_elem = solve_elem(problem.system(), timeout=2)
        r_size = solve_sizeelem(problem.system(), timeout=2)
        lines.append(
            f"{problem.name:<18} [{problem.category}] "
            f"fmf={r_fmf.status} elem={r_elem.status} size={r_size.status}"
        )
        if r_fmf.is_sat:
            fmf_sat += 1
            assert problem.expected == "sat", problem.name
        baseline_sat += int(r_elem.is_sat) + int(r_size.is_sat)
    text = "\n".join(lines)
    write_artifact("stlc_suite.txt", text)
    print("\n" + text)

    # the paper's observation, mechanized:
    non_taut = [p for p in problems if p.category == "non-tautology"]
    assert fmf_sat >= max(len(non_taut) - 1, 1)
    assert baseline_sat == 0

    benchmark.pedantic(
        lambda: solve(stlc_problems()[0].system(), timeout=20),
        rounds=1,
        iterations=1,
    )
