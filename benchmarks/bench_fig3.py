"""Experiment E7: Figure 3 — the expressiveness diagram, empirically.

Each of the five programs is run against the three representation-class
solvers; success must coincide with the paper's definability claims
(Props. 1-12).  This is the "amount of solved tasks correlates with
definability" experiment in miniature.
"""

import pytest

from repro import solve
from repro.solvers.elem import solve_elem
from repro.solvers.sizeelem import solve_sizeelem
from repro.theory.atlas import ATLAS, format_figure3

from conftest import write_artifact

TIMEOUTS = {"reg": 8.0, "elem": 8.0, "sizeelem": 12.0}


@pytest.fixture(scope="module")
def figure3_outcomes():
    outcomes = {}
    for name, entry in ATLAS.items():
        outcomes[name] = {
            "Reg": solve(entry.system_factory(), timeout=TIMEOUTS["reg"]).is_sat,
            "Elem": solve_elem(
                entry.system_factory(), timeout=TIMEOUTS["elem"]
            ).is_sat,
            "SizeElem": solve_sizeelem(
                entry.system_factory(), timeout=TIMEOUTS["sizeelem"]
            ).is_sat,
        }
    return outcomes


def test_figure3_matches_paper(benchmark, figure3_outcomes):
    benchmark.pedantic(format_figure3, rounds=1, iterations=1)
    lines = [format_figure3(), "", "measured:"]
    for name, entry in ATLAS.items():
        measured = figure3_outcomes[name]
        lines.append(f"  {name}: {measured}")
        assert measured["Reg"] == entry.in_reg, name
        assert measured["Elem"] == entry.in_elem, name
        assert measured["SizeElem"] == entry.in_sizeelem, name
    text = "\n".join(lines)
    write_artifact("figure3.txt", text)
    print("\n" + text)


def test_bench_even_reg(benchmark):
    from repro.problems import even_system

    result = benchmark.pedantic(
        lambda: solve(even_system(), timeout=10), rounds=3, iterations=1
    )
    assert result.is_sat


def test_bench_ltgt_sizeelem(benchmark):
    from repro.problems import ltgt_system

    result = benchmark.pedantic(
        lambda: solve_sizeelem(ltgt_system(), timeout=20),
        rounds=2,
        iterations=1,
    )
    assert result.is_sat


def test_bench_diag_elem(benchmark):
    from repro.problems import diag_system

    result = benchmark.pedantic(
        lambda: solve_elem(diag_system(), timeout=10), rounds=3, iterations=1
    )
    assert result.is_sat
