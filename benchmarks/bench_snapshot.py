"""Engine snapshot/restore: parity, warm-cache speedup, warm workers.

Three legs, all gated by ``benchmarks/smoke.sh``:

* **roundtrip**: every engine in a warmed pool is serialized, restored
  in-process, and re-driven over the family — the restored engine's
  verdicts must be identical to a cold run's;
* **warmcache**: the same campaign twice through a disk warm cache
  (``EnginePool(cache_dir=...)``): the second run must reproduce the
  first run's statuses exactly and finish at most 90% of the cold
  wall-clock (the cache carries clause databases, learned clauses,
  heuristic state and per-signature refutation cores across runs);
* **warmworkers**: a supervised, isolated, engine-sharing campaign with
  a fault plan that kills a worker mid-batch — the rescheduled
  remainder must ride a warm-started worker and the final verdicts
  must match an unfaulted in-process run.

The measurements land in ``BENCH_snapshot.json`` at the repo root.
Usable both as a script (``python benchmarks/bench_snapshot.py``, exit
code 1 on any gate failure) and as a pytest module.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro.benchgen.builders import nat_mod_system
from repro.benchgen.suite import Suite
from repro.chc.transform import preprocess
from repro.exec import ExecPolicy, ReproFaultPlan
from repro.harness.runner import run_campaign, task_id_for
from repro.mace import EnginePool, find_model
from repro.mace.finder import ModelFinder, _IncrementalEngine
from repro.problems import even_system, incdec_system, odd_unsat_system

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_snapshot.json"
)

PER_PROBLEM_TIMEOUT = 30.0
#: kills the worker on the second task of its signature batch, so the
#: first task's verdict has already shipped a snapshot for the group
FAULT_PLAN = "flaky@5x1"
#: the warm run must come in at or under this fraction of the cold run
WARM_SPEEDUP_GATE = 0.90


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def nat_mod_cases(scale: str) -> list[tuple[int, int, int]]:
    cases = [(2, 0, 1), (3, 0, 1), (3, 1, 2), (4, 1, 2), (5, 2, 3)]
    if scale == "full":
        cases += [(6, 1, 2), (7, 3, 4), (8, 2, 5)]
    return cases


def snapshot_suite(scale: str) -> Suite:
    suite = Suite("Snapshot")
    for m, r, c in nat_mod_cases(scale):
        suite.add(
            f"nat-mod{m}-r{r}-c{c}",
            "nat_mod",
            (lambda m=m, r=r, c=c: nat_mod_system(m, r, c)),
            "sat",
        )
    return suite


def fault_suite() -> Suite:
    """Three repeating signature families (batches of >= 3 tasks)."""
    suite = Suite("WarmFault")
    factories = [even_system, incdec_system, odd_unsat_system]
    expected = ["sat", "sat", "unsat"]
    for i in range(10):
        suite.add(f"p{i}", "fam", factories[i % 3], expected[i % 3])
    return suite


def _verdicts(campaign) -> dict[str, tuple[str, bool]]:
    return {
        task_id_for(r.problem, r.solver): (r.status.value, r.correct)
        for r in campaign.records
    }


def leg_roundtrip(scale: str) -> dict:
    """Serialize, restore, re-drive: statuses identical to cold runs."""
    pool = EnginePool()
    cases = nat_mod_cases(scale)
    for m, r, c in cases[: len(cases) // 2]:
        finder = pool.finder(preprocess(nat_mod_system(m, r, c)))
        finder.search()
        pool.release(finder)
    engine = next(iter(pool._engines.values())).engine
    snap = engine.snapshot()
    restored = _IncrementalEngine.restore(snap)
    agreed = 0
    for m, r, c in cases:
        prepared = preprocess(nat_mod_system(m, r, c))
        cold = find_model(prepared)
        warm = ModelFinder(prepared, engine=restored).search()
        if cold.found != warm.found:
            break
        if warm.found and not warm.model.satisfies(prepared):
            break
        agreed += 1
    import pickle

    return {
        "problems": len(cases),
        "agreed": agreed,
        "parity": agreed == len(cases),
        "snapshot_bytes": len(
            pickle.dumps(snap, pickle.HIGHEST_PROTOCOL)
        ),
        "snapshot_groups": len(snap["groups"]),
    }


def leg_warmcache(scale: str, cache_root: pathlib.Path) -> dict:
    """Cold campaign populating the cache, warm campaign consuming it."""
    cache = cache_root / "engines"
    suite = snapshot_suite(scale)

    start = time.monotonic()
    cold = run_campaign(
        [suite],
        solvers=["ringen"],
        timeout=PER_PROBLEM_TIMEOUT,
        share_engines=True,
        engine_cache_dir=str(cache),
    )
    cold_time = time.monotonic() - start

    start = time.monotonic()
    warm = run_campaign(
        [suite],
        solvers=["ringen"],
        timeout=PER_PROBLEM_TIMEOUT,
        share_engines=True,
        engine_cache_dir=str(cache),
    )
    warm_time = time.monotonic() - start

    return {
        "problems": len(list(suite)),
        "cold_time": cold_time,
        "warm_time": warm_time,
        "speedup_gate": WARM_SPEEDUP_GATE,
        "parity": _verdicts(cold) == _verdicts(warm),
        "fast_enough": warm_time <= WARM_SPEEDUP_GATE * cold_time,
        "cold_pool": cold.pool_stats,
        "warm_pool": warm.pool_stats,
    }


def leg_warmworkers() -> dict:
    """Worker death mid-batch: warm reschedule, unchanged verdicts."""
    suite = fault_suite()
    reference = run_campaign(
        [suite],
        solvers=["ringen"],
        timeout=PER_PROBLEM_TIMEOUT,
        share_engines=True,
    )
    plan = ReproFaultPlan.parse(FAULT_PLAN)
    faulted = run_campaign(
        [suite],
        solvers=["ringen"],
        timeout=PER_PROBLEM_TIMEOUT,
        share_engines=True,
        policy=ExecPolicy(
            isolate=True, fault_plan=plan, backoff_base=0.01
        ),
    )
    return {
        "problems": len(list(suite)),
        "fault_plan": FAULT_PLAN,
        "parity": _verdicts(faulted) == _verdicts(reference),
        "workers_warm_started": faulted.exec_stats[
            "workers_warm_started"
        ],
        "snapshots_collected": faulted.exec_stats["snapshots_collected"],
        "retries": faulted.exec_stats["retries"],
    }


def run_snapshot_bench(cache_root=None) -> dict:
    import tempfile

    scale = bench_scale()
    if cache_root is None:
        cache_root = pathlib.Path(tempfile.mkdtemp(prefix="bench-snap-"))
    report = {
        "scale": scale,
        "roundtrip": leg_roundtrip(scale),
        "warmcache": leg_warmcache(scale, pathlib.Path(cache_root)),
        "warmworkers": leg_warmworkers(),
    }
    report["ok"] = (
        report["roundtrip"]["parity"]
        and report["warmcache"]["parity"]
        and report["warmcache"]["fast_enough"]
        and report["warmworkers"]["parity"]
        and report["warmworkers"]["workers_warm_started"] >= 1
    )
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_snapshot_bench(tmp_path):
    report = run_snapshot_bench(cache_root=tmp_path)
    assert report["roundtrip"]["parity"], report["roundtrip"]
    assert report["warmcache"]["parity"], report["warmcache"]
    assert report["warmcache"]["fast_enough"], report["warmcache"]
    assert report["warmworkers"]["parity"], report["warmworkers"]
    assert report["warmworkers"]["workers_warm_started"] >= 1, (
        report["warmworkers"]
    )


def main() -> int:
    report = run_snapshot_bench()
    print(json.dumps(report, indent=2))
    print(f"artifact: {ARTIFACT}")
    if not report["ok"]:
        print("FAIL: snapshot gate (parity or warm speedup) violated")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
