"""Experiment E6: Figure 6 — sizes of the finite models found.

The paper's histogram shows every model found during the evaluation has
total sort cardinality between 3 and 12, concentrated at the small end
(the x-axis is the sum of all sort cardinalities).  We collect the same
statistic from RInGen's SAT answers over the De Angelis campaign and
check the shape: all sizes small, mass at the minimum sizes.
"""

import pytest

from repro.harness import figure6_data, format_histogram

from conftest import write_artifact


def test_figure6_model_sizes(benchmark, adtbench_campaign):
    campaign, _ = adtbench_campaign
    histogram = benchmark.pedantic(
        lambda: figure6_data(campaign), rounds=1, iterations=1
    )
    text = format_histogram(
        histogram, title="Figure 6: finite model sizes (sum of sort"
        " cardinalities)"
    )
    write_artifact("figure6.txt", text)
    print("\n" + text)

    assert histogram, "no models found — campaign misconfigured"
    sizes = sorted(histogram)
    # paper shape: every model small (their x-axis tops out at 12)
    assert sizes[0] >= 2
    assert sizes[-1] <= 12
    # mass concentrated at the small end
    small_mass = sum(c for s, c in histogram.items() if s <= 6)
    assert small_mass >= sum(histogram.values()) * 0.5


def test_bench_model_size_extraction(benchmark, adtbench_campaign):
    campaign, _ = adtbench_campaign
    benchmark(lambda: figure6_data(campaign))


def test_bench_single_model_search(benchmark):
    """The raw finite-model search on the paper's motivating example."""
    from repro.chc.transform import preprocess
    from repro.mace.finder import find_model
    from repro.problems import even_system

    prepared = preprocess(even_system())
    result = benchmark(lambda: find_model(prepared, max_total_size=6))
    assert result.found
    assert result.model.size() == 2
