"""Observability overhead + fidelity: tracing must be free when off.

Runs one quick campaign (the three tiny paper systems plus the
``nat_mod`` family) three ways:

* **baseline**: observability off — the plain fast path;
* **disabled**: observability off again — every instrumentation site is
  compiled in and guarded (one attribute load + branch per call site),
  so this leg re-measures the exact same path and the gate holds the
  pair within 5% of each other: if the guards ever leak work into the
  disabled path, this is where it shows;
* **enabled**: file-backed tracer + metrics registry on, verdicts must
  be identical and the produced trace must be well-formed (unique span
  ids, resolvable parents, expected span names, loadable Chrome
  export).

Both off legs take the best of ``REPEATS`` runs so scheduler noise does
not flap the 5% gate.  The measurements land in ``BENCH_obs.json`` at
the repo root; ``benchmarks/smoke.sh`` fails on verdict divergence, a
malformed trace, or disabled-path overhead beyond the budget.

Usable both as a script (``python benchmarks/bench_obs.py``, exit code
1 on disagreement) and as a pytest module (parity and trace fidelity
only — wall-clock gates stay in smoke.sh where reruns are cheap).
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
import time

from repro.benchgen.builders import nat_mod_system
from repro.benchgen.suite import Suite
from repro.harness.runner import run_campaign, task_id_for
from repro.obs import runtime as obs_runtime
from repro.obs.tracer import load_trace, to_chrome
from repro.problems import even_system, incdec_system, odd_unsat_system

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_obs.json"
)

PER_PROBLEM_TIMEOUT = 30.0
REPEATS = 2

#: span names a traced campaign must contain (the hierarchy's spine;
#: analyze/minimize aggregates appear only when the solver backtracks)
REQUIRED_SPANS = {"campaign", "task", "solve", "vector", "propagate"}


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def obs_suite() -> Suite:
    suite = Suite("Obs")
    suite.add("even", "parity", even_system, "sat")
    suite.add("incdec", "offset", incdec_system, "sat")
    suite.add("broken", "broken", odd_unsat_system, "unsat")
    for m in (2, 3, 4):
        for r, c in ((0, 1), (1, 2)):
            if c % m == 0:
                continue
            suite.add(
                f"nat-mod{m}-r{r}-c{c}",
                "nat_mod",
                (lambda m=m, r=r, c=c: nat_mod_system(m, r, c)),
                "sat",
            )
    return suite


def _verdicts(campaign) -> dict[str, tuple[str, bool]]:
    return {
        task_id_for(r.problem, r.solver): (r.status.value, r.correct)
        for r in campaign.records
    }


def _measure() -> tuple[dict, float]:
    start = time.monotonic()
    campaign = run_campaign(
        [obs_suite()], solvers=["ringen"], timeout=PER_PROBLEM_TIMEOUT
    )
    return _verdicts(campaign), time.monotonic() - start


def _best_of(n: int) -> tuple[dict, float]:
    verdicts, best = _measure()
    for _ in range(n - 1):
        again, elapsed = _measure()
        assert again == verdicts, "obs-off reruns must agree"
        best = min(best, elapsed)
    return verdicts, best


def _validate_trace(trace_path: str) -> dict:
    records = load_trace(trace_path)
    ids = [r["id"] for r in records]
    known = set(ids)
    names = {r["name"] for r in records}
    chrome = to_chrome(records)
    problems = []
    if len(known) != len(ids):
        problems.append("duplicate span ids")
    if not all(r["parent"] is None or r["parent"] in known for r in records):
        problems.append("dangling parent ids")
    missing = REQUIRED_SPANS - names
    if missing:
        problems.append(f"missing span names: {sorted(missing)}")
    if len(chrome["traceEvents"]) != len(records):
        problems.append("chrome export dropped events")
    return {
        "trace_valid": not problems,
        "trace_problems": problems,
        "trace_spans": len(records),
        "span_names": sorted(names),
        "chrome_events": len(chrome["traceEvents"]),
    }


def run_obs_ablation() -> dict:
    obs_runtime.reset()
    baseline_verdicts, baseline_time = _best_of(REPEATS)
    disabled_verdicts, disabled_time = _best_of(REPEATS)

    with tempfile.TemporaryDirectory(prefix="bench_obs_") as tmp:
        trace_path = os.path.join(tmp, "trace.jsonl")
        obs_runtime.configure(trace_path=trace_path, metrics=True)
        start = time.monotonic()
        enabled_campaign = run_campaign(
            [obs_suite()], solvers=["ringen"], timeout=PER_PROBLEM_TIMEOUT
        )
        enabled_time = time.monotonic() - start
        metrics_snap = obs_runtime.METRICS.snapshot()
        obs_runtime.reset()  # closes the tracer; the file is whole
        trace_report = _validate_trace(trace_path)
    enabled_verdicts = _verdicts(enabled_campaign)

    counters = metrics_snap["counters"]
    totals = {
        "problems": len(baseline_verdicts),
        "baseline_time": baseline_time,
        "disabled_time": disabled_time,
        "enabled_time": enabled_time,
        "disabled_overhead": (
            disabled_time / baseline_time if baseline_time > 0 else 1.0
        ),
        "verdict_parity": (
            disabled_verdicts == baseline_verdicts
            and enabled_verdicts == baseline_verdicts
        ),
        "metrics_have_phases": any(
            k.startswith("phase.") for k in counters
        ),
        "metrics_have_sat": any(k.startswith("sat.") for k in counters),
        "task_elapsed_count": (
            metrics_snap["histograms"]
            .get("task.elapsed", {})
            .get("count", 0)
        ),
        **trace_report,
    }
    report = {
        "scale": bench_scale(),
        "repeats": REPEATS,
        "verdicts": {
            task: list(verdict)
            for task, verdict in baseline_verdicts.items()
        },
        "totals": totals,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_obs_ablation():
    """Obs on == obs off verdicts; traces well-formed; metrics populated."""
    report = run_obs_ablation()
    totals = report["totals"]
    assert totals["verdict_parity"], report
    assert totals["trace_valid"], totals["trace_problems"]
    assert totals["trace_spans"] > 0, totals
    assert totals["metrics_have_phases"], totals
    assert totals["metrics_have_sat"], totals
    assert totals["task_elapsed_count"] == totals["problems"], totals


def main() -> int:
    report = run_obs_ablation()
    totals = report["totals"]
    print(json.dumps(totals, indent=2))
    print(f"artifact: {ARTIFACT}")
    if not totals["verdict_parity"]:
        print("FAIL: verdicts changed with observability enabled")
        return 1
    if not totals["trace_valid"]:
        print(f"FAIL: malformed trace: {totals['trace_problems']}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
