"""Gate: speculative parallel size sweeps vs. the sequential sweep.

Runs the STLC classical-only suite (uninhabited goals with no small
regular invariant: the sweep refutes every candidate vector up to the
bound, the workload the shard portfolio exists for) three ways —
sequential :class:`ModelFinder` (the pre-PR baseline and the exact path
``RInGenConfig(sweep_shards=1)`` takes), a one-shard portfolio, and a
two-shard portfolio — and checks:

* **verdict parity**: found/complete/model_size identical across all
  three (the commit-in-sweep-order construction, measured);
* **speedup**: the 2-shard portfolio is >= 10% faster than the 1-shard
  portfolio in wall clock;
* **speculation is real**: ``vectors_speculated`` and
  ``cores_broadcast`` are both positive, and at least one broadcast
  core pruned a sibling shard's queue (``speculative_pruned``);
* **no tax when disabled**: the 1-shard portfolio stays within 5% of
  the sequential baseline (plus a small absolute slack for timer
  noise) — enabling the machinery must not slow anyone who doesn't
  ask for it.

The measurements are written to ``BENCH_parallel.json`` at the repo
root; ``benchmarks/smoke.sh`` runs the quick scale as gate 8.

Usable both as a script (``python benchmarks/bench_parallel.py``, exit
code 1 on a failed gate) and as a pytest module.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro.chc.transform import preprocess
from repro.mace.finder import ModelFinder
from repro.mace.parallel import ParallelModelFinder
from repro.stlc.problems import stlc_problems

ARTIFACT = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_parallel.json"
)

#: sweep bound: every classical-only goal is refuted vector by vector
#: up to this total size — deep enough that solving dominates the
#: portfolio's fork/restore overhead, shallow enough for CI
MAX_TOTAL_SIZE = 7

SPEEDUP_FLOOR = 1.10  # 2 shards must beat 1 shard by >= 10%
TAX_FACTOR = 1.05  # 1 shard must stay within 5% of sequential...
TAX_SLACK = 0.25  # ...plus absolute seconds of timer-noise slack


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


def suite():
    problems = [
        p for p in stlc_problems() if p.category == "classical-only"
    ]
    if bench_scale() != "full":
        return [(p.name, p, MAX_TOTAL_SIZE) for p in problems]
    # full scale additionally sweeps one size deeper (8x the work)
    return [(p.name, p, MAX_TOTAL_SIZE) for p in problems] + [
        (f"{p.name}-deep", p, MAX_TOTAL_SIZE + 1) for p in problems[:1]
    ]


def _verdict(result) -> dict:
    return {
        "found": result.found,
        "complete": result.complete,
        "model_size": result.stats.model_size,
    }


def _measure(prepared, shards: int, max_total: int) -> dict:
    start = time.monotonic()
    if shards == 0:  # the sequential baseline
        result = ModelFinder(prepared, max_total_size=max_total).search()
    else:
        result = ParallelModelFinder(
            prepared, sweep_shards=shards, max_total_size=max_total
        ).search()
    elapsed = time.monotonic() - start
    row = _verdict(result)
    row["time"] = elapsed
    stats = result.stats
    row["vectors_speculated"] = stats.vectors_speculated
    row["cores_broadcast"] = stats.cores_broadcast
    row["speculative_pruned"] = stats.speculative_pruned
    row["shard_restarts"] = stats.shard_restarts
    return row


def run_gate() -> dict:
    rows = []
    for name, problem, max_total in suite():
        prepared = preprocess(problem.system())
        seq = _measure(prepared, 0, max_total)
        one = _measure(prepared, 1, max_total)
        two = _measure(prepared, 2, max_total)
        rows.append(
            {
                "problem": name,
                "max_total_size": max_total,
                "sequential": seq,
                "shards1": one,
                "shards2": two,
                "parity": (
                    _verdict_of(seq) == _verdict_of(one) == _verdict_of(two)
                ),
            }
        )
    seq_time = sum(r["sequential"]["time"] for r in rows)
    one_time = sum(r["shards1"]["time"] for r in rows)
    two_time = sum(r["shards2"]["time"] for r in rows)
    totals = {
        "sequential_time": seq_time,
        "shards1_time": one_time,
        "shards2_time": two_time,
        "speedup_vs_shards1": one_time / two_time if two_time else 0.0,
        "vectors_speculated": sum(
            r["shards2"]["vectors_speculated"] for r in rows
        ),
        "cores_broadcast": sum(
            r["shards2"]["cores_broadcast"] for r in rows
        ),
        "speculative_pruned": sum(
            r["shards2"]["speculative_pruned"] for r in rows
        ),
        "all_parity": all(r["parity"] for r in rows),
    }
    gates = {
        "parity": totals["all_parity"],
        "speedup": totals["speedup_vs_shards1"] >= SPEEDUP_FLOOR,
        "speculation": totals["vectors_speculated"] > 0
        and totals["cores_broadcast"] > 0,
        "queue_pruned": totals["speculative_pruned"] > 0,
        "no_tax_disabled": not (
            one_time > TAX_FACTOR * seq_time + TAX_SLACK
        ),
    }
    report = {
        "scale": bench_scale(),
        "problems": rows,
        "totals": totals,
        "gates": gates,
    }
    ARTIFACT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def _verdict_of(row: dict) -> tuple:
    return (row["found"], row["complete"], row["model_size"])


def test_parallel_gate():
    """All five gates hold on the quick suite."""
    report = run_gate()
    assert report["gates"]["parity"], report["problems"]
    assert report["gates"]["speculation"], report["totals"]
    assert report["gates"]["queue_pruned"], report["totals"]
    assert report["gates"]["no_tax_disabled"], report["totals"]
    assert report["gates"]["speedup"], report["totals"]


def main() -> int:
    report = run_gate()
    print(json.dumps(report["totals"], indent=2))
    print(json.dumps(report["gates"], indent=2))
    print(f"artifact: {ARTIFACT}")
    if not all(report["gates"].values()):
        failed = [k for k, ok in report["gates"].items() if not ok]
        print(f"FAIL: parallel sweep gate(s): {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
