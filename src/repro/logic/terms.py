"""First-order terms: variables and function applications.

Terms are immutable trees.  Ground terms double as elements of the Herbrand
universe (the paper's :math:`|\\mathcal{H}|_\\sigma`), so the whole pipeline
— CHC semantics, tree-automata runs, pumping — operates on the same
representation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Optional, Union

from repro.logic.sorts import FuncSymbol, Sort


class TermError(ValueError):
    """Raised on ill-sorted term construction or traversal."""


@dataclass(frozen=True)
class Var:
    """A sorted first-order variable."""

    name: str
    sort: Sort

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var({self.name!r}, {self.sort.name!r})"


class App:
    """An application ``f(t1, ..., tn)`` of a function symbol to terms.

    Sort checking happens at construction time.  Hash and height are cached
    because terms are shared heavily (Herbrand enumeration, automata runs).
    """

    __slots__ = ("func", "args", "_hash", "_height", "_size", "_ground")

    def __init__(self, func: FuncSymbol, args: tuple["Term", ...] = ()):
        if len(args) != func.arity:
            raise TermError(
                f"{func.name} expects {func.arity} arguments, got {len(args)}"
            )
        for expected, arg in zip(func.arg_sorts, args):
            if term_sort(arg) != expected:
                raise TermError(
                    f"argument {arg} of {func.name} has sort "
                    f"{term_sort(arg)}, expected {expected}"
                )
        object.__setattr__(self, "func", func)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "_hash", hash((func, self.args)))
        object.__setattr__(
            self, "_height", 1 + max((height(a) for a in args), default=0)
        )
        object.__setattr__(self, "_size", 1 + sum(size(a) for a in args))
        object.__setattr__(self, "_ground", all(is_ground(a) for a in args))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("App instances are immutable")

    def __reduce__(self):
        # slots + the raising __setattr__ break default pickling;
        # rebuilding through the constructor revalidates sorts and
        # recomputes the caches (terms travel in engine snapshots)
        return (App, (self.func, self.args))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, App):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.func == other.func
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def sort(self) -> Sort:
        return self.func.result_sort

    def __str__(self) -> str:
        if not self.args:
            return self.func.name
        return f"{self.func.name}({', '.join(str(a) for a in self.args)})"

    def __repr__(self) -> str:
        return f"App({self.func.name!r}, {self.args!r})"


Term = Union[Var, App]
Substitution = Mapping[Var, Term]


def term_sort(term: Term) -> Sort:
    """The sort of a term."""
    return term.sort


def is_ground(term: Term) -> bool:
    """Whether a term contains no variables."""
    if isinstance(term, Var):
        return False
    return term._ground


def height(term: Term) -> int:
    """Height per the paper: a constant has height 1, a variable height 0."""
    if isinstance(term, Var):
        return 0
    return term._height


def size(term: Term) -> int:
    """Number of constructor occurrences (the ``size`` of Sec. 6.3)."""
    if isinstance(term, Var):
        return 0
    return term._size


def variables(term: Term) -> set[Var]:
    """The set of variables occurring in a term."""
    out: set[Var] = set()
    _collect_vars(term, out)
    return out


def _collect_vars(term: Term, out: set[Var]) -> None:
    if isinstance(term, Var):
        out.add(term)
    else:
        for arg in term.args:
            _collect_vars(arg, out)


def subterms(term: Term) -> Iterator[Term]:
    """All subterms of a term, including the term itself (preorder)."""
    stack = [term]
    while stack:
        t = stack.pop()
        yield t
        if isinstance(t, App):
            stack.extend(reversed(t.args))


def occurs(var: Var, term: Term) -> bool:
    """Whether ``var`` occurs in ``term``."""
    return any(t == var for t in subterms(term) if isinstance(t, Var))


def substitute(term: Term, subst: Substitution) -> Term:
    """Apply a substitution to a term (simultaneous, capture-free)."""
    if isinstance(term, Var):
        return subst.get(term, term)
    if not term.args:
        return term
    new_args = tuple(substitute(a, subst) for a in term.args)
    if new_args == term.args:
        return term
    return App(term.func, new_args)


def compose(outer: Substitution, inner: Substitution) -> dict[Var, Term]:
    """Composition ``outer . inner``: apply ``inner`` first, then ``outer``."""
    result: dict[Var, Term] = {
        v: substitute(t, outer) for v, t in inner.items()
    }
    for v, t in outer.items():
        if v not in result:
            result[v] = t
    return result


def unify(
    pairs: list[tuple[Term, Term]],
    subst: Optional[dict[Var, Term]] = None,
) -> Optional[dict[Var, Term]]:
    """Most general unifier of a list of term pairs, or ``None``.

    Standard Robinson unification with occurs check.  Used by the equality
    elimination of Sec. 4 (Theorem 5's proof rewrites clauses "by the
    unification and substitution") and by the counterexample search.
    """
    subst = dict(subst) if subst else {}
    work = [(substitute(a, subst), substitute(b, subst)) for a, b in pairs]
    while work:
        left, right = work.pop()
        left = substitute(left, subst)
        right = substitute(right, subst)
        if left == right:
            continue
        if isinstance(left, Var):
            if occurs(left, right):
                return None
            _bind(subst, left, right)
            continue
        if isinstance(right, Var):
            if occurs(right, left):
                return None
            _bind(subst, right, left)
            continue
        if left.func != right.func:
            return None
        work.extend(zip(left.args, right.args))
    return subst


def _bind(subst: dict[Var, Term], var: Var, term: Term) -> None:
    for v in list(subst):
        subst[v] = substitute(subst[v], {var: term})
    subst[var] = term


def matches(pattern: Term, ground: Term) -> Optional[dict[Var, Term]]:
    """One-sided matching: a substitution with ``pattern[s] == ground``."""
    subst: dict[Var, Term] = {}
    work = [(pattern, ground)]
    while work:
        pat, g = work.pop()
        if isinstance(pat, Var):
            bound = subst.get(pat)
            if bound is None:
                subst[pat] = g
            elif bound != g:
                return None
            continue
        if isinstance(g, Var) or pat.func != g.func:
            return None
        work.extend(zip(pat.args, g.args))
    return subst


def rename_apart(
    terms: list[Term], taken: set[str], suffix: str = "_r"
) -> tuple[list[Term], dict[Var, Var]]:
    """Rename the variables of ``terms`` away from the names in ``taken``."""
    renaming: dict[Var, Var] = {}
    fresh = fresh_name_generator(taken, suffix)
    for term in terms:
        for v in variables(term):
            if v.name in taken and v not in renaming:
                renaming[v] = Var(next(fresh), v.sort)
    return [substitute(t, renaming) for t in terms], renaming


def fresh_name_generator(taken: set[str], prefix: str = "v") -> Iterator[str]:
    """Yields names not present in ``taken`` (and marks produced ones taken)."""
    for i in itertools.count():
        candidate = f"{prefix}{i}"
        if candidate not in taken:
            taken.add(candidate)
            yield candidate


def map_leaves(term: Term, fn: Callable[[Var], Term]) -> Term:
    """Rebuild ``term`` with every variable leaf replaced by ``fn(leaf)``."""
    if isinstance(term, Var):
        return fn(term)
    return App(term.func, tuple(map_leaves(a, fn) for a in term.args))


def count_symbol(term: Term, name: str) -> int:
    """Number of occurrences of the function symbol called ``name``."""
    return sum(
        1 for t in subterms(term) if isinstance(t, App) and t.func.name == name
    )
