"""Algebraic data types and Herbrand universes.

An ADT is a pair ``<C, sigma>`` of a sort and its constructors (Sec. 3).
This module bundles several ADTs into an :class:`ADTSystem` (the assertion
language's signature), enumerates Herbrand universes by height and by size,
evaluates ground facts (testers/selectors), and computes the size image
``S_sigma`` statistics needed by the SizeElem theory (Sec. 6.3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, Optional, Sequence

from repro.logic.sorts import FuncSymbol, Signature, Sort, SignatureError
from repro.logic.terms import App, Term


class ADTError(ValueError):
    """Raised on malformed ADT declarations."""


@dataclass(frozen=True)
class ADT:
    """A single algebraic data type ``<constructors, sort>``."""

    sort: Sort
    constructors: tuple[FuncSymbol, ...]

    def __post_init__(self) -> None:
        if not self.constructors:
            raise ADTError(f"ADT {self.sort} has no constructors")
        for c in self.constructors:
            if c.result_sort != self.sort:
                raise ADTError(
                    f"constructor {c.name} of {self.sort} has result sort "
                    f"{c.result_sort}"
                )
        names = [c.name for c in self.constructors]
        if len(set(names)) != len(names):
            raise ADTError(f"ADT {self.sort} has duplicate constructor names")

    @property
    def base_constructors(self) -> tuple[FuncSymbol, ...]:
        """Constructors with no argument of any ADT sort (recursion bases)."""
        return tuple(c for c in self.constructors if not c.arg_sorts)

    def constructor(self, name: str) -> FuncSymbol:
        for c in self.constructors:
            if c.name == name:
                return c
        raise ADTError(f"ADT {self.sort} has no constructor {name!r}")


class ADTSystem:
    """A fixed family of ADTs with pairwise distinct sorts (Sec. 3).

    Provides the assertion-language signature, Herbrand enumeration and the
    combinatorics (term counts by size/height) used by the expanding-sort
    check of Definition 5.
    """

    def __init__(self, adts: Sequence[ADT]):
        sorts = [a.sort for a in adts]
        if len(set(sorts)) != len(sorts):
            raise ADTError("ADT sorts must be pairwise distinct")
        self.adts: dict[Sort, ADT] = {a.sort: a for a in adts}
        self.signature = Signature()
        seen: dict[str, Sort] = {}
        for adt in adts:
            for c in adt.constructors:
                if c.name in seen:
                    raise ADTError(
                        f"constructor {c.name!r} declared in two ADTs"
                    )
                seen[c.name] = adt.sort
                for arg_sort in c.arg_sorts:
                    if not any(arg_sort == a.sort for a in adts):
                        raise ADTError(
                            f"constructor {c.name} refers to non-ADT sort "
                            f"{arg_sort}"
                        )
                self.signature.add_function(c)
        self._min_height: dict[Sort, int] = {}
        self._compute_min_heights()
        self._count_cache: dict[tuple[Sort, int], int] = {}
        self._terms_cache: dict[tuple[Sort, int], tuple[Term, ...]] = {}

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def sorts(self) -> list[Sort]:
        return list(self.adts)

    def adt(self, sort: Sort) -> ADT:
        try:
            return self.adts[sort]
        except KeyError:
            raise ADTError(f"{sort} is not an ADT sort") from None

    def constructors(self, sort: Sort) -> tuple[FuncSymbol, ...]:
        return self.adt(sort).constructors

    def constructor(self, name: str) -> FuncSymbol:
        try:
            return self.signature.function(name)
        except SignatureError:
            raise ADTError(f"unknown constructor {name!r}") from None

    def is_constructor(self, func: FuncSymbol) -> bool:
        return self.signature.functions.get(func.name) == func

    def _compute_min_heights(self) -> None:
        """Least height of a ground term per sort (checks inhabitation)."""
        best: dict[Sort, int] = {}
        changed = True
        while changed:
            changed = False
            for sort, adt in self.adts.items():
                for c in adt.constructors:
                    if all(s in best for s in c.arg_sorts):
                        h = 1 + max(
                            (best[s] for s in c.arg_sorts), default=0
                        )
                        if h < best.get(sort, h + 1):
                            best[sort] = h
                            changed = True
        for sort in self.adts:
            if sort not in best:
                raise ADTError(f"sort {sort} has no ground terms (uninhabited)")
        self._min_height = best

    def min_height(self, sort: Sort) -> int:
        return self._min_height[sort]

    def is_infinite_sort(self, sort: Sort) -> bool:
        """Whether the Herbrand universe of ``sort`` is infinite.

        True iff some sort reachable from ``sort`` through constructor
        arguments (including ``sort`` itself) lies on a dependency cycle.
        """
        reachable = self._reachable_sorts(sort)
        return any(s in self._reachable_sorts(s, strict=True) for s in reachable)

    def _reachable_sorts(self, sort: Sort, *, strict: bool = False) -> set[Sort]:
        """Sorts reachable from ``sort`` via constructor arguments.

        With ``strict=True`` the start sort is only included if reachable
        through at least one constructor step.
        """
        seen: set[Sort] = set() if strict else {sort}
        stack = [sort]
        while stack:
            s = stack.pop()
            for c in self.adts[s].constructors:
                for arg in c.arg_sorts:
                    if arg not in seen:
                        seen.add(arg)
                        stack.append(arg)
        return seen

    # ------------------------------------------------------------------
    # Herbrand enumeration
    # ------------------------------------------------------------------
    def terms_of_height(self, sort: Sort, h: int) -> tuple[Term, ...]:
        """All ground terms of ``sort`` with height exactly ``h`` (cached)."""
        key = (sort, h)
        cached = self._terms_cache.get(key)
        if cached is not None:
            return cached
        if h <= 0:
            result: tuple[Term, ...] = ()
        else:
            found: list[Term] = []
            for c in self.adts[sort].constructors:
                if c.arity == 0:
                    if h == 1:
                        found.append(App(c))
                    continue
                # at least one argument of height h-1, the rest < h
                pools = [
                    tuple(
                        itertools.chain.from_iterable(
                            self.terms_of_height(s, hh) for hh in range(1, h)
                        )
                    )
                    for s in c.arg_sorts
                ]
                exact = [self.terms_of_height(s, h - 1) for s in c.arg_sorts]
                for combo in itertools.product(*pools):
                    if any(
                        combo[i] in exact[i] for i in range(len(combo))
                    ):
                        found.append(App(c, combo))
            result = tuple(found)
        self._terms_cache[key] = result
        return result

    def terms_up_to_height(self, sort: Sort, h: int) -> list[Term]:
        """All ground terms of ``sort`` with height at most ``h``."""
        out: list[Term] = []
        for hh in range(1, h + 1):
            out.extend(self.terms_of_height(sort, hh))
        return out

    def iter_terms(self, sort: Sort, limit: Optional[int] = None) -> Iterator[Term]:
        """Ground terms of ``sort`` in non-decreasing height order."""
        produced = 0
        for h in itertools.count(1):
            layer = self.terms_of_height(sort, h)
            if not layer and h > max(self._min_height.values()) + 2:
                # heuristic stop for finite sorts: no terms at this height
                # nor at any larger one once every constructor saturates
                if all(
                    not self.terms_of_height(sort, h + d) for d in range(3)
                ):
                    return
            for t in layer:
                yield t
                produced += 1
                if limit is not None and produced >= limit:
                    return

    def count_terms_of_size(self, sort: Sort, k: int) -> int:
        """``|T^k_sigma|``: number of ground terms of ``sort`` with size k.

        Dynamic programming over the ADT declaration viewed as a grammar —
        the Parikh-image view of Hojjat & Rümmer used in Appendix B.2.
        """
        key = (sort, k)
        cached = self._count_cache.get(key)
        if cached is not None:
            return cached
        if k <= 0:
            result = 0
        else:
            result = 0
            for c in self.adts[sort].constructors:
                if c.arity == 0:
                    result += 1 if k == 1 else 0
                    continue
                result += self._count_products(tuple(c.arg_sorts), k - 1)
        self._count_cache[key] = result
        return result

    def _count_products(self, sorts: tuple[Sort, ...], total: int) -> int:
        if not sorts:
            return 1 if total == 0 else 0
        if len(sorts) == 1:
            return self.count_terms_of_size(sorts[0], total)
        head, rest = sorts[0], sorts[1:]
        acc = 0
        for k in range(1, total - len(rest) + 1):
            left = self.count_terms_of_size(head, k)
            if left:
                acc += left * self._count_products(rest, total - k)
        return acc

    def size_image(self, sort: Sort, bound: int) -> list[int]:
        """The set ``S_sigma`` of realizable term sizes up to ``bound``."""
        return [
            k for k in range(1, bound + 1) if self.count_terms_of_size(sort, k)
        ]

    def is_expanding_sort(self, sort: Sort, *, bound: int = 60, witness: int = 3) -> bool:
        """Heuristic check of Definition 5 (expanding sort).

        A sort is *expanding* if for every ``n`` there is ``b(sigma, n)``
        past which every non-empty size class has at least ``n`` members.
        We check that size classes, once non-empty beyond a prefix, grow
        without ever falling back to fewer than ``witness`` members —
        sufficient in practice for the ADTs of the paper (Example 7: ``Nat``
        is not expanding, ``List``/``Tree`` are).
        """
        counts = [self.count_terms_of_size(sort, k) for k in range(1, bound + 1)]
        nonempty = [c for c in counts[bound // 2 :] if c > 0]
        if not nonempty:
            return False
        return all(c >= witness for c in nonempty)

    # ------------------------------------------------------------------
    # ground evaluation helpers
    # ------------------------------------------------------------------
    def select(self, constructor_name: str, index: int, term: Term) -> Term:
        """Selector semantics: ``g_i(c(t_1..t_n)) = t_i`` (0-based index)."""
        if not isinstance(term, App) or term.func.name != constructor_name:
            raise ADTError(
                f"selector for {constructor_name} applied to {term}"
            )
        return term.args[index]

    def test(self, constructor_name: str, term: Term) -> bool:
        """Tester semantics: ``c?(t)`` iff top constructor of ``t`` is c."""
        return isinstance(term, App) and term.func.name == constructor_name


# ----------------------------------------------------------------------
# Ready-made ADT systems used throughout the paper
# ----------------------------------------------------------------------
NAT = Sort("Nat")
Z = FuncSymbol("Z", (), NAT)
S = FuncSymbol("S", (NAT,), NAT)

TREE = Sort("Tree")
LEAF = FuncSymbol("leaf", (), TREE)
NODE = FuncSymbol("node", (TREE, TREE), TREE)

NATLIST = Sort("NatList")
NIL = FuncSymbol("nil", (), NATLIST)
CONS = FuncSymbol("cons", (NAT, NATLIST), NATLIST)


def nat_system() -> ADTSystem:
    """Peano naturals: ``Nat ::= Z | S Nat`` (Example 1)."""
    return ADTSystem([ADT(NAT, (Z, S))])


def tree_system() -> ADTSystem:
    """Binary trees: ``Tree ::= leaf | node(Tree, Tree)`` (Example 5)."""
    return ADTSystem([ADT(TREE, (LEAF, NODE))])


def natlist_system() -> ADTSystem:
    """Lisp-style lists of naturals (Sec. 6.3's ``NatList``)."""
    return ADTSystem([ADT(NAT, (Z, S)), ADT(NATLIST, (NIL, CONS))])


def nat(n: int) -> Term:
    """The Peano numeral ``S^n(Z)``."""
    t: Term = App(Z)
    for _ in range(n):
        t = App(S, (t,))
    return t


def nat_value(term: Term) -> int:
    """Inverse of :func:`nat`: the integer denoted by a Peano numeral."""
    n = 0
    while isinstance(term, App) and term.func == S:
        n += 1
        term = term.args[0]
    if not (isinstance(term, App) and term.func == Z):
        raise ADTError(f"not a Peano numeral: {term}")
    return n


def natlist(values: Sequence[int]) -> Term:
    """The NatList ``cons(v0, cons(v1, ... nil))``."""
    t: Term = App(NIL)
    for v in reversed(values):
        t = App(CONS, (nat(v), t))
    return t
