"""Quantifier-free constraint formulas of the assertion language.

The assertion language of the paper (Sec. 3) has no predicate symbols other
than per-sort equality, so CHC constraints are boolean combinations of
equalities between terms.  We additionally carry tester atoms ``c?(t)``
(Sec. 4.5 / Appendix B) because verification conditions arriving from
front-ends may mention them before preprocessing removes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Union

from repro.logic.sorts import FuncSymbol, PredSymbol
from repro.logic.terms import Substitution, Term, Var, substitute, variables


class FormulaError(ValueError):
    """Raised on malformed formula construction."""


@dataclass(frozen=True)
class Eq:
    """Equality atom ``lhs = rhs`` (sorts must agree)."""

    lhs: Term
    rhs: Term

    def __post_init__(self) -> None:
        if self.lhs.sort != self.rhs.sort:
            raise FormulaError(
                f"ill-sorted equality {self.lhs} = {self.rhs}"
            )

    def __str__(self) -> str:
        return f"({self.lhs} = {self.rhs})"


@dataclass(frozen=True)
class Tester:
    """Tester atom ``c?(term)`` — true iff the top constructor is ``c``."""

    __test__ = False  # keep pytest from collecting this as a test class

    constructor: FuncSymbol
    term: Term

    def __post_init__(self) -> None:
        if self.term.sort != self.constructor.result_sort:
            raise FormulaError(
                f"tester {self.constructor.name}? applied to term of sort "
                f"{self.term.sort}"
            )

    def __str__(self) -> str:
        return f"{self.constructor.name}?({self.term})"


@dataclass(frozen=True)
class PredAtom:
    """An application of an (uninterpreted) predicate symbol to terms."""

    pred: PredSymbol
    args: tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.args) != self.pred.arity:
            raise FormulaError(
                f"{self.pred.name} expects {self.pred.arity} args, "
                f"got {len(self.args)}"
            )
        for expected, arg in zip(self.pred.arg_sorts, self.args):
            if arg.sort != expected:
                raise FormulaError(
                    f"argument {arg} of {self.pred.name} has sort "
                    f"{arg.sort}, expected {expected}"
                )

    def __str__(self) -> str:
        return f"{self.pred.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Not:
    operand: "Formula"

    def __str__(self) -> str:
        return f"~{self.operand}"


@dataclass(frozen=True)
class And:
    operands: tuple["Formula", ...]

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return "(" + " & ".join(str(f) for f in self.operands) + ")"


@dataclass(frozen=True)
class Or:
    operands: tuple["Formula", ...]

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return "(" + " | ".join(str(f) for f in self.operands) + ")"


Formula = Union[Eq, Tester, PredAtom, Not, And, Or]
Atom = Union[Eq, Tester, PredAtom]

TRUE: Formula = And(())
FALSE: Formula = Or(())


def conj(*formulas: Formula) -> Formula:
    """N-ary conjunction, flattening nested ``And`` and dropping ``TRUE``."""
    flat: list[Formula] = []
    for f in formulas:
        if isinstance(f, And):
            flat.extend(f.operands)
        elif f == FALSE:
            return FALSE
        else:
            flat.append(f)
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*formulas: Formula) -> Formula:
    """N-ary disjunction, flattening nested ``Or`` and dropping ``FALSE``."""
    flat: list[Formula] = []
    for f in formulas:
        if isinstance(f, Or):
            flat.extend(f.operands)
        elif f == TRUE:
            return TRUE
        else:
            flat.append(f)
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(formula: Formula) -> Formula:
    """Negation with double-negation elimination."""
    if isinstance(formula, Not):
        return formula.operand
    return Not(formula)


def diseq(lhs: Term, rhs: Term) -> Formula:
    """Disequality literal ``~(lhs = rhs)``."""
    return Not(Eq(lhs, rhs))


def formula_vars(formula: Formula) -> set[Var]:
    """Free variables of a quantifier-free formula."""
    out: set[Var] = set()
    for atom in atoms(formula):
        if isinstance(atom, Eq):
            out |= variables(atom.lhs) | variables(atom.rhs)
        elif isinstance(atom, Tester):
            out |= variables(atom.term)
        else:
            for arg in atom.args:
                out |= variables(arg)
    return out


def atoms(formula: Formula) -> Iterator[Atom]:
    """All atoms of a formula, ignoring polarity."""
    stack: list[Formula] = [formula]
    while stack:
        f = stack.pop()
        if isinstance(f, (Eq, Tester, PredAtom)):
            yield f
        elif isinstance(f, Not):
            stack.append(f.operand)
        else:
            stack.extend(f.operands)


def substitute_formula(formula: Formula, subst: Substitution) -> Formula:
    """Apply a term substitution throughout a formula."""
    if isinstance(formula, Eq):
        return Eq(substitute(formula.lhs, subst), substitute(formula.rhs, subst))
    if isinstance(formula, Tester):
        return Tester(formula.constructor, substitute(formula.term, subst))
    if isinstance(formula, PredAtom):
        return PredAtom(
            formula.pred, tuple(substitute(a, subst) for a in formula.args)
        )
    if isinstance(formula, Not):
        return Not(substitute_formula(formula.operand, subst))
    if isinstance(formula, And):
        return And(tuple(substitute_formula(f, subst) for f in formula.operands))
    return Or(tuple(substitute_formula(f, subst) for f in formula.operands))


def nnf(formula: Formula, *, negate: bool = False) -> Formula:
    """Negation normal form: negations pushed onto atoms."""
    if isinstance(formula, (Eq, Tester, PredAtom)):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return nnf(formula.operand, negate=not negate)
    if isinstance(formula, And):
        parts = tuple(nnf(f, negate=negate) for f in formula.operands)
        return Or(parts) if negate else And(parts)
    parts = tuple(nnf(f, negate=negate) for f in formula.operands)
    return And(parts) if negate else Or(parts)


def dnf(formula: Formula) -> list[list[Formula]]:
    """Disjunctive normal form as a list of conjuncts (lists of literals).

    The input is first converted to NNF.  Used when splitting CHC
    constraints into per-disjunct clauses (proof of Theorem 5).
    """
    return _dnf(nnf(formula))


def _dnf(formula: Formula) -> list[list[Formula]]:
    if isinstance(formula, (Eq, Tester, PredAtom, Not)):
        return [[formula]]
    if isinstance(formula, And):
        cubes: list[list[Formula]] = [[]]
        for operand in formula.operands:
            expansion = _dnf(operand)
            cubes = [cube + ext for cube in cubes for ext in expansion]
        return cubes
    result: list[list[Formula]] = []
    for operand in formula.operands:
        result.extend(_dnf(operand))
    return result


def literal_parts(literal: Formula) -> tuple[Atom, bool]:
    """Split a literal into ``(atom, positive?)``."""
    if isinstance(literal, Not):
        inner = literal.operand
        if not isinstance(inner, (Eq, Tester, PredAtom)):
            raise FormulaError(f"not a literal: {literal}")
        return inner, False
    if not isinstance(literal, (Eq, Tester, PredAtom)):
        raise FormulaError(f"not a literal: {literal}")
    return literal, True
