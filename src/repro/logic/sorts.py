"""Sorts and symbols of many-sorted first-order signatures.

This module provides the vocabulary layer of the reproduction: sorts,
function symbols (including ADT constructors, which are just uninterpreted
function symbols singled out by :mod:`repro.logic.adt`), and predicate
symbols.  Everything is immutable and hashable so that terms and formulas
built on top can be freely shared, used as dictionary keys and compared
structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass(frozen=True, order=True)
class Sort:
    """A sort (type) of a many-sorted signature.

    Two sorts are equal iff their names are equal; the paper fixes a single
    global namespace of sorts, which we follow.
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Sort({self.name!r})"


# The integer sort used by the SizeElem extension (Sec. 6.3).  It is not an
# ADT sort; ``size_sigma`` symbols map ADT sorts into it.
INT = Sort("Int")
BOOL = Sort("Bool")


@dataclass(frozen=True, order=True)
class FuncSymbol:
    """A function symbol with arity ``arg_sorts -> result_sort``.

    ADT constructors, selectors and the uninterpreted functions handed to
    the finite model finder are all ``FuncSymbol`` instances.
    """

    name: str
    arg_sorts: tuple[Sort, ...]
    result_sort: Sort

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    @property
    def is_constant(self) -> bool:
        return not self.arg_sorts

    def __str__(self) -> str:
        if self.is_constant:
            return f"{self.name} : {self.result_sort}"
        args = " x ".join(str(s) for s in self.arg_sorts)
        return f"{self.name} : {args} -> {self.result_sort}"

    def __repr__(self) -> str:
        return f"FuncSymbol({self.name!r}, {self.arg_sorts!r}, {self.result_sort!r})"


@dataclass(frozen=True, order=True)
class PredSymbol:
    """A predicate symbol with arity ``arg_sorts``.

    The uninterpreted symbols :math:`P_1, \\ldots, P_n` of a CHC system
    (Definition 1) and the fresh ``diseq`` symbols of Sec. 4.4 are
    ``PredSymbol`` instances.
    """

    name: str
    arg_sorts: tuple[Sort, ...]

    @property
    def arity(self) -> int:
        return len(self.arg_sorts)

    def __str__(self) -> str:
        args = " x ".join(str(s) for s in self.arg_sorts)
        return f"{self.name} : {args}" if self.arg_sorts else f"{self.name} : ()"

    def __repr__(self) -> str:
        return f"PredSymbol({self.name!r}, {self.arg_sorts!r})"


def func(name: str, arg_sorts: Sequence[Sort], result_sort: Sort) -> FuncSymbol:
    """Convenience constructor for :class:`FuncSymbol`."""
    return FuncSymbol(name, tuple(arg_sorts), result_sort)


def pred(name: str, arg_sorts: Sequence[Sort]) -> PredSymbol:
    """Convenience constructor for :class:`PredSymbol`."""
    return PredSymbol(name, tuple(arg_sorts))


class SignatureError(ValueError):
    """Raised on malformed signatures (duplicate symbols, unknown sorts)."""


@dataclass
class Signature:
    """A many-sorted signature ``<sorts, functions, predicates>``.

    Mirrors the paper's :math:`\\Sigma = \\langle \\Sigma_S, \\Sigma_F,
    \\Sigma_P \\rangle`.  Equality symbols are implicit: every sort carries
    its ``=_sigma`` with fixed semantics, so they are never listed in
    ``predicates``.
    """

    sorts: set[Sort] = field(default_factory=set)
    functions: dict[str, FuncSymbol] = field(default_factory=dict)
    predicates: dict[str, PredSymbol] = field(default_factory=dict)

    def add_sort(self, sort: Sort) -> Sort:
        self.sorts.add(sort)
        return sort

    def add_function(self, symbol: FuncSymbol) -> FuncSymbol:
        existing = self.functions.get(symbol.name)
        if existing is not None and existing != symbol:
            raise SignatureError(
                f"function symbol {symbol.name!r} redeclared with a different arity"
            )
        for sort in (*symbol.arg_sorts, symbol.result_sort):
            self.sorts.add(sort)
        self.functions[symbol.name] = symbol
        return symbol

    def add_predicate(self, symbol: PredSymbol) -> PredSymbol:
        existing = self.predicates.get(symbol.name)
        if existing is not None and existing != symbol:
            raise SignatureError(
                f"predicate symbol {symbol.name!r} redeclared with a different arity"
            )
        for sort in symbol.arg_sorts:
            self.sorts.add(sort)
        self.predicates[symbol.name] = symbol
        return symbol

    def function(self, name: str) -> FuncSymbol:
        try:
            return self.functions[name]
        except KeyError:
            raise SignatureError(f"unknown function symbol {name!r}") from None

    def predicate(self, name: str) -> PredSymbol:
        try:
            return self.predicates[name]
        except KeyError:
            raise SignatureError(f"unknown predicate symbol {name!r}") from None

    def functions_of_sort(self, sort: Sort) -> list[FuncSymbol]:
        """All function symbols whose result sort is ``sort``."""
        return [f for f in self.functions.values() if f.result_sort == sort]

    def merge(self, other: "Signature") -> "Signature":
        """A new signature containing the symbols of both operands."""
        merged = Signature()
        for sort in self.sorts | other.sorts:
            merged.add_sort(sort)
        for f in (*self.functions.values(), *other.functions.values()):
            merged.add_function(f)
        for p in (*self.predicates.values(), *other.predicates.values()):
            merged.add_predicate(p)
        return merged

    def copy(self) -> "Signature":
        sig = Signature()
        sig.sorts = set(self.sorts)
        sig.functions = dict(self.functions)
        sig.predicates = dict(self.predicates)
        return sig


def make_signature(
    functions: Iterable[FuncSymbol] = (),
    predicates: Iterable[PredSymbol] = (),
) -> Signature:
    """Build a :class:`Signature` from iterables of symbols."""
    sig = Signature()
    for f in functions:
        sig.add_function(f)
    for p in predicates:
        sig.add_predicate(p)
    return sig
