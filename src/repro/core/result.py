"""Result objects shared by every solver in the repo.

All solvers (RInGen and the baselines) answer with a :class:`SolveResult`:
``SAT`` carries an invariant witness (a regular model, an elementary
formula assignment, or a size-constrained assignment depending on the
solver's representation class), ``UNSAT`` carries a derivation of ⊥, and
``UNKNOWN`` records why the solver gave up — mirroring how the paper's
Table 1 counts SAT / UNSAT / timeouts per representation class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.chc.semantics import Derivation


class Status(enum.Enum):
    """Solver verdicts."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass
class SolveResult:
    """Outcome of one solver run on one CHC system."""

    status: Status
    solver: str = ""
    problem: str = ""
    elapsed: float = 0.0
    invariant: Optional[Any] = None
    refutation: Optional[Derivation] = None
    reason: str = ""
    details: dict[str, Any] = field(default_factory=dict)

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSAT

    @property
    def is_unknown(self) -> bool:
        return self.status is Status.UNKNOWN

    def __str__(self) -> str:
        base = f"{self.solver or 'solver'}: {self.status}"
        if self.problem:
            base = f"{self.problem}: {base}"
        if self.reason and self.is_unknown:
            base += f" ({self.reason})"
        return base


def sat(solver: str, invariant: Any, **details: Any) -> SolveResult:
    return SolveResult(
        Status.SAT, solver=solver, invariant=invariant, details=details
    )


def unsat(solver: str, refutation: Optional[Derivation], **details: Any) -> SolveResult:
    return SolveResult(
        Status.UNSAT, solver=solver, refutation=refutation, details=details
    )


def unknown(solver: str, reason: str, **details: Any) -> SolveResult:
    return SolveResult(
        Status.UNKNOWN, solver=solver, reason=reason, details=details
    )
