"""Regular Herbrand models: the invariants RInGen produces.

A regular model (Sec. 3, "Regular Herbrand Models") interprets every
uninterpreted predicate of the CHC system by the language of a DFTA; all
the automata share one transition table, so the model is simultaneously a
finite structure (the one the model finder returned) and a family of
automata (Theorem 1).  This class keeps both views and provides:

* Herbrand membership queries (is a ground tuple in the invariant?),
* exact verification against the preprocessed, constraint-free system
  (decidable: a finite-model check, Lemma 2),
* independent bounded verification against the *original* system over the
  Herbrand structure, via :func:`repro.chc.semantics.check_model_bounded`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.automata.dfta import DFTA
from repro.automata.from_model import model_to_automata
from repro.chc.clauses import CHCSystem
from repro.chc.semantics import ClauseViolation, check_model_bounded
from repro.chc.transform import diseq_symbol, is_diseq_symbol
from repro.logic.adt import ADTSystem
from repro.logic.sorts import PredSymbol
from repro.logic.terms import Term
from repro.mace.model import FiniteModel


@dataclass
class RegularModel:
    """A tuple of regular relations interpreting the CHC predicates."""

    adts: ADTSystem
    finite_model: FiniteModel
    automata: dict[PredSymbol, DFTA]

    @classmethod
    def from_finite_model(
        cls,
        adts: ADTSystem,
        model: FiniteModel,
        predicates: list[PredSymbol],
    ) -> "RegularModel":
        """Theorem 1 applied to every predicate of the system."""
        return cls(adts, model, model_to_automata(model, adts, predicates))

    # ------------------------------------------------------------------
    def member(self, pred: PredSymbol, terms: tuple[Term, ...]) -> bool:
        """Whether a ground tuple belongs to the invariant of ``pred``.

        Evaluated through the finite model (equivalent to the automaton
        run by Theorem 1, and considerably faster).
        """
        values = tuple(self.finite_model.eval_term(t) for t in terms)
        return self.finite_model.holds(pred, values)

    def interpretation(self, pred: PredSymbol, terms: tuple[Term, ...]) -> bool:
        """Interpretation callback for the bounded Herbrand verifier.

        ``diseq`` predicates introduced by preprocessing are given their
        *intended* semantics (true disequality): by Lemma 4, substituting
        the true disequality relation for any over-approximating
        interpretation preserves clause satisfaction.
        """
        if is_diseq_symbol(pred):
            return terms[0] != terms[1]
        return self.member(pred, terms)

    # ------------------------------------------------------------------
    def verify_exact(self, preprocessed: CHCSystem) -> bool:
        """Decidable inductiveness check on the constraint-free system.

        Evaluated over the constructor-reachable substructure of the
        finite model: quantification over reachable elements is exactly
        Herbrand quantification, so this check is sound and complete for
        Herbrand satisfaction of the induced relations — including the
        quantifier-alternating clauses of the STLC case study.
        """
        return self.finite_model.satisfies(preprocessed, herbrand=True)

    def verify_bounded(
        self, original: CHCSystem, *, max_height: int = 3
    ) -> Optional[ClauseViolation]:
        """Bounded Herbrand check of the *original* system (Theorem 5).

        Returns ``None`` when no violation exists among instantiations with
        terms up to ``max_height``.  A non-``None`` result would contradict
        Theorem 5 and indicates an implementation bug, which is why the
        test suite runs this after every SAT answer.

        Clauses with universal blocks are skipped here: bounded checking of
        an inner quantifier is not conclusive in either direction, and those
        clauses are already *exactly* verified by :meth:`verify_exact` over
        the reachable substructure.
        """
        filtered = CHCSystem(original.adts, dict(original.predicates))
        filtered.extend(
            cl
            for cl in original.clauses
            if not any(a.universal_vars for a in cl.body)
        )
        return check_model_bounded(
            filtered, self.interpretation, max_height=max_height
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [
            "regular model (finite-model view):",
            self.finite_model.describe(),
            "",
            "per-predicate automata:",
        ]
        for pred, auto in sorted(
            self.automata.items(), key=lambda kv: kv[0].name
        ):
            if is_diseq_symbol(pred):
                continue
            lines.append(f"-- {pred.name} --")
            lines.append(auto.describe())
        return "\n".join(lines)

    def size(self) -> int:
        """Sum of sort cardinalities (Figure 6's notion of model size)."""
        return self.finite_model.size()
