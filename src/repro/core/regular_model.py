"""Regular Herbrand models: the invariants RInGen produces.

A regular model (Sec. 3, "Regular Herbrand Models") interprets every
uninterpreted predicate of the CHC system by the language of a DFTA; all
the automata share one transition table, so the model is simultaneously a
finite structure (the one the model finder returned) and a family of
automata (Theorem 1).  This class keeps both views and provides:

* Herbrand membership queries (is a ground tuple in the invariant?),
* exact verification against the preprocessed, constraint-free system
  (decidable: a finite-model check, Lemma 2),
* independent bounded verification against the *original* system over the
  Herbrand structure, via :func:`repro.chc.semantics.check_model_bounded`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.automata.dfta import DFTA
from repro.automata.from_model import model_to_automata
from repro.automata.ops import (
    difference,
    intersection,
    language_key,
    language_universal,
    memoized,
)
from repro.chc.clauses import CHCSystem, Clause
from repro.chc.semantics import ClauseViolation, check_model_bounded
from repro.chc.transform import diseq_symbol, is_diseq_symbol
from repro.logic.adt import ADTSystem
from repro.logic.formulas import TRUE
from repro.logic.sorts import PredSymbol
from repro.logic.terms import Term, Var
from repro.mace.model import FiniteModel


@dataclass
class RegularModel:
    """A tuple of regular relations interpreting the CHC predicates."""

    adts: ADTSystem
    finite_model: FiniteModel
    automata: dict[PredSymbol, DFTA]

    @classmethod
    def from_finite_model(
        cls,
        adts: ADTSystem,
        model: FiniteModel,
        predicates: list[PredSymbol],
    ) -> "RegularModel":
        """Theorem 1 applied to every predicate of the system."""
        return cls(adts, model, model_to_automata(model, adts, predicates))

    # ------------------------------------------------------------------
    def member(self, pred: PredSymbol, terms: tuple[Term, ...]) -> bool:
        """Whether a ground tuple belongs to the invariant of ``pred``.

        Evaluated through the finite model (equivalent to the automaton
        run by Theorem 1, and considerably faster).
        """
        values = tuple(self.finite_model.eval_term(t) for t in terms)
        return self.finite_model.holds(pred, values)

    def interpretation(self, pred: PredSymbol, terms: tuple[Term, ...]) -> bool:
        """Interpretation callback for the bounded Herbrand verifier.

        ``diseq`` predicates introduced by preprocessing are given their
        *intended* semantics (true disequality): by Lemma 4, substituting
        the true disequality relation for any over-approximating
        interpretation preserves clause satisfaction.
        """
        if is_diseq_symbol(pred):
            return terms[0] != terms[1]
        return self.member(pred, terms)

    # ------------------------------------------------------------------
    def verify_exact(
        self, preprocessed: CHCSystem, *, use_automata: bool = True
    ) -> bool:
        """Decidable inductiveness check on the constraint-free system.

        Evaluated over the constructor-reachable substructure of the
        finite model: quantification over reachable elements is exactly
        Herbrand quantification, so this check is sound and complete for
        Herbrand satisfaction of the induced relations — including the
        quantifier-alternating clauses of the STLC case study.

        With ``use_automata`` (the default), clauses whose atoms all
        range over one shared tuple of distinct variables are decided on
        the automata view instead: ``P1(x̄) ∧ ... ∧ Pn(x̄) → Q(x̄)`` holds
        in the Herbrand interpretation iff ``⋂ L(A_Pi) ⊆ L(A_Q)``
        (Theorem 1), checked with the sparse product and the shared
        memoized emptiness cache.  The remaining clauses fall back to
        the finite-model evaluation.
        """
        if not use_automata:
            return self.finite_model.satisfies(preprocessed, herbrand=True)
        residual: list[Clause] = []
        for cl in preprocessed.clauses:
            verdict = self._clause_via_automata(cl)
            if verdict is False:
                return False
            if verdict is None:
                residual.append(cl)
        if not residual:
            return True
        filtered = CHCSystem(
            preprocessed.adts, dict(preprocessed.predicates)
        )
        filtered.extend(residual)
        return self.finite_model.satisfies(filtered, herbrand=True)

    def _clause_via_automata(self, cl: Clause) -> Optional[bool]:
        """Decide one clause via language inclusion, if it has the shape.

        Returns ``None`` when the clause does not fit (nested terms,
        universal blocks, mismatched or repeated variable tuples) and
        must be evaluated on the finite model instead.
        """
        if cl.constraint != TRUE:
            return None
        atoms = list(cl.body) + ([cl.head] if cl.head is not None else [])
        if not atoms:
            return False  # ⊥ ← ⊤: no interpretation satisfies it
        for atom in atoms:
            if getattr(atom, "universal_vars", ()):
                return None
            if not all(isinstance(t, Var) for t in atom.args):
                return None
        shared = atoms[0].args
        if len(set(shared)) != len(shared):
            return None
        if any(atom.args != shared for atom in atoms[1:]):
            return None
        try:
            body_autos = [self.automata[a.pred] for a in cl.body]
            head_auto = (
                self.automata[cl.head.pred] if cl.head is not None else None
            )
        except KeyError:
            return None
        if not body_autos:
            assert head_auto is not None
            return language_universal(head_auto)
        # the whole clause verdict is memoized on the operand
        # fingerprints, so a repeat query (the Herbrand-retry loop,
        # campaign re-verification) skips the product chain entirely
        key = (
            "clause",
            tuple(language_key(a) for a in body_autos),
            language_key(head_auto) if head_auto is not None else None,
        )

        def check() -> bool:
            inter = body_autos[0]
            for nxt in body_autos[1:]:
                inter = intersection(inter, nxt)
            if head_auto is None:
                return inter.is_empty()
            return difference(inter, head_auto).is_empty()

        return memoized(key, check)

    def verify_bounded(
        self, original: CHCSystem, *, max_height: int = 3
    ) -> Optional[ClauseViolation]:
        """Bounded Herbrand check of the *original* system (Theorem 5).

        Returns ``None`` when no violation exists among instantiations with
        terms up to ``max_height``.  A non-``None`` result would contradict
        Theorem 5 and indicates an implementation bug, which is why the
        test suite runs this after every SAT answer.

        Clauses with universal blocks are skipped here: bounded checking of
        an inner quantifier is not conclusive in either direction, and those
        clauses are already *exactly* verified by :meth:`verify_exact` over
        the reachable substructure.
        """
        filtered = CHCSystem(original.adts, dict(original.predicates))
        filtered.extend(
            cl
            for cl in original.clauses
            if not any(a.universal_vars for a in cl.body)
        )
        return check_model_bounded(
            filtered, self.interpretation, max_height=max_height
        )

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [
            "regular model (finite-model view):",
            self.finite_model.describe(),
            "",
            "per-predicate automata:",
        ]
        for pred, auto in sorted(
            self.automata.items(), key=lambda kv: kv[0].name
        ):
            if is_diseq_symbol(pred):
                continue
            lines.append(f"-- {pred.name} --")
            lines.append(auto.describe())
        return "\n".join(lines)

    def size(self) -> int:
        """Sum of sort cardinalities (Figure 6's notion of model size)."""
        return self.finite_model.size()
