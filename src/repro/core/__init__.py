"""RInGen core: the regular-invariant inference pipeline of Sec. 4."""

from repro.core.cex import CexSearchResult, search_counterexample
from repro.core.regular_model import RegularModel
from repro.core.result import SolveResult, Status, sat, unknown, unsat
from repro.core.ringen import RInGen, RInGenConfig, solve

__all__ = [
    "CexSearchResult",
    "RInGen",
    "RInGenConfig",
    "RegularModel",
    "SolveResult",
    "Status",
    "sat",
    "search_counterexample",
    "solve",
    "unknown",
    "unsat",
]
