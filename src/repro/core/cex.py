"""Counterexample search: deriving ⊥ from the clauses.

A CHC system is unsatisfiable iff ⊥ is derivable in its least model.  We
search bottom-up with an increasing term-height budget (iterative
deepening over :func:`repro.chc.semantics.bounded_least_fixpoint`); any
derivation found is a genuine refutation regardless of the budget, so this
component is what lets RInGen "find counterexamples more efficiently than
Eldarica" on the UNSAT portion of Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.chc.clauses import CHCSystem
from repro.chc.semantics import Derivation, bounded_least_fixpoint


@dataclass
class CexSearchResult:
    """Outcome of an iterative-deepening refutation search."""

    refutation: Optional[Derivation]
    max_height_tried: int
    elapsed: float

    @property
    def found(self) -> bool:
        return self.refutation is not None


def search_counterexample(
    system: CHCSystem,
    *,
    start_height: int = 2,
    max_height: int = 5,
    max_facts: int = 100_000,
    timeout: Optional[float] = None,
) -> CexSearchResult:
    """Iterative-deepening derivation search for ⊥.

    The ``system`` should be preprocessed (constraint-free): derivations
    through ``diseq`` atoms are sound because the diseq rules derive only
    truly-unequal pairs (Lemma 3).
    """
    start = time.monotonic()
    deadline = None if timeout is None else start + timeout
    tried = 0
    for h in range(start_height, max_height + 1):
        if deadline is not None and time.monotonic() > deadline:
            break
        tried = h
        result = bounded_least_fixpoint(
            system,
            max_height=h,
            max_facts=max_facts,
            deadline=deadline,
        )
        if result.refutation is not None:
            return CexSearchResult(
                result.refutation, tried, time.monotonic() - start
            )
        if result.saturated:
            # the bounded universe is closed under all clauses: raising
            # the height bound cannot add derivations
            break
    return CexSearchResult(None, tried, time.monotonic() - start)
