"""RInGen: regular invariant generation for CHCs over ADTs (Sec. 4, 8).

The end-to-end pipeline of Figure 1:

1. preprocess the system (selectors/testers out, equalities unified away,
   disequalities replaced by ``diseq`` atoms with their Horn rules),
2. run a quick bounded counterexample search — a derivation of ⊥ proves
   UNSAT outright,
3. hand the constraint-free clauses to the finite model finder; a finite
   model yields a regular Herbrand model of the original system
   (Theorems 1 and 5),
4. verify the model exactly against the preprocessed clauses (decidable)
   and, optionally, bounded-check it against the original system.

Answers: SAT with a :class:`~repro.core.regular_model.RegularModel`,
UNSAT with a derivation, or UNKNOWN on resource exhaustion — the three
outcomes tabulated in Table 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.chc.clauses import CHCSystem
from repro.chc.transform import is_diseq_symbol, preprocess
from repro.core.cex import search_counterexample
from repro.core.regular_model import RegularModel
from repro.core.result import SolveResult, Status, sat, unknown, unsat
from repro.mace.finder import FinderStats, ModelFinder
from repro.mace.pool import EnginePool
from repro.obs import runtime as obs_runtime


@dataclass
class RInGenConfig:
    """Tuning knobs of the pipeline (all have benchmark-friendly defaults).

    ``incremental`` selects the shared-state model-finding engine (one
    CDCL solver spanning the whole size sweep, clauses guarded by
    existence selectors); switching it off re-encodes every size vector
    from scratch — kept for the ablation benchmark.
    ``max_learned_clauses`` bounds the learned-clause database the
    incremental engine carries across size vectors.
    ``core_guided_sweep`` prunes the size sweep with the unsat cores of
    refuted vectors (skipping candidates a core already covers and
    stopping early on size-independent refutations); ``lbd_retention``
    makes the solver's learned-clause GC retain by LBD tier (glue ≤ 2
    kept unconditionally) instead of by length.  Both default on; the
    ``benchmarks/bench_core.py`` ablation gates that verdicts are
    identical without them.
    ``sat_backend`` names the SAT engine under the model finder
    (``"python"`` — the in-repo CDCL solver, always available — or
    ``"pysat"`` — the optional Glucose adapter; see
    :mod:`repro.sat.backend`), and ``core_minimization`` runs
    deletion-based minimization on every refuted vector's unsat core
    before the core prunes the size sweep; the
    ``benchmarks/bench_backend.py`` ablation gates both.
    ``automata_verification`` lets the exact Herbrand check decide
    variable-only clauses on the automata view (sparse products plus the
    memoized emptiness cache) instead of enumerating the finite model.

    Campaign knobs: ``engine_pool`` plugs a shared
    :class:`~repro.mace.pool.EnginePool` into the model-finding phase,
    so consecutive ``solve`` calls on signature-compatible systems reuse
    one incremental engine (batch mode for the harness; requires
    ``incremental``).  ``release_engines`` retires each problem's
    activation selector from the pool once its solve finishes — the
    default hygiene for long campaigns; switch it off to inspect
    contexts afterwards.  ``engine_cache_dir`` points at a disk-backed
    warm cache of serialized engines (see
    :class:`~repro.mace.pool.EnginePool`): without an injected pool, a
    solve builds a private pool over that cache, so repeated runs on
    the same signature start from the previous run's encodings, learned
    clauses and refutation bounds (the CLI's ``--warm-cache``).
    ``sweep_shards`` > 1 runs the finite-model size sweep as a
    speculative parallel portfolio (:mod:`repro.mace.parallel`):
    candidate size vectors are dispatched to that many engine shards,
    refutation cores are broadcast between them, and the lowest
    satisfiable vector in sweep order wins — statuses, winning vector
    and model size match the sequential sweep by construction.
    Requires ``incremental``; with a pool attached, shards warm-start
    from the pool's snapshot for the signature, but shard-side learning
    does not flow back into the pool.
    """

    max_model_size: int = 12
    cex_start_height: int = 2
    cex_max_height: int = 4
    cex_max_facts: int = 60_000
    max_conflicts_per_size: Optional[int] = 200_000
    symmetry_breaking: bool = True
    verify_height: int = 3
    verify: bool = True
    timeout: Optional[float] = None
    incremental: bool = True
    max_learned_clauses: Optional[int] = 20_000
    core_guided_sweep: bool = True
    lbd_retention: bool = True
    sat_backend: str = "python"
    core_minimization: bool = True
    automata_verification: bool = True
    engine_pool: Optional[EnginePool] = None
    release_engines: bool = True
    engine_cache_dir: Optional[str] = None
    sweep_shards: int = 1


class RInGen:
    """Regular Invariant Generator (the paper's tool, reimplemented)."""

    name = "ringen"

    def __init__(self, config: Optional[RInGenConfig] = None):
        self.config = config or RInGenConfig()

    def solve(self, system: CHCSystem) -> SolveResult:
        tracer = obs_runtime.TRACER
        if tracer is None:
            return self._solve_impl(system)
        span = tracer.begin(
            "solve", {"system": getattr(system, "name", None)}
        )
        try:
            result = self._solve_impl(system)
            span.args["status"] = result.status.value
            return result
        finally:
            tracer.end(span)

    def _solve_impl(self, system: CHCSystem) -> SolveResult:
        start = time.monotonic()
        cfg = self.config
        deadline = None if cfg.timeout is None else start + cfg.timeout

        prepared = preprocess(system)

        # Phase 1: bounded refutation search (sound UNSAT answers).  The
        # searcher cannot refute through universal-block queries (see
        # repro.chc.semantics), so when every query carries a block the
        # phase is skipped entirely.
        refutable = any(
            not any(a.universal_vars for a in cl.body)
            for cl in prepared.queries
        )
        if refutable:
            cex_budget = None
            if cfg.timeout is not None:
                cex_budget = max(cfg.timeout * 0.3, 0.05)
            cex = search_counterexample(
                prepared,
                start_height=cfg.cex_start_height,
                max_height=cfg.cex_max_height,
                max_facts=cfg.cex_max_facts,
                timeout=cex_budget,
            )
            if cex.found:
                result = unsat(self.name, cex.refutation)
                result.elapsed = time.monotonic() - start
                result.details["cex_height"] = cex.max_height_tried
                return result

        # Phase 2: finite model search.  The SAT encoding quantifies
        # existential witnesses (universal blocks in bodies) over the full
        # domain, while Herbrand satisfaction quantifies over the
        # constructor-reachable substructure only; a found model is
        # therefore re-checked exactly and, if it fails (possible only for
        # quantifier-alternating systems with junk elements), the search
        # resumes at the next size vector.
        predicates = list(prepared.predicates.values())
        # One ModelFinder spans every resumption of the sweep: with the
        # incremental engine, a model that fails the Herbrand check below
        # resumes the search at the next size with all encoding and
        # learned clauses intact instead of starting over.  In campaign
        # mode the finder additionally rides the pool's shared engine for
        # this signature, inheriting other problems' state.
        pool = cfg.engine_pool
        ephemeral: Optional[EnginePool] = None
        if pool is None and cfg.engine_cache_dir and cfg.incremental:
            # no shared pool, but a warm cache: a private pool scoped to
            # this solve loads the signature's engine from disk (if any)
            # and persists it back when done
            ephemeral = EnginePool(
                symmetry_breaking=cfg.symmetry_breaking,
                lbd_retention=cfg.lbd_retention,
                sat_backend=cfg.sat_backend,
                cache_dir=cfg.engine_cache_dir,
            )
            pool = ephemeral
        pool_compatible = (
            pool is not None
            and cfg.incremental
            and cfg.symmetry_breaking == pool.symmetry_breaking
            and cfg.lbd_retention == pool.lbd_retention
            and cfg.sat_backend == pool.sat_backend
        )
        use_parallel = cfg.sweep_shards > 1 and cfg.incremental
        pooled = pool_compatible and not use_parallel
        if use_parallel:
            # speculative parallel portfolio: shards host private engine
            # copies, so the sweep does not attach to a pooled engine —
            # but a compatible pool (or warm cache) seeds every shard
            # with its latest snapshot for this signature.  Shard-side
            # learning is discarded at the end of the solve rather than
            # folded back into the pool.
            from repro.mace.parallel import ParallelModelFinder

            seed = pool.snapshot_for(prepared) if pool_compatible else None
            finder = ParallelModelFinder(
                prepared,
                sweep_shards=cfg.sweep_shards,
                max_total_size=cfg.max_model_size,
                symmetry_breaking=cfg.symmetry_breaking,
                max_conflicts_per_size=cfg.max_conflicts_per_size,
                max_learned_clauses=cfg.max_learned_clauses,
                core_guided_sweep=cfg.core_guided_sweep,
                lbd_retention=cfg.lbd_retention,
                sat_backend=cfg.sat_backend,
                core_minimization=cfg.core_minimization,
                snapshot=seed,
            )
        elif pooled:
            finder = pool.finder(
                prepared,
                max_total_size=cfg.max_model_size,
                max_conflicts_per_size=cfg.max_conflicts_per_size,
                max_learned_clauses=cfg.max_learned_clauses,
                core_guided_sweep=cfg.core_guided_sweep,
                core_minimization=cfg.core_minimization,
            )
        else:
            finder = ModelFinder(
                prepared,
                max_total_size=cfg.max_model_size,
                symmetry_breaking=cfg.symmetry_breaking,
                max_conflicts_per_size=cfg.max_conflicts_per_size,
                incremental=cfg.incremental,
                max_learned_clauses=cfg.max_learned_clauses,
                core_guided_sweep=cfg.core_guided_sweep,
                lbd_retention=cfg.lbd_retention,
                sat_backend=cfg.sat_backend,
                core_minimization=cfg.core_minimization,
            )
        try:
            result = self._model_search(
                system, prepared, finder, predicates, deadline, start
            )
        finally:
            if pooled and cfg.release_engines:
                pool.release(finder)
            if ephemeral is not None:
                ephemeral.flush_cache()
        if pooled:
            result.details["engine_pool"] = {
                "pooled": True,
                "cross_problem_clauses": result.details.get(
                    "finder", {}
                ).get("cross_problem_clauses", 0),
            }
        return result

    def _model_search(
        self,
        system: CHCSystem,
        prepared: CHCSystem,
        finder: ModelFinder,
        predicates: list,
        deadline: Optional[float],
        start: float,
    ) -> SolveResult:
        """Phase 2 body: drive the finder, verify models, build results."""
        cfg = self.config
        finder_stats = FinderStats(incremental=cfg.incremental)
        min_size = 0
        while True:
            finder_result = finder.search(
                min_total_size=min_size, deadline=deadline
            )
            finder_stats.merge(finder_result.stats)
            if finder_result.model is None:
                # an honest verdict: "no model ≤ N" may only be claimed
                # when every size vector was actually refuted — a sweep
                # that ran out of conflict or wall-clock budget anywhere
                # is merely unknown.  A resumed sweep (min_size > 0,
                # the Herbrand-retry path) never re-examines the found
                # model's siblings at its own total size, so its
                # verdict is never definitive either.
                complete = finder_result.complete and min_size == 0
                if complete and finder_result.stats.hopeless:
                    kind = "complete"
                    reason = (
                        "no finite model exists at any size "
                        "(size-independent refutation)"
                    )
                elif complete:
                    kind = "complete"
                    reason = (
                        f"no finite model of total size <= "
                        f"{cfg.max_model_size} (every vector refuted)"
                    )
                elif min_size:
                    kind = "herbrand"
                    reason = (
                        "models found but none passes the Herbrand "
                        "check within the remaining budget"
                    )
                elif finder_stats.deadline_hit:
                    # cut short by the cooperative wall clock — distinct
                    # from conflict-budget exhaustion (whose remedy is a
                    # bigger budget, not more time) and from the
                    # supervisor's error:timeout_hard (a killed worker
                    # never reports a reason at all)
                    kind = "budget"
                    reason = (
                        "unknown: wall-clock timeout (cooperative)"
                    )
                else:
                    kind = "budget"
                    reason = "unknown: conflict/size budget exhausted"
                result = unknown(self.name, reason)
                result.elapsed = time.monotonic() - start
                result.details["attempts"] = finder_stats.attempts
                result.details["complete"] = complete
                result.details["verdict_kind"] = kind
                result.details["timeout_hit"] = finder_stats.deadline_hit
                result.details["finder"] = finder_stats.as_dict()
                return result
            model = RegularModel.from_finite_model(
                prepared.adts, finder_result.model, predicates
            )
            if cfg.verify and not model.verify_exact(
                prepared, use_automata=cfg.automata_verification
            ):
                min_size = finder_result.model.size() + 1
                if min_size > cfg.max_model_size:
                    result = unknown(
                        self.name,
                        "models found but none passes the Herbrand check",
                    )
                    result.elapsed = time.monotonic() - start
                    result.details["complete"] = False
                    result.details["verdict_kind"] = "herbrand"
                    result.details["finder"] = finder_stats.as_dict()
                    return result
                continue
            break
        if cfg.verify:
            violation = model.verify_bounded(
                system, max_height=cfg.verify_height
            )
            if violation is not None:
                result = unknown(
                    self.name,
                    f"internal error: bounded Herbrand check failed: "
                    f"{violation}",
                )
                result.elapsed = time.monotonic() - start
                return result
        result = sat(self.name, model)
        result.elapsed = time.monotonic() - start
        result.details["model_size"] = model.size()
        result.details["complete"] = True
        result.details["finder_attempts"] = finder_stats.attempts
        result.details["finder"] = finder_stats.as_dict()
        return result


def solve(
    system: CHCSystem, *, timeout: Optional[float] = None, **overrides
) -> SolveResult:
    """One-call API: run RInGen on a CHC system.

    >>> from repro.problems import even_system
    >>> result = solve(even_system())
    >>> result.status
    <Status.SAT: 'sat'>
    """
    config = RInGenConfig(timeout=timeout)
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise TypeError(f"unknown RInGen option {key!r}")
        setattr(config, key, value)
    return RInGen(config).solve(system)
