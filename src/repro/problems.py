"""The paper's running example programs as CHC systems.

These are the verification conditions used throughout the paper to separate
the representation classes (Figure 3):

* :func:`even_system` — Example 1 (*Even*): no two consecutive evens.
  Invariant is Reg and SizeElem but **not** Elem (Prop. 1, 6, 8).
* :func:`incdec_system` — Example 4 (*IncDec*): increment vs decrement.
  Invariant in all three classes (Prop. 4).
* :func:`evenleft_system` — Example 5 (*EvenLeft*): leftmost branch parity.
  Reg but **not** SizeElem (Prop. 2, 9).
* :func:`diag_system` — Example 11 (*Diag*): equality vs disequality.
  Elem but **not** Reg (Prop. 11).
* :func:`ltgt_system` — Example 12 (*LtGt*): Peano orderings.
  SizeElem but **not** Reg and not Elem (Prop. 12).

Plus small satisfiable/unsatisfiable sanity systems used in Sec. 4.4.
"""

from __future__ import annotations

from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.logic.adt import (
    ADTSystem,
    LEAF,
    NAT,
    NODE,
    S,
    TREE,
    Z,
    nat,
    nat_system,
    tree_system,
)
from repro.logic.formulas import Eq, Not, TRUE, conj, diseq
from repro.logic.sorts import PredSymbol
from repro.logic.terms import App, Term, Var


def _nat_var(name: str) -> Var:
    return Var(name, NAT)


def _tree_var(name: str) -> Var:
    return Var(name, TREE)


def s(t: Term) -> Term:
    return App(S, (t,))


def z() -> Term:
    return App(Z)


def node(left: Term, right: Term) -> Term:
    return App(NODE, (left, right))


def leaf() -> Term:
    return App(LEAF)


# ----------------------------------------------------------------------
# Example 1: Even
# ----------------------------------------------------------------------
EVEN = PredSymbol("even", (NAT,))


def even_system() -> CHCSystem:
    """Example 1: ``even(Z)``, ``even(x) -> even(S(S(x)))``, no two
    consecutive evens.  The only safe invariant is ``{S^2n(Z)}``."""
    system = CHCSystem(nat_system(), name="Even")
    x, y = _nat_var("x"), _nat_var("y")
    system.add(Clause(TRUE, (), BodyAtom(EVEN, (z(),)), "even-base"))
    system.add(
        Clause(
            TRUE,
            (BodyAtom(EVEN, (x,)),),
            BodyAtom(EVEN, (s(s(x)),)),
            "even-step",
        )
    )
    system.add(
        Clause(
            Eq(y, s(x)),
            (BodyAtom(EVEN, (x,)), BodyAtom(EVEN, (y,))),
            None,
            "even-query",
        )
    )
    return system


# ----------------------------------------------------------------------
# Example 4: IncDec
# ----------------------------------------------------------------------
INC = PredSymbol("inc", (NAT, NAT))
DEC = PredSymbol("dec", (NAT, NAT))


def incdec_system() -> CHCSystem:
    """Example 4: ``inc`` is +1, ``dec`` is -1; they never coincide."""
    system = CHCSystem(nat_system(), name="IncDec")
    x, y = _nat_var("x"), _nat_var("y")
    xp, yp = _nat_var("x1"), _nat_var("y1")
    system.add(
        Clause(
            conj(Eq(x, z()), Eq(y, s(z()))),
            (),
            BodyAtom(INC, (x, y)),
            "inc-base",
        )
    )
    system.add(
        Clause(
            conj(Eq(x, s(xp)), Eq(y, s(yp))),
            (BodyAtom(INC, (xp, yp)),),
            BodyAtom(INC, (x, y)),
            "inc-step",
        )
    )
    system.add(
        Clause(
            conj(Eq(x, s(z())), Eq(y, z())),
            (),
            BodyAtom(DEC, (x, y)),
            "dec-base",
        )
    )
    system.add(
        Clause(
            conj(Eq(x, s(xp)), Eq(y, s(yp))),
            (BodyAtom(DEC, (xp, yp)),),
            BodyAtom(DEC, (x, y)),
            "dec-step",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(INC, (x, y)), BodyAtom(DEC, (x, y))),
            None,
            "incdec-query",
        )
    )
    return system


# ----------------------------------------------------------------------
# Example 5 / 10: EvenLeft
# ----------------------------------------------------------------------
EVENLEFT = PredSymbol("evenleft", (TREE,))


def evenleft_system() -> CHCSystem:
    """Example 5: the leftmost branch has an even number of nodes."""
    system = CHCSystem(tree_system(), name="EvenLeft")
    x, xp = _tree_var("x"), _tree_var("x1")
    y, yy = _tree_var("y"), _tree_var("yy")
    zz = _tree_var("z")
    system.add(
        Clause(Eq(x, leaf()), (), BodyAtom(EVENLEFT, (x,)), "evenleft-base")
    )
    system.add(
        Clause(
            Eq(x, node(node(xp, y), zz)),
            (BodyAtom(EVENLEFT, (xp,)),),
            BodyAtom(EVENLEFT, (x,)),
            "evenleft-step",
        )
    )
    system.add(
        Clause(
            TRUE,
            (
                BodyAtom(EVENLEFT, (x,)),
                BodyAtom(EVENLEFT, (node(x, yy),)),
            ),
            None,
            "evenleft-query",
        )
    )
    return system


# ----------------------------------------------------------------------
# Example 11: Diag
# ----------------------------------------------------------------------
EQP = PredSymbol("eqp", (NAT, NAT))
DISEQP = PredSymbol("diseqp", (NAT, NAT))


def diag_system() -> CHCSystem:
    """Example 11: recursive equality vs disequality of Peano numbers."""
    system = CHCSystem(nat_system(), name="Diag")
    x, y = _nat_var("x"), _nat_var("y")
    xp, yp = _nat_var("x1"), _nat_var("y1")
    system.add(Clause(Eq(x, y), (), BodyAtom(EQP, (x, y)), "eq-refl"))
    system.add(
        Clause(
            conj(Eq(x, s(xp)), Eq(y, z())),
            (),
            BodyAtom(DISEQP, (x, y)),
            "diseq-sz",
        )
    )
    system.add(
        Clause(
            conj(Eq(y, s(yp)), Eq(x, z())),
            (),
            BodyAtom(DISEQP, (x, y)),
            "diseq-zs",
        )
    )
    system.add(
        Clause(
            conj(Eq(x, s(xp)), Eq(y, s(yp))),
            (BodyAtom(DISEQP, (xp, yp)),),
            BodyAtom(DISEQP, (x, y)),
            "diseq-ss",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(EQP, (x, y)), BodyAtom(DISEQP, (x, y))),
            None,
            "diag-query",
        )
    )
    return system


# ----------------------------------------------------------------------
# Example 12: LtGt
# ----------------------------------------------------------------------
LT = PredSymbol("lt", (NAT, NAT))
GT = PredSymbol("gt", (NAT, NAT))


def ltgt_system() -> CHCSystem:
    """Example 12: strict orderings; ``lt`` and ``gt`` are disjoint."""
    system = CHCSystem(nat_system(), name="LtGt")
    x, y = _nat_var("x"), _nat_var("y")
    xp, yp = _nat_var("x1"), _nat_var("y1")
    system.add(
        Clause(
            conj(Eq(x, z()), Eq(y, s(yp))),
            (),
            BodyAtom(LT, (x, y)),
            "lt-base",
        )
    )
    system.add(
        Clause(
            conj(Eq(x, s(xp)), Eq(y, s(yp))),
            (BodyAtom(LT, (xp, yp)),),
            BodyAtom(LT, (x, y)),
            "lt-step",
        )
    )
    system.add(
        Clause(
            conj(Eq(x, s(xp)), Eq(y, z())),
            (),
            BodyAtom(GT, (x, y)),
            "gt-base",
        )
    )
    system.add(
        Clause(
            conj(Eq(x, s(xp)), Eq(y, s(yp))),
            (BodyAtom(GT, (xp, yp)),),
            BodyAtom(GT, (x, y)),
            "gt-step",
        )
    )
    system.add(
        Clause(
            TRUE,
            (BodyAtom(LT, (x, y)), BodyAtom(GT, (x, y))),
            None,
            "ltgt-query",
        )
    )
    return system


# ----------------------------------------------------------------------
# Sec. 4.4 sanity systems
# ----------------------------------------------------------------------
def z_neq_sz_system() -> CHCSystem:
    """``Z != S(Z) -> false``: UNSAT over ADTs (Sec. 4.4's example)."""
    system = CHCSystem(nat_system(), name="ZneqSZ")
    system.add(
        Clause(diseq(z(), s(z())), (), None, "z-neq-sz-query")
    )
    return system


def diseq_zz_system() -> CHCSystem:
    """``diseq(Z, Z) -> false``: SAT, has a finite model (Sec. 4.4)."""
    system = CHCSystem(nat_system(), name="DiseqZZ")
    system.add(Clause(diseq(z(), z()), (), None, "z-neq-z-query"))
    return system


def odd_unsat_system() -> CHCSystem:
    """An unsatisfiable Even variant: asserts ``even(S(Z))`` is impossible
    while the rules derive it — used to exercise counterexample search."""
    system = CHCSystem(nat_system(), name="EvenBroken")
    x = _nat_var("x")
    p = PredSymbol("evenb", (NAT,))
    system.add(Clause(TRUE, (), BodyAtom(p, (z(),)), "base"))
    system.add(
        Clause(TRUE, (BodyAtom(p, (x,)),), BodyAtom(p, (s(x),)), "step")
    )
    system.add(
        Clause(Eq(x, s(s(z()))), (BodyAtom(p, (x,)),), None, "query")
    )
    return system


ALL_PAPER_SYSTEMS = {
    "Even": even_system,
    "IncDec": incdec_system,
    "EvenLeft": evenleft_system,
    "Diag": diag_system,
    "LtGt": ltgt_system,
}
