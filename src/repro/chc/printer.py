"""SMT-LIB2 printer for CHC systems — inverse of :mod:`repro.chc.parser`.

Emitting the CHC-COMP fragment lets the generated benchmark suites be
written to disk in the same format the original RInGen consumed, and gives
a parse/print round-trip that the test suite checks.
"""

from __future__ import annotations

from typing import Iterable

from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.chc.transform import parse_selector
from repro.logic.adt import ADTSystem
from repro.logic.formulas import (
    And,
    Eq,
    Formula,
    Not,
    Or,
    PredAtom,
    TRUE,
    Tester,
)
from repro.logic.sorts import Sort
from repro.logic.terms import App, Term, Var


def print_term(term: Term, adts: ADTSystem) -> str:
    if isinstance(term, Var):
        return term.name
    sel = parse_selector(term.func, adts)
    if sel is not None:
        inner = print_term(term.args[0], adts)
        return f"({selector_name(sel.constructor.name, sel.index)} {inner})"
    if not term.args:
        return term.func.name
    args = " ".join(print_term(a, adts) for a in term.args)
    return f"({term.func.name} {args})"


def selector_name(constructor: str, index: int) -> str:
    """Canonical selector name used when printing datatype declarations."""
    return f"{constructor}!{index}"


def print_formula(formula: Formula, adts: ADTSystem) -> str:
    if formula == TRUE:
        return "true"
    if isinstance(formula, Eq):
        return (
            f"(= {print_term(formula.lhs, adts)} "
            f"{print_term(formula.rhs, adts)})"
        )
    if isinstance(formula, Tester):
        return (
            f"((_ is {formula.constructor.name}) "
            f"{print_term(formula.term, adts)})"
        )
    if isinstance(formula, PredAtom):
        if not formula.args:
            return formula.pred.name
        args = " ".join(print_term(a, adts) for a in formula.args)
        return f"({formula.pred.name} {args})"
    if isinstance(formula, Not):
        return f"(not {print_formula(formula.operand, adts)})"
    if isinstance(formula, And):
        if not formula.operands:
            return "true"
        parts = " ".join(print_formula(f, adts) for f in formula.operands)
        return f"(and {parts})"
    if isinstance(formula, Or):
        if not formula.operands:
            return "false"
        parts = " ".join(print_formula(f, adts) for f in formula.operands)
        return f"(or {parts})"
    raise TypeError(f"cannot print {formula!r}")


def print_atom(atom: BodyAtom, adts: ADTSystem) -> str:
    if not atom.args:
        base = atom.pred.name
    else:
        args = " ".join(print_term(a, adts) for a in atom.args)
        base = f"({atom.pred.name} {args})"
    if atom.universal_vars:
        decls = " ".join(
            f"({v.name} {v.sort.name})" for v in atom.universal_vars
        )
        return f"(forall ({decls}) {base})"
    return base


def print_clause(cl: Clause, adts: ADTSystem) -> str:
    parts: list[str] = []
    if cl.constraint != TRUE:
        parts.append(print_formula(cl.constraint, adts))
    parts.extend(print_atom(a, adts) for a in cl.body)
    if not parts:
        body = "true"
    elif len(parts) == 1:
        body = parts[0]
    else:
        body = f"(and {' '.join(parts)})"
    head = "false" if cl.head is None else print_atom(cl.head, adts)
    free = sorted(cl.free_vars(), key=lambda v: v.name)
    implication = f"(=> {body} {head})"
    if not free:
        return f"(assert {implication})"
    decls = " ".join(f"({v.name} {v.sort.name})" for v in free)
    return f"(assert (forall ({decls}) {implication}))"


def print_datatypes(adts: ADTSystem) -> str:
    sort_decls = " ".join(f"({s.name} 0)" for s in adts.sorts)
    bodies = []
    for sort in adts.sorts:
        ctors = []
        for c in adts.constructors(sort):
            if not c.arg_sorts:
                ctors.append(f"({c.name})")
            else:
                fields = " ".join(
                    f"({selector_name(c.name, i)} {s.name})"
                    for i, s in enumerate(c.arg_sorts)
                )
                ctors.append(f"({c.name} {fields})")
        bodies.append(f"({' '.join(ctors)})")
    return f"(declare-datatypes ({sort_decls}) ({' '.join(bodies)}))"


def print_system(system: CHCSystem, *, logic: str = "HORN") -> str:
    """Full SMT-LIB2 rendering of a CHC system."""
    lines = [f"(set-logic {logic})", print_datatypes(system.adts)]
    for pred in sorted(system.predicates.values(), key=lambda p: p.name):
        args = " ".join(s.name for s in pred.arg_sorts)
        lines.append(f"(declare-fun {pred.name} ({args}) Bool)")
    for cl in system.clauses:
        lines.append(print_clause(cl, system.adts))
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"
