"""Ground semantics of CHC systems: bounded least fixpoints and checking.

CHC satisfiability is defined over expansions of the Herbrand structure
(Sec. 3).  This module provides the executable fragment of that semantics:

* ground evaluation of assertion-language constraints,
* a bounded least-fixpoint engine (a datalog-with-terms saturation up to a
  term-height budget) — the denotational semantics restricted to small
  terms, used by the counterexample search, by baseline solvers and by the
  independent verifier of regular models,
* a bounded universal checker: does a candidate interpretation satisfy
  every clause for all instantiations with terms up to a height bound?
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional

from repro.chc.clauses import BodyAtom, CHCError, CHCSystem, Clause
from repro.logic.adt import ADTSystem
from repro.logic.formulas import (
    And,
    Eq,
    Formula,
    Not,
    Or,
    PredAtom,
    Tester,
    TRUE,
)
from repro.logic.sorts import PredSymbol
from repro.logic.terms import (
    Term,
    Var,
    height,
    is_ground,
    matches,
    substitute,
    variables,
)

GroundAtom = tuple[PredSymbol, tuple[Term, ...]]
Interpretation = Callable[[PredSymbol, tuple[Term, ...]], bool]


class SemanticsError(ValueError):
    """Raised on non-ground evaluation or missing interpretations."""


def eval_constraint(formula: Formula, adts: ADTSystem) -> bool:
    """Evaluate a ground assertion-language constraint in ℋ.

    Equality is structural equality of ground terms (the Herbrand
    interpretation); testers check the top constructor.
    """
    if isinstance(formula, Eq):
        if not (is_ground(formula.lhs) and is_ground(formula.rhs)):
            raise SemanticsError(f"non-ground constraint {formula}")
        return formula.lhs == formula.rhs
    if isinstance(formula, Tester):
        if not is_ground(formula.term):
            raise SemanticsError(f"non-ground constraint {formula}")
        return adts.test(formula.constructor.name, formula.term)
    if isinstance(formula, Not):
        return not eval_constraint(formula.operand, adts)
    if isinstance(formula, And):
        return all(eval_constraint(f, adts) for f in formula.operands)
    if isinstance(formula, Or):
        return any(eval_constraint(f, adts) for f in formula.operands)
    raise SemanticsError(f"cannot evaluate {formula} as a constraint")


@dataclass
class Derivation:
    """A proof tree witnessing a derived ground atom (or ⊥)."""

    clause: Clause
    conclusion: Optional[GroundAtom]
    premises: tuple["Derivation", ...] = ()

    def depth(self) -> int:
        return 1 + max((p.depth() for p in self.premises), default=0)

    def format(self, indent: int = 0) -> str:
        head = (
            "false"
            if self.conclusion is None
            else _format_atom(self.conclusion)
        )
        rule = self.clause.name or "<clause>"
        lines = [" " * indent + f"{head}   [by {rule}]"]
        for p in self.premises:
            lines.append(p.format(indent + 2))
        return "\n".join(lines)


def _format_atom(atom: GroundAtom) -> str:
    pred, args = atom
    return f"{pred.name}({', '.join(str(a) for a in args)})"


@dataclass
class FixpointResult:
    """Result of bounded saturation."""

    facts: dict[PredSymbol, set[tuple[Term, ...]]]
    refutation: Optional[Derivation]
    saturated: bool
    rounds: int = 0

    def holds(self, pred: PredSymbol, args: tuple[Term, ...]) -> bool:
        return args in self.facts.get(pred, set())

    def fact_count(self) -> int:
        return sum(len(v) for v in self.facts.values())


def bounded_least_fixpoint(
    system: CHCSystem,
    *,
    max_height: int = 4,
    max_facts: int = 200_000,
    check_queries: bool = True,
    deadline: Optional[float] = None,
    max_steps: int = 3_000_000,
) -> FixpointResult:
    """Saturate the definite clauses over terms of height ≤ ``max_height``.

    Returns the set of derived ground facts and, if ``check_queries`` and a
    query clause fires, a :class:`Derivation` of ⊥ — i.e. a genuine
    counterexample proving the CHC system unsatisfiable (derivations are
    sound regardless of the bound; the bound only limits completeness).

    Resource guards: a wall-clock ``deadline``, a fact cap and a step cap
    (substitution candidates examined) bound the saturation; hitting any of
    them marks the result unsaturated.
    """
    import time as _time

    adts = system.adts
    budget = _StepBudget(deadline, max_steps)
    facts: dict[PredSymbol, set[tuple[Term, ...]]] = {}
    proofs: dict[GroundAtom, Derivation] = {}
    for pred in system.predicates.values():
        facts.setdefault(pred, set())

    def add_fact(
        pred: PredSymbol, args: tuple[Term, ...], proof: Derivation
    ) -> bool:
        bucket = facts.setdefault(pred, set())
        if args in bucket:
            return False
        bucket.add(args)
        proofs[(pred, args)] = proof
        return True

    rounds = 0
    changed = True
    saturated = True
    while changed:
        rounds += 1
        changed = False
        for cl in system.definite_clauses:
            if any(a.universal_vars for a in cl.body):
                # universal blocks can only be bounded-checked, which
                # over-approximates truth and would make derived facts
                # (and thus refutations built on them) unsound — skip
                saturated = False
                continue
            head = cl.head
            assert head is not None
            for subst in _body_matches(
                cl, facts, adts, max_height, budget=budget, head=head
            ):
                if budget.exhausted:
                    return FixpointResult(facts, None, False, rounds)
                args = tuple(substitute(t, subst) for t in head.args)
                if any(not is_ground(a) for a in args):
                    continue
                if any(height(a) > max_height for a in args):
                    saturated = False
                    continue
                premises = tuple(
                    proofs[
                        (
                            a.pred,
                            tuple(substitute(t, subst) for t in a.args),
                        )
                    ]
                    for a in cl.body
                    if not a.universal_vars
                )
                proof = Derivation(cl, (head.pred, args), premises)
                if add_fact(head.pred, args, proof):
                    changed = True
                    if sum(len(v) for v in facts.values()) > max_facts:
                        return FixpointResult(facts, None, False, rounds)
    if budget.exhausted or budget.pruned:
        saturated = False
    refutation: Optional[Derivation] = None
    if check_queries:
        refutation = check_query_clauses(
            system, facts, proofs, max_height, budget
        )
    return FixpointResult(facts, refutation, saturated, rounds)


def check_query_clauses(
    system: CHCSystem,
    facts: dict[PredSymbol, set[tuple[Term, ...]]],
    proofs: dict[GroundAtom, Derivation],
    max_height: int,
    budget: Optional["_StepBudget"] = None,
) -> Optional[Derivation]:
    """Check whether a query clause body is derivable from ``facts``."""
    adts = system.adts
    for cl in system.queries:
        if any(a.universal_vars for a in cl.body):
            # A universal block can only be *bounded-checked*, which is
            # unsound for refutations (the block may fail beyond the
            # bound).  Such queries never produce counterexamples here.
            continue
        for subst in _body_matches(cl, facts, adts, max_height, budget=budget):
            premises = tuple(
                proofs[
                    (a.pred, tuple(substitute(t, subst) for t in a.args))
                ]
                for a in cl.body
                if not a.universal_vars
            )
            return Derivation(cl, None, premises)
    return None


class _StepBudget:
    """Shared wall-clock + step budget for one saturation run.

    ``pruned`` records that some completion family was skipped by the
    head-height cut — the saturation is then incomplete at this bound
    even if no in-bound fact was missed directly.
    """

    __slots__ = ("deadline", "remaining", "exhausted", "pruned")

    def __init__(self, deadline: Optional[float], max_steps: int):
        self.deadline = deadline
        self.remaining = max_steps
        self.exhausted = False
        self.pruned = False

    def spend(self, amount: int = 1) -> bool:
        """Consume budget; returns False once exhausted."""
        if self.exhausted:
            return False
        self.remaining -= amount
        if self.remaining <= 0:
            self.exhausted = True
            return False
        if self.deadline is not None and self.remaining % 4096 == 0:
            import time as _time

            if _time.monotonic() > self.deadline:
                self.exhausted = True
                return False
        return True


def _head_can_fit(
    head: Optional[BodyAtom],
    subst: dict[Var, Term],
    free: list[Var],
    adts: ADTSystem,
    max_height: int,
) -> bool:
    """Lower-bound the head's height under ``subst``; prune impossibilities.

    Any completion of the unbound variables only raises term heights, so
    if the head already exceeds the bound with unbound variables at their
    minimum height, the whole completion family is skipped — this is what
    keeps the ``diseq`` generator rules (whose heads wrap fresh variables
    in constructors) from exploding the saturation.
    """
    if head is None:
        return True
    min_heights = {v: adts.min_height(v.sort) for v in free}

    def lower(t: Term) -> int:
        if isinstance(t, Var):
            bound = subst.get(t)
            if bound is not None:
                return height(bound)
            return min_heights.get(t, 1)
        if not t.args:
            return 1
        return 1 + max(lower(a) for a in t.args)

    return all(lower(t) <= max_height for t in head.args)


def _body_matches(
    cl: Clause,
    facts: dict[PredSymbol, set[tuple[Term, ...]]],
    adts: ADTSystem,
    max_height: int,
    budget: Optional[_StepBudget] = None,
    head: Optional[BodyAtom] = None,
) -> Iterator[dict[Var, Term]]:
    """All substitutions making every body atom a derived fact and the
    constraint true, with leftover variables enumerated up to the bound.

    Universal-block body atoms (``forall``-in-body, Fig. 2) are checked by
    enumerating their bound variables over the bounded universe; they never
    *bind* outer variables, only filter.
    """
    plain = [a for a in cl.body if not a.universal_vars]
    universal = [a for a in cl.body if a.universal_vars]
    substs: list[dict[Var, Term]] = [{}]
    # order atoms by predicate fact count to shrink intermediate joins
    plain.sort(key=lambda a: len(facts.get(a.pred, ())))
    for atom in plain:
        bucket = facts.get(atom.pred, set())
        new_substs: list[dict[Var, Term]] = []
        for subst in substs:
            pattern = tuple(substitute(t, subst) for t in atom.args)
            for fact_args in bucket:
                if budget is not None and not budget.spend():
                    return
                extension = _match_tuple(pattern, fact_args)
                if extension is not None:
                    merged = dict(subst)
                    merged.update(extension)
                    new_substs.append(merged)
        substs = new_substs
        if not substs:
            return
    for subst in substs:
        free = _unbound_vars(cl, subst)
        if not _head_can_fit(head, subst, free, adts, max_height):
            if budget is not None:
                budget.pruned = True
            continue
        for full in _enumerate_completions(free, subst, adts, max_height):
            if budget is not None and not budget.spend():
                return
            if cl.constraint != TRUE and not eval_constraint(
                _ground_constraint(cl.constraint, full), adts
            ):
                continue
            if universal and not all(
                _universal_atom_holds(a, full, facts, adts, max_height)
                for a in universal
            ):
                continue
            yield full


def _ground_constraint(constraint: Formula, subst: dict[Var, Term]) -> Formula:
    from repro.logic.formulas import substitute_formula

    return substitute_formula(constraint, subst)


def _match_tuple(
    pattern: tuple[Term, ...], ground: tuple[Term, ...]
) -> Optional[dict[Var, Term]]:
    subst: dict[Var, Term] = {}
    for p, g in zip(pattern, ground):
        m = matches(p, g)
        if m is None:
            return None
        for v, t in m.items():
            if subst.get(v, t) != t:
                return None
            subst[v] = t
    return subst


def _unbound_vars(cl: Clause, subst: dict[Var, Term]) -> list[Var]:
    return sorted(
        (v for v in cl.free_vars() if v not in subst),
        key=lambda v: v.name,
    )


def _enumerate_completions(
    free: list[Var],
    subst: dict[Var, Term],
    adts: ADTSystem,
    max_height: int,
) -> Iterator[dict[Var, Term]]:
    if not free:
        yield subst
        return
    pools = [adts.terms_up_to_height(v.sort, max_height) for v in free]
    for combo in itertools.product(*pools):
        full = dict(subst)
        full.update(zip(free, combo))
        yield full


def _universal_atom_holds(
    atom: BodyAtom,
    subst: dict[Var, Term],
    facts: dict[PredSymbol, set[tuple[Term, ...]]],
    adts: ADTSystem,
    max_height: int,
) -> bool:
    """Bounded check of a ``forall``-block body atom.

    Sound for *refutations only* up to the bound: we report the block as
    holding if the atom is a fact for every instantiation of the bound
    variables with terms up to the height budget.
    """
    bucket = facts.get(atom.pred, set())
    pools = [
        adts.terms_up_to_height(v.sort, max_height)
        for v in atom.universal_vars
    ]
    for combo in itertools.product(*pools):
        inner = dict(subst)
        inner.update(zip(atom.universal_vars, combo))
        args = tuple(substitute(t, inner) for t in atom.args)
        if args not in bucket:
            return False
    return True


# ----------------------------------------------------------------------
# Bounded universal model checking of candidate interpretations
# ----------------------------------------------------------------------
@dataclass
class ClauseViolation:
    """A ground instantiation falsifying a clause under an interpretation."""

    clause: Clause
    assignment: dict[Var, Term]

    def __str__(self) -> str:
        binding = ", ".join(
            f"{v.name} := {t}" for v, t in sorted(
                self.assignment.items(), key=lambda kv: kv[0].name
            )
        )
        return f"clause {self.clause} violated at [{binding}]"


def check_model_bounded(
    system: CHCSystem,
    interpretation: Interpretation,
    *,
    max_height: int = 3,
    universal_height: Optional[int] = None,
    max_instances_per_clause: int = 200_000,
) -> Optional[ClauseViolation]:
    """Bounded validity check of ``interpretation`` against every clause.

    Enumerates instantiations of clause variables with ground terms up to
    ``max_height`` and reports the first violated instance, or ``None``
    if all checked instances hold.  This is the independent verifier used
    to cross-check regular models produced by the pipeline (sound up to the
    bound; the exact check happens on the finite-model side).

    When the full product of pools would exceed
    ``max_instances_per_clause`` (many-variable clauses such as the STLC
    VC), every pool is truncated to its smallest-height prefix so the
    product fits — coverage shrinks but stays biased to small terms, where
    violations of Theorem 5 would surface first.
    """
    adts = system.adts
    if universal_height is None:
        universal_height = max_height
    for cl in system.clauses:
        free = sorted(cl.free_vars(), key=lambda v: v.name)
        pools = [adts.terms_up_to_height(v.sort, max_height) for v in free]
        pools = _shrink_pools(pools, max_instances_per_clause)
        for combo in itertools.product(*pools):
            assignment = dict(zip(free, combo))
            if not _clause_instance_holds(
                cl, assignment, interpretation, adts, universal_height
            ):
                return ClauseViolation(cl, assignment)
    return None


def _shrink_pools(
    pools: list[list[Term]], budget: int
) -> list[list[Term]]:
    """Truncate pools (smallest terms first) until their product fits."""
    def product_size() -> int:
        total = 1
        for p in pools:
            total *= max(len(p), 1)
            if total > budget:
                return total
        return total

    pools = [sorted(p, key=height) for p in pools]
    while product_size() > budget:
        largest = max(range(len(pools)), key=lambda i: len(pools[i]))
        if len(pools[largest]) <= 1:
            break
        pools[largest] = pools[largest][: max(len(pools[largest]) // 2, 1)]
    return pools


def _clause_instance_holds(
    cl: Clause,
    assignment: dict[Var, Term],
    interpretation: Interpretation,
    adts: ADTSystem,
    universal_height: int,
) -> bool:
    if cl.constraint != TRUE:
        grounded = _ground_constraint(cl.constraint, assignment)
        if not eval_constraint(grounded, adts):
            return True
    for atom in cl.body:
        if atom.universal_vars:
            pools = [
                adts.terms_up_to_height(v.sort, universal_height)
                for v in atom.universal_vars
            ]
            block_holds = True
            for combo in itertools.product(*pools):
                inner = dict(assignment)
                inner.update(zip(atom.universal_vars, combo))
                args = tuple(substitute(t, inner) for t in atom.args)
                if not interpretation(atom.pred, args):
                    block_holds = False
                    break
            if not block_holds:
                return True
        else:
            args = tuple(substitute(t, assignment) for t in atom.args)
            if not interpretation(atom.pred, args):
                return True
    if cl.head is None:
        return False
    args = tuple(substitute(t, assignment) for t in cl.head.args)
    return interpretation(cl.head.pred, args)
