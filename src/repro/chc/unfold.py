"""Clause unfolding: the transformation half of fold/unfold (De Angelis).

The VeriMAP-iddt baseline the paper compares against eliminates ADTs by
fold/unfold transformations; *unfolding* — resolving a body atom against
the clauses defining its predicate — is also independently useful here:

* it deepens the reach of the bounded counterexample search (one unfold
  step doubles the derivation depth visible at a fixed term-height
  budget),
* it inlines non-recursive auxiliary predicates before model finding,
  shrinking the EUF signature the finder must interpret.

``unfold_atom`` performs a single resolution step; ``unfold_system``
applies it bounded-everywhere; ``inline_nonrecursive`` eliminates
predicates that are defined without (mutual) recursion and are not
protected (e.g. not a query predicate).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.chc.clauses import BodyAtom, CHCError, CHCSystem, Clause
from repro.logic.formulas import TRUE, conj
from repro.logic.sorts import PredSymbol
from repro.logic.terms import Var, unify


def unfold_atom(
    clause: Clause, index: int, system: CHCSystem
) -> list[Clause]:
    """Resolve the ``index``-th body atom against its defining clauses.

    Returns one clause per defining clause whose head unifies with the
    atom (non-unifiable definitions contribute nothing).  Universal-block
    atoms cannot be unfolded.
    """
    if not 0 <= index < len(clause.body):
        raise CHCError(f"no body atom at index {index}")
    atom = clause.body[index]
    if atom.universal_vars:
        raise CHCError("cannot unfold a universal-block atom")
    out: list[Clause] = []
    for definition in system.clauses_defining(atom.pred):
        taken = {v.name for v in clause.free_vars()}
        fresh = definition
        while fresh.free_vars() & clause.free_vars():
            fresh = fresh.renamed("_u")
        assert fresh.head is not None
        subst = unify(list(zip(atom.args, fresh.head.args)))
        if subst is None:
            continue
        resolved = Clause(
            conj(
                clause.constraint,
                fresh.constraint,
            ),
            clause.body[:index] + fresh.body + clause.body[index + 1 :],
            clause.head,
            f"{clause.name}+{fresh.name}",
        ).substituted(subst)
        out.append(resolved)
    return out


def unfold_system(
    system: CHCSystem,
    *,
    target: Optional[PredSymbol] = None,
    max_clauses: int = 500,
) -> CHCSystem:
    """One synchronous unfolding pass.

    Every body atom (of ``target``'s predicate if given, else every
    predicate) of every clause is unfolded once; facts and clauses whose
    bodies don't mention the target pass through unchanged.  The result
    is equisatisfiable with the input (unfolding is a sound and complete
    transformation for least-model semantics).
    """
    out = CHCSystem(system.adts, name=system.name)
    for pred in system.predicates.values():
        out.declare(pred)
    for clause in system.clauses:
        indices = [
            i
            for i, atom in enumerate(clause.body)
            if not atom.universal_vars
            and (target is None or atom.pred == target)
        ]
        if not indices:
            out.add(clause)
            continue
        # unfold the first eligible atom only: a full pass is obtained by
        # iterating unfold_system, which keeps the blowup observable
        produced = unfold_atom(clause, indices[0], system)
        for resolved in produced:
            out.add(resolved)
            if len(out.clauses) > max_clauses:
                raise CHCError(
                    "unfolding exceeded the clause budget; "
                    "lower the number of passes"
                )
    return out


def _is_recursive(pred: PredSymbol, system: CHCSystem) -> bool:
    """Whether ``pred`` (mutually) depends on itself."""
    reached: set[PredSymbol] = set()
    frontier = [pred]
    while frontier:
        current = frontier.pop()
        for clause in system.clauses_defining(current):
            for atom in clause.body:
                if atom.pred == pred:
                    return True
                if atom.pred not in reached:
                    reached.add(atom.pred)
                    frontier.append(atom.pred)
    return False


def inline_nonrecursive(
    system: CHCSystem, *, keep: Iterable[PredSymbol] = ()
) -> CHCSystem:
    """Eliminate non-recursive predicates by exhaustive unfolding.

    Predicates in ``keep`` (plus any predicate occurring in a query or a
    universal block) survive.  The result has the same satisfiability and
    the same least-model interpretations of the surviving predicates.
    """
    protected: set[PredSymbol] = set(keep)
    for clause in system.clauses:
        for atom in clause.body:
            if atom.universal_vars:
                protected.add(atom.pred)
    current = system
    changed = True
    while changed:
        changed = False
        candidates = [
            p
            for p in current.predicates.values()
            if p not in protected
            and current.clauses_defining(p)
            and not _is_recursive(p, current)
            and any(
                atom.pred == p
                for cl in current.clauses
                for atom in cl.body
            )
        ]
        if not candidates:
            break
        target = candidates[0]
        unfolded = unfold_system(current, target=target)
        # drop the now-unreferenced definitions of the target
        cleaned = CHCSystem(current.adts, name=current.name)
        still_used = any(
            atom.pred == target
            for cl in unfolded.clauses
            for atom in cl.body
        )
        for clause in unfolded.clauses:
            if (
                not still_used
                and clause.head is not None
                and clause.head.pred == target
            ):
                continue
            cleaned.add(clause)
        current = cleaned
        changed = True
    return current
