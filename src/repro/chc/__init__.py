"""Constrained Horn clauses over ADTs: IR, I/O, preprocessing, semantics."""

from repro.chc.clauses import BodyAtom, CHCError, CHCSystem, Clause, clause
from repro.chc.parser import ParseError, parse_chc, parse_sexprs, tokenize
from repro.chc.printer import print_clause, print_system, print_term
from repro.chc.semantics import (
    ClauseViolation,
    Derivation,
    FixpointResult,
    bounded_least_fixpoint,
    check_model_bounded,
    eval_constraint,
)
from repro.chc.transform import (
    diseq_rules,
    diseq_symbol,
    encode_diseq,
    has_disequalities,
    is_constraint_free,
    is_diseq_symbol,
    normalize,
    preprocess,
    remove_selectors,
    selector_func,
)

__all__ = [
    "BodyAtom",
    "CHCError",
    "CHCSystem",
    "Clause",
    "ClauseViolation",
    "Derivation",
    "FixpointResult",
    "ParseError",
    "bounded_least_fixpoint",
    "check_model_bounded",
    "clause",
    "diseq_rules",
    "diseq_symbol",
    "encode_diseq",
    "eval_constraint",
    "has_disequalities",
    "is_constraint_free",
    "is_diseq_symbol",
    "normalize",
    "parse_chc",
    "parse_sexprs",
    "preprocess",
    "print_clause",
    "print_system",
    "print_term",
    "remove_selectors",
    "selector_func",
    "tokenize",
]
