"""Preprocessing passes of Sec. 4: from CHCs over ADTs to constraint-free
CHCs over EUF.

The pipeline of Figure 1 is implemented as three passes:

* :func:`remove_selectors` — Sec. 4.5: selector applications are compiled
  away by introducing fresh variables constrained through constructor
  equalities (the ``car``/``cdr`` example of the paper).
* :func:`normalize` — constraints are pushed to DNF, clauses are split per
  disjunct, negative testers are expanded into positive ones, positive
  testers become constructor equalities, and positive equalities are
  eliminated by unification and substitution (proof of Theorem 5).  After
  this pass every remaining constraint literal is a disequality.
* :func:`encode_diseq` — Sec. 4.4: disequality literals are replaced by
  ``diseq_sigma`` atoms and the generating Horn rules for ``diseq`` are
  appended.  The result has no constraints at all and can be handed to a
  finite model finder as plain EUF (Lemma 2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.chc.clauses import BodyAtom, CHCError, CHCSystem, Clause
from repro.logic.adt import ADTSystem
from repro.logic.formulas import (
    Eq,
    FALSE,
    Formula,
    Not,
    PredAtom,
    TRUE,
    Tester,
    conj,
    disj,
    dnf,
    literal_parts,
    substitute_formula,
)
from repro.logic.sorts import FuncSymbol, PredSymbol, Sort
from repro.logic.terms import (
    App,
    Term,
    Var,
    is_ground,
    substitute,
    unify,
    variables,
)

DISEQ_PREFIX = "diseq!"


def diseq_symbol(sort: Sort) -> PredSymbol:
    """The fresh ``diseq_sigma`` predicate symbol for ``sort`` (Sec. 4.4)."""
    return PredSymbol(f"{DISEQ_PREFIX}{sort.name}", (sort, sort))


def is_diseq_symbol(pred: PredSymbol) -> bool:
    return pred.name.startswith(DISEQ_PREFIX)


# ----------------------------------------------------------------------
# Selector removal (Sec. 4.5)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Selector:
    """A selector symbol ``g_i`` of a constructor (Appendix B semantics)."""

    constructor: FuncSymbol
    index: int

    @property
    def name(self) -> str:
        return f"{self.constructor.name}.{self.index}"

    @property
    def func(self) -> FuncSymbol:
        return FuncSymbol(
            self.name,
            (self.constructor.result_sort,),
            self.constructor.arg_sorts[self.index],
        )


def selector_func(constructor: FuncSymbol, index: int) -> FuncSymbol:
    """The :class:`FuncSymbol` representing selector ``g_index`` of ``c``."""
    return Selector(constructor, index).func


def parse_selector(func: FuncSymbol, adts: ADTSystem) -> Optional[Selector]:
    """Recognize a selector symbol produced by :func:`selector_func`."""
    if "." not in func.name:
        return None
    cname, _, idx = func.name.rpartition(".")
    if not idx.isdigit():
        return None
    try:
        constructor = adts.constructor(cname)
    except Exception:
        return None
    index = int(idx)
    if index >= constructor.arity:
        return None
    sel = Selector(constructor, index)
    return sel if sel.func == func else None


def remove_selectors(system: CHCSystem) -> CHCSystem:
    """Compile selector applications into constructor equalities.

    ``... g_i(t) ...`` becomes ``... y_i ...`` under the extra constraint
    ``t = c(y_0, ..., y_k)`` with fresh ``y_j`` — precisely the rewriting of
    the paper's ``car``/``cdr`` example in Sec. 4.5.
    """
    out = CHCSystem(system.adts, name=system.name)
    counter = itertools.count()
    for cl in system.clauses:
        extra: list[Formula] = []

        def strip(term: Term) -> Term:
            if isinstance(term, Var):
                return term
            sel = parse_selector(term.func, system.adts)
            if sel is None:
                return App(term.func, tuple(strip(a) for a in term.args))
            inner = strip(term.args[0])
            fresh = tuple(
                Var(f"sel!{next(counter)}", s)
                for s in sel.constructor.arg_sorts
            )
            extra.append(Eq(inner, App(sel.constructor, fresh)))
            return fresh[sel.index]

        def strip_formula(formula: Formula) -> Formula:
            if isinstance(formula, Eq):
                return Eq(strip(formula.lhs), strip(formula.rhs))
            if isinstance(formula, Tester):
                return Tester(formula.constructor, strip(formula.term))
            if isinstance(formula, PredAtom):
                return PredAtom(
                    formula.pred, tuple(strip(a) for a in formula.args)
                )
            if isinstance(formula, Not):
                return Not(strip_formula(formula.operand))
            parts = tuple(strip_formula(f) for f in formula.operands)
            return type(formula)(parts)

        constraint = strip_formula(cl.constraint)
        body = tuple(
            BodyAtom(
                a.pred,
                tuple(strip(t) for t in a.args),
                a.universal_vars,
            )
            for a in cl.body
        )
        head = (
            None
            if cl.head is None
            else BodyAtom(cl.head.pred, tuple(strip(t) for t in cl.head.args))
        )
        out.add(Clause(conj(constraint, *extra), body, head, cl.name))
    return out


# ----------------------------------------------------------------------
# Normalization: DNF split + tester expansion + equality elimination
# ----------------------------------------------------------------------
def normalize(system: CHCSystem) -> CHCSystem:
    """Split constraints to DNF and eliminate positive equality literals.

    The output clauses' constraints are conjunctions of *disequality*
    literals only.  Unsatisfiable cubes are dropped; positive equalities
    are solved by unification (clause vanishes if unification fails);
    positive testers are turned into constructor equalities first.
    """
    out = CHCSystem(system.adts, name=system.name)
    for pred in system.predicates.values():
        out.declare(pred)
    counter = itertools.count()
    for cl in system.clauses:
        expanded = _expand_testers(cl.constraint, system.adts, counter)
        for cube in dnf(expanded):
            normalized = _solve_cube(cl, cube, system.adts, counter)
            if normalized is not None:
                out.add(normalized)
    return out


def _expand_testers(
    formula: Formula, adts: ADTSystem, counter: "itertools.count"
) -> Formula:
    """Replace testers with constructor equalities over fresh variables.

    Positive ``c?(t)`` becomes ``t = c(fresh...)``; negative ``~c?(t)``
    becomes the disjunction of the other constructors' positive forms
    (exhaustiveness of ADT constructors).
    """
    if isinstance(formula, Tester):
        return _tester_to_eq(formula, counter)
    if isinstance(formula, Not) and isinstance(formula.operand, Tester):
        tester = formula.operand
        sort = tester.constructor.result_sort
        others = [
            c for c in adts.constructors(sort) if c != tester.constructor
        ]
        return disj(
            *(
                _tester_to_eq(Tester(c, tester.term), counter)
                for c in others
            )
        )
    if isinstance(formula, Not):
        return Not(_expand_testers(formula.operand, adts, counter))
    if isinstance(formula, (Eq, PredAtom)):
        return formula
    parts = tuple(_expand_testers(f, adts, counter) for f in formula.operands)
    return type(formula)(parts)


def _tester_to_eq(tester: Tester, counter: "itertools.count") -> Formula:
    fresh = tuple(
        Var(f"tst!{next(counter)}", s)
        for s in tester.constructor.arg_sorts
    )
    return Eq(tester.term, App(tester.constructor, fresh))


def _solve_cube(
    cl: Clause,
    cube: list[Formula],
    adts: ADTSystem,
    counter: "itertools.count",
) -> Optional[Clause]:
    """Eliminate the positive equalities of one DNF cube by unification."""
    positives: list[tuple[Term, Term]] = []
    negatives: list[Formula] = []
    for literal in cube:
        atom, positive = literal_parts(literal)
        if not isinstance(atom, Eq):
            raise CHCError(f"unexpected literal after expansion: {literal}")
        if positive:
            positives.append((atom.lhs, atom.rhs))
        else:
            negatives.append(literal)
    subst = unify(positives)
    if subst is None:
        return None  # cube unsatisfiable: clause trivially true
    kept: list[Formula] = []
    for literal in negatives:
        atom, _ = literal_parts(literal)
        assert isinstance(atom, Eq)
        lhs = substitute(atom.lhs, subst)
        rhs = substitute(atom.rhs, subst)
        if lhs == rhs:
            return None  # t != t is false: cube unsatisfiable
        if is_ground(lhs) and is_ground(rhs):
            continue  # distinct ground terms: literal is true, drop it
        kept.append(Not(Eq(lhs, rhs)))
    body = tuple(a.substituted(subst) for a in cl.body)
    head = None if cl.head is None else cl.head.substituted(subst)
    return Clause(conj(*kept), body, head, cl.name)


# ----------------------------------------------------------------------
# Disequality encoding (Sec. 4.4)
# ----------------------------------------------------------------------
def encode_diseq(system: CHCSystem) -> CHCSystem:
    """Replace disequality literals by ``diseq`` atoms and add their rules.

    Expects a normalized system (constraints are conjunctions of
    disequalities).  The resulting system is constraint-free; by Lemma 2 /
    Theorem 5 any of its first-order models induces a Herbrand model of the
    original system.
    """
    out = CHCSystem(system.adts, name=system.name)
    for pred in system.predicates.values():
        out.declare(pred)
    used_sorts: set[Sort] = set()
    for cl in system.clauses:
        literals = _constraint_literals(cl.constraint)
        extra: list[BodyAtom] = []
        for literal in literals:
            atom, positive = literal_parts(literal)
            if positive or not isinstance(atom, Eq):
                raise CHCError(
                    f"clause not normalized before diseq encoding: {cl}"
                )
            sort = atom.lhs.sort
            used_sorts.add(sort)
            extra.append(
                BodyAtom(diseq_symbol(sort), (atom.lhs, atom.rhs))
            )
        out.add(Clause(TRUE, cl.body + tuple(extra), cl.head, cl.name))
    # transitively close: diseq of a sort needs diseq of its argument sorts
    frontier = set(used_sorts)
    while frontier:
        sort = frontier.pop()
        for c in system.adts.constructors(sort):
            for arg_sort in c.arg_sorts:
                if arg_sort not in used_sorts:
                    used_sorts.add(arg_sort)
                    frontier.add(arg_sort)
    for sort in sorted(used_sorts, key=lambda s: s.name):
        out.extend(diseq_rules(system.adts, sort))
    return out


def diseq_rules(adts: ADTSystem, sort: Sort) -> list[Clause]:
    """The Horn rules defining ``diseq_sigma`` (Sec. 4.4).

    Their least Herbrand model interprets ``diseq_sigma`` as true
    disequality (Lemma 3), and any model over-approximates it soundly
    (Lemma 4).
    """
    symbol = diseq_symbol(sort)
    rules: list[Clause] = []
    constructors = adts.constructors(sort)
    counter = itertools.count()

    def fresh_args(c: FuncSymbol, tag: str) -> tuple[Term, ...]:
        return tuple(
            Var(f"d!{tag}{next(counter)}", s) for s in c.arg_sorts
        )

    for c1 in constructors:
        for c2 in constructors:
            if c1.name >= c2.name:
                continue
            left = App(c1, fresh_args(c1, "a"))
            right = App(c2, fresh_args(c2, "b"))
            rules.append(
                Clause(
                    TRUE,
                    (),
                    BodyAtom(symbol, (left, right)),
                    f"diseq-ctor-{c1.name}-{c2.name}",
                )
            )
            rules.append(
                Clause(
                    TRUE,
                    (),
                    BodyAtom(symbol, (right, left)),
                    f"diseq-ctor-{c2.name}-{c1.name}",
                )
            )
    for c in constructors:
        for i, arg_sort in enumerate(c.arg_sorts):
            x = Var(f"d!x{next(counter)}", arg_sort)
            y = Var(f"d!y{next(counter)}", arg_sort)
            left_args = list(fresh_args(c, "l"))
            right_args = list(fresh_args(c, "r"))
            left_args[i] = x
            right_args[i] = y
            rules.append(
                Clause(
                    TRUE,
                    (BodyAtom(diseq_symbol(arg_sort), (x, y)),),
                    BodyAtom(
                        symbol,
                        (App(c, tuple(left_args)), App(c, tuple(right_args))),
                    ),
                    f"diseq-arg-{c.name}-{i}",
                )
            )
    return rules


def _constraint_literals(constraint: Formula) -> list[Formula]:
    """The literals of a normalized (conjunctive) constraint."""
    if constraint == TRUE:
        return []
    if isinstance(constraint, (Eq, Not)):
        return [constraint]
    if not hasattr(constraint, "operands"):
        raise CHCError(f"unexpected constraint shape: {constraint}")
    literals: list[Formula] = []
    for part in constraint.operands:  # type: ignore[union-attr]
        literals.extend(_constraint_literals(part))
    return literals


# ----------------------------------------------------------------------
# Full pipeline
# ----------------------------------------------------------------------
def preprocess(system: CHCSystem) -> CHCSystem:
    """Figure 1 left-to-right: selectors out, normalize, diseq-encode.

    The result is a constraint-free CHC system over EUF, ready for the
    finite model finder.
    """
    return encode_diseq(normalize(remove_selectors(system)))


def is_constraint_free(system: CHCSystem) -> bool:
    """Whether every clause constraint is trivially true."""
    return all(cl.constraint == TRUE for cl in system.clauses)


def has_disequalities(system: CHCSystem) -> bool:
    """Whether any clause uses a disequality (directly or via ``diseq``)."""
    for cl in system.clauses:
        for literal in _constraint_literals_safe(cl.constraint):
            atom, positive = literal_parts(literal)
            if isinstance(atom, Eq) and not positive:
                return True
        for atom in cl.body:
            if is_diseq_symbol(atom.pred):
                return True
    return False


def _constraint_literals_safe(constraint: Formula) -> list[Formula]:
    try:
        return _constraint_literals(constraint)
    except CHCError:
        return []
