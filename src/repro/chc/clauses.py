"""Constrained Horn clauses over ADTs (Definition 1).

A clause is ``constraint /\\ R1(t1) /\\ ... /\\ Rm(tm) -> H`` where the
constraint lives in the assertion language (equalities/testers over ADT
terms) and ``H`` is either an uninterpreted atom or bottom (query clause).

The IR intentionally keeps the constraint separate from the uninterpreted
body atoms, matching the paper's presentation and making the Sec. 4
preprocessing passes (equality elimination, diseq encoding, tester/selector
removal) local rewrites of clause parts.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional, Sequence

from repro.logic.adt import ADTSystem
from repro.logic.formulas import (
    Formula,
    PredAtom,
    TRUE,
    conj,
    formula_vars,
    substitute_formula,
)
from repro.logic.sorts import PredSymbol, Sort
from repro.logic.terms import Substitution, Term, Var, substitute, variables


class CHCError(ValueError):
    """Raised on malformed clauses or systems."""


@dataclass(frozen=True)
class BodyAtom:
    """An occurrence ``R(t1, ..., tn)`` of an uninterpreted symbol in a body.

    ``universal_vars`` supports bodies with an inner universal quantifier
    block, needed for the STLC verification condition of Fig. 2 whose query
    clause is ``forall e. (forall a b. typeCheck(...)) -> false``.  For
    ordinary CHCs the tuple is empty.
    """

    pred: PredSymbol
    args: tuple[Term, ...]
    universal_vars: tuple[Var, ...] = ()

    def __post_init__(self) -> None:
        if len(self.args) != self.pred.arity:
            raise CHCError(
                f"{self.pred.name} expects {self.pred.arity} args, "
                f"got {len(self.args)}"
            )
        for expected, arg in zip(self.pred.arg_sorts, self.args):
            if arg.sort != expected:
                raise CHCError(
                    f"argument {arg} of {self.pred.name} has sort {arg.sort},"
                    f" expected {expected}"
                )

    @property
    def atom(self) -> PredAtom:
        return PredAtom(self.pred, self.args)

    def free_vars(self) -> set[Var]:
        out: set[Var] = set()
        for arg in self.args:
            out |= variables(arg)
        return out - set(self.universal_vars)

    def substituted(self, subst: Substitution) -> "BodyAtom":
        clean = {
            v: t for v, t in subst.items() if v not in self.universal_vars
        }
        return BodyAtom(
            self.pred,
            tuple(substitute(a, clean) for a in self.args),
            self.universal_vars,
        )

    def __str__(self) -> str:
        body = f"{self.pred.name}({', '.join(str(a) for a in self.args)})"
        if self.universal_vars:
            names = ", ".join(v.name for v in self.universal_vars)
            return f"(forall {names}. {body})"
        return body


@dataclass(frozen=True)
class Clause:
    """A constrained Horn clause.

    ``head is None`` encodes a query clause (head ⊥).  All free variables
    are implicitly universally quantified.
    """

    constraint: Formula
    body: tuple[BodyAtom, ...]
    head: Optional[BodyAtom]
    name: str = ""

    def __post_init__(self) -> None:
        if self.head is not None and self.head.universal_vars:
            raise CHCError("clause heads cannot carry universal blocks")

    @property
    def is_query(self) -> bool:
        return self.head is None

    @property
    def is_fact(self) -> bool:
        return self.head is not None and not self.body

    def free_vars(self) -> set[Var]:
        out = set(formula_vars(self.constraint))
        for atom in self.body:
            out |= atom.free_vars()
        if self.head is not None:
            out |= self.head.free_vars()
        return out

    def predicates(self) -> set[PredSymbol]:
        preds = {a.pred for a in self.body}
        if self.head is not None:
            preds.add(self.head.pred)
        return preds

    def substituted(self, subst: Substitution) -> "Clause":
        return Clause(
            substitute_formula(self.constraint, subst),
            tuple(a.substituted(subst) for a in self.body),
            None if self.head is None else self.head.substituted(subst),
            self.name,
        )

    def with_constraint(self, constraint: Formula) -> "Clause":
        return replace(self, constraint=constraint)

    def renamed(self, suffix: str) -> "Clause":
        """A variant with every variable renamed by appending ``suffix``."""
        renaming = {
            v: Var(v.name + suffix, v.sort) for v in self.free_vars()
        }
        return self.substituted(renaming)

    def __str__(self) -> str:
        parts: list[str] = []
        if self.constraint != TRUE:
            parts.append(str(self.constraint))
        parts.extend(str(a) for a in self.body)
        premise = " & ".join(parts) if parts else "true"
        conclusion = "false" if self.head is None else str(self.head)
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{premise} -> {conclusion}"


def clause(
    body: Sequence[BodyAtom],
    head: Optional[BodyAtom],
    constraint: Formula = TRUE,
    name: str = "",
) -> Clause:
    """Convenience constructor for :class:`Clause`."""
    return Clause(constraint, tuple(body), head, name)


@dataclass
class CHCSystem:
    """A finite set of CHCs over a fixed ADT system.

    Carries the ADT system (assertion-language signature), the declared
    uninterpreted symbols, and the clause list.
    """

    adts: ADTSystem
    predicates: dict[str, PredSymbol] = field(default_factory=dict)
    clauses: list[Clause] = field(default_factory=list)
    name: str = ""

    def declare(self, symbol: PredSymbol) -> PredSymbol:
        existing = self.predicates.get(symbol.name)
        if existing is not None and existing != symbol:
            raise CHCError(
                f"predicate {symbol.name!r} redeclared with different arity"
            )
        self.predicates[symbol.name] = symbol
        return symbol

    def add(self, new_clause: Clause) -> Clause:
        for p in new_clause.predicates():
            self.declare(p)
        self.clauses.append(new_clause)
        return new_clause

    def extend(self, new_clauses: Iterable[Clause]) -> None:
        for c in new_clauses:
            self.add(c)

    @property
    def queries(self) -> list[Clause]:
        return [c for c in self.clauses if c.is_query]

    @property
    def definite_clauses(self) -> list[Clause]:
        return [c for c in self.clauses if not c.is_query]

    def clauses_defining(self, pred: PredSymbol) -> list[Clause]:
        return [
            c
            for c in self.clauses
            if c.head is not None and c.head.pred == pred
        ]

    def copy(self) -> "CHCSystem":
        system = CHCSystem(self.adts, dict(self.predicates), list(self.clauses))
        system.name = self.name
        return system

    def fresh_pred_name(self, base: str) -> str:
        if base not in self.predicates:
            return base
        for i in range(1, 10_000):
            candidate = f"{base}_{i}"
            if candidate not in self.predicates:
                return candidate
        raise CHCError(f"cannot find a fresh name based on {base!r}")

    def __str__(self) -> str:
        return "\n".join(str(c) for c in self.clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)
