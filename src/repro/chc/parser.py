"""SMT-LIB2 (CHC-COMP flavoured) reader for CHC systems over ADTs.

RInGen accepts input clauses in SMT-LIB2; we support the fragment used by
the paper's benchmark sets:

* ``(declare-datatypes ((S 0) ...) ((ctor (sel Sort) ...) ...))`` and the
  legacy ``(declare-datatype S ((ctor ...) ...))`` forms,
* ``(declare-fun P (Sorts) Bool)`` for uninterpreted predicates,
* ``(assert (forall (vars) (=> body head)))`` Horn clauses, where bodies
  are conjunctions of equalities, disequalities (``(not (= ...))`` or
  ``distinct``), testers ``((_ is ctor) t)``, selector applications and
  predicate atoms; heads are predicate atoms or ``false``,
* ``(check-sat)`` / ``(get-model)`` / ``(set-logic ...)`` are accepted and
  ignored.

The printer below emits the same fragment, so parse/print round-trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from repro.chc.clauses import BodyAtom, CHCError, CHCSystem, Clause
from repro.chc.transform import selector_func
from repro.logic.adt import ADT, ADTSystem
from repro.logic.formulas import (
    Eq,
    Formula,
    Not,
    PredAtom,
    TRUE,
    Tester,
    conj,
    disj,
    neg,
)
from repro.logic.sorts import FuncSymbol, PredSymbol, Sort
from repro.logic.terms import App, Term, Var


class ParseError(ValueError):
    """Raised on malformed SMT-LIB input."""


SExpr = Union[str, list]


def tokenize(text: str) -> Iterator[str]:
    """SMT-LIB token stream (parens, atoms, ``;`` comments, ``|..|`` names)."""
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
        elif ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch in "()":
            yield ch
            i += 1
        elif ch == "|":
            j = text.find("|", i + 1)
            if j < 0:
                raise ParseError("unterminated |quoted| symbol")
            yield text[i + 1 : j]
            i = j + 1
        else:
            j = i
            while j < n and text[j] not in " \t\r\n();|":
                j += 1
            yield text[i:j]
            i = j


def parse_sexprs(text: str) -> list[SExpr]:
    """Parse a sequence of s-expressions."""
    tokens = list(tokenize(text))
    pos = 0

    def parse_one() -> SExpr:
        nonlocal pos
        if pos >= len(tokens):
            raise ParseError("unexpected end of input")
        token = tokens[pos]
        pos += 1
        if token == "(":
            items: list[SExpr] = []
            while pos < len(tokens) and tokens[pos] != ")":
                items.append(parse_one())
            if pos >= len(tokens):
                raise ParseError("missing closing parenthesis")
            pos += 1
            return items
        if token == ")":
            raise ParseError("unbalanced closing parenthesis")
        return token

    out: list[SExpr] = []
    while pos < len(tokens):
        out.append(parse_one())
    return out


@dataclass
class _DatatypeDecl:
    sort: Sort
    constructors: list[tuple[str, list[tuple[str, str]]]]  # (ctor, [(sel, sort)])


class SmtLibReader:
    """Stateful reader turning SMT-LIB commands into a :class:`CHCSystem`."""

    def __init__(self) -> None:
        self._datatypes: list[_DatatypeDecl] = []
        self._predicates: dict[str, PredSymbol] = {}
        self._selector_names: dict[str, tuple[str, int]] = {}
        self._pending_asserts: list[SExpr] = []
        self._name = ""

    # -- command dispatch ------------------------------------------------
    def read(self, text: str) -> CHCSystem:
        for command in parse_sexprs(text):
            self._command(command)
        return self.finish()

    def _command(self, command: SExpr) -> None:
        if not isinstance(command, list) or not command:
            raise ParseError(f"expected a command, got {command!r}")
        head = command[0]
        if head in ("set-logic", "set-info", "set-option", "check-sat",
                    "get-model", "exit", "get-info"):
            return
        if head == "declare-datatypes":
            self._declare_datatypes(command)
        elif head == "declare-datatype":
            self._declare_datatype(command)
        elif head in ("declare-fun", "declare-rel"):
            self._declare_fun(command)
        elif head == "assert":
            if len(command) != 2:
                raise ParseError("assert takes one argument")
            self._pending_asserts.append(command[1])
        else:
            raise ParseError(f"unsupported command {head!r}")

    def _declare_datatypes(self, command: SExpr) -> None:
        if len(command) != 3:
            raise ParseError("declare-datatypes takes two arguments")
        sort_decls, bodies = command[1], command[2]
        if not isinstance(sort_decls, list) or not isinstance(bodies, list):
            raise ParseError("malformed declare-datatypes")
        if len(sort_decls) != len(bodies):
            raise ParseError("declare-datatypes arity mismatch")
        for decl, body in zip(sort_decls, bodies):
            if (
                not isinstance(decl, list)
                or len(decl) != 2
                or decl[1] != "0"
            ):
                raise ParseError(
                    "only monomorphic datatypes are supported"
                )
            self._record_datatype(str(decl[0]), body)

    def _declare_datatype(self, command: SExpr) -> None:
        if len(command) != 3:
            raise ParseError("declare-datatype takes two arguments")
        self._record_datatype(str(command[1]), command[2])

    def _record_datatype(self, sort_name: str, body: SExpr) -> None:
        if not isinstance(body, list):
            raise ParseError(f"malformed datatype body for {sort_name}")
        constructors: list[tuple[str, list[tuple[str, str]]]] = []
        for ctor in body:
            if isinstance(ctor, str):
                constructors.append((ctor, []))
                continue
            if not isinstance(ctor, list) or not ctor:
                raise ParseError(f"malformed constructor in {sort_name}")
            name = str(ctor[0])
            fields: list[tuple[str, str]] = []
            for sel in ctor[1:]:
                if not isinstance(sel, list) or len(sel) != 2:
                    raise ParseError(
                        f"malformed selector in constructor {name}"
                    )
                fields.append((str(sel[0]), str(sel[1])))
            constructors.append((name, fields))
        self._datatypes.append(_DatatypeDecl(Sort(sort_name), constructors))

    def _declare_fun(self, command: SExpr) -> None:
        if len(command) == 3:  # declare-rel style: (declare-rel P (Sorts))
            name, arg_sorts = str(command[1]), command[2]
            result = "Bool"
        elif len(command) == 4:
            name, arg_sorts, result = (
                str(command[1]),
                command[2],
                str(command[3]),
            )
        else:
            raise ParseError("malformed declare-fun")
        if result != "Bool":
            raise ParseError(
                f"only Bool-valued declarations supported, got {result}"
            )
        if not isinstance(arg_sorts, list):
            raise ParseError("malformed declare-fun argument sorts")
        self._predicates[name] = PredSymbol(
            name, tuple(Sort(str(s)) for s in arg_sorts)
        )

    # -- finishing: build ADT system, then parse asserts -----------------
    def finish(self) -> CHCSystem:
        adts = self._build_adts()
        system = CHCSystem(adts, name=self._name)
        for pred in self._predicates.values():
            system.declare(pred)
        for index, expr in enumerate(self._pending_asserts):
            for cl in self._parse_assert(expr, adts, index):
                system.add(cl)
        return system

    def _build_adts(self) -> ADTSystem:
        declared = {d.sort for d in self._datatypes}
        adts: list[ADT] = []
        for decl in self._datatypes:
            constructors: list[FuncSymbol] = []
            for ctor_name, fields in decl.constructors:
                arg_sorts = []
                for position, (sel_name, sort_name) in enumerate(fields):
                    sort = Sort(sort_name)
                    if sort not in declared:
                        raise ParseError(
                            f"constructor {ctor_name} uses undeclared sort "
                            f"{sort_name}"
                        )
                    arg_sorts.append(sort)
                    self._selector_names[sel_name] = (ctor_name, position)
                constructors.append(
                    FuncSymbol(ctor_name, tuple(arg_sorts), decl.sort)
                )
            adts.append(ADT(decl.sort, tuple(constructors)))
        if not adts:
            raise ParseError("no datatypes declared")
        return ADTSystem(adts)

    def _parse_assert(
        self, expr: SExpr, adts: ADTSystem, index: int
    ) -> list[Clause]:
        bound: dict[str, Var] = {}
        if isinstance(expr, list) and expr and expr[0] == "forall":
            if len(expr) != 3:
                raise ParseError("malformed forall")
            for decl in expr[1]:
                if not isinstance(decl, list) or len(decl) != 2:
                    raise ParseError("malformed bound variable")
                var = Var(str(decl[0]), Sort(str(decl[1])))
                bound[var.name] = var
            expr = expr[2]
        if isinstance(expr, list) and expr and expr[0] == "=>":
            if len(expr) != 3:
                raise ParseError("malformed implication")
            body_expr, head_expr = expr[1], expr[2]
        elif isinstance(expr, list) and expr and expr[0] == "not":
            body_expr, head_expr = expr[1], "false"
        else:
            body_expr, head_expr = "true", expr
        constraint, body_atoms = self._parse_body(body_expr, bound, adts)
        head = self._parse_head(head_expr, bound, adts)
        name = f"clause-{index}"
        return [Clause(constraint, tuple(body_atoms), head, name)]

    def _parse_body(
        self, expr: SExpr, bound: dict[str, Var], adts: ADTSystem
    ) -> tuple[Formula, list[BodyAtom]]:
        constraints: list[Formula] = []
        atoms: list[BodyAtom] = []
        for part in self._conjuncts(expr):
            parsed = self._parse_body_part(part, bound, adts)
            if isinstance(parsed, BodyAtom):
                atoms.append(parsed)
            else:
                constraints.append(parsed)
        return conj(*constraints), atoms

    def _conjuncts(self, expr: SExpr) -> list[SExpr]:
        if isinstance(expr, list) and expr and expr[0] == "and":
            out: list[SExpr] = []
            for part in expr[1:]:
                out.extend(self._conjuncts(part))
            return out
        if expr == "true":
            return []
        return [expr]

    def _parse_body_part(
        self, expr: SExpr, bound: dict[str, Var], adts: ADTSystem
    ) -> Union[Formula, BodyAtom]:
        if isinstance(expr, list) and expr and expr[0] == "forall":
            inner_bound = dict(bound)
            uvars = []
            for decl in expr[1]:
                var = Var(str(decl[0]), Sort(str(decl[1])))
                inner_bound[var.name] = var
                uvars.append(var)
            inner = self._parse_body_part(expr[2], inner_bound, adts)
            if not isinstance(inner, BodyAtom):
                raise ParseError(
                    "forall in clause bodies must wrap a predicate atom"
                )
            return BodyAtom(inner.pred, inner.args, tuple(uvars))
        if isinstance(expr, list) and expr:
            head = expr[0]
            if isinstance(head, str) and head in self._predicates:
                pred = self._predicates[head]
                args = tuple(
                    self._parse_term(a, bound, adts) for a in expr[1:]
                )
                return BodyAtom(pred, args)
        return self._parse_constraint(expr, bound, adts)

    def _parse_constraint(
        self, expr: SExpr, bound: dict[str, Var], adts: ADTSystem
    ) -> Formula:
        if expr == "true":
            return TRUE
        if isinstance(expr, list) and expr:
            op = expr[0]
            if op == "=":
                lhs = self._parse_term(expr[1], bound, adts)
                rhs = self._parse_term(expr[2], bound, adts)
                return Eq(lhs, rhs)
            if op == "distinct":
                lhs = self._parse_term(expr[1], bound, adts)
                rhs = self._parse_term(expr[2], bound, adts)
                return Not(Eq(lhs, rhs))
            if op == "not":
                return neg(self._parse_constraint(expr[1], bound, adts))
            if op == "and":
                return conj(
                    *(
                        self._parse_constraint(e, bound, adts)
                        for e in expr[1:]
                    )
                )
            if op == "or":
                return disj(
                    *(
                        self._parse_constraint(e, bound, adts)
                        for e in expr[1:]
                    )
                )
            if isinstance(op, list) and len(op) == 3 and op[0] == "_" and op[1] == "is":
                ctor = adts.constructor(str(op[2]))
                return Tester(ctor, self._parse_term(expr[1], bound, adts))
        raise ParseError(f"cannot parse constraint {expr!r}")

    def _parse_head(
        self, expr: SExpr, bound: dict[str, Var], adts: ADTSystem
    ) -> Optional[BodyAtom]:
        if expr == "false":
            return None
        if isinstance(expr, list) and expr:
            head = expr[0]
            if isinstance(head, str) and head in self._predicates:
                pred = self._predicates[head]
                args = tuple(
                    self._parse_term(a, bound, adts) for a in expr[1:]
                )
                return BodyAtom(pred, args)
        if isinstance(expr, str) and expr in self._predicates:
            return BodyAtom(self._predicates[expr], ())
        raise ParseError(f"cannot parse clause head {expr!r}")

    def _parse_term(
        self, expr: SExpr, bound: dict[str, Var], adts: ADTSystem
    ) -> Term:
        if isinstance(expr, str):
            if expr in bound:
                return bound[expr]
            try:
                ctor = adts.constructor(expr)
            except Exception:
                raise ParseError(f"unknown symbol {expr!r}") from None
            if ctor.arity != 0:
                raise ParseError(f"constructor {expr} expects arguments")
            return App(ctor)
        if not expr:
            raise ParseError("empty term")
        head = expr[0]
        if isinstance(head, str) and head in self._selector_names:
            ctor_name, index = self._selector_names[head]
            ctor = adts.constructor(ctor_name)
            inner = self._parse_term(expr[1], bound, adts)
            return App(selector_func(ctor, index), (inner,))
        if isinstance(head, str):
            ctor = adts.constructor(head)
            args = tuple(self._parse_term(a, bound, adts) for a in expr[1:])
            return App(ctor, args)
        raise ParseError(f"cannot parse term {expr!r}")


def parse_chc(text: str, name: str = "") -> CHCSystem:
    """Parse an SMT-LIB2 CHC problem into a :class:`CHCSystem`."""
    reader = SmtLibReader()
    reader._name = name
    return reader.read(text)
