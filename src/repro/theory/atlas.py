"""The expressiveness atlas: Figure 3 with executable witnesses.

Each of the five programs of the paper is packaged with:

* its CHC system (from :mod:`repro.problems`),
* the ground-truth membership of its canonical safe invariant,
* the *positive* witnesses the paper gives: the regular invariants of
  Props. 4/6/9 (explicit DFTAs, transcribed from the paper's transition
  tables), the elementary invariants of Examples 4/11 and the size
  invariants of Props. 8/12,
* its Figure 3 classification (membership in Reg / Elem / SizeElem),
  with the supporting proposition numbers.

The test suite checks every positive witness is a genuine inductive
invariant (via the automaton→finite-model correspondence and exact
Herbrand evaluation), and replays the negative results with the pumping
refuters of :mod:`repro.theory.pumping`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.automata.dfta import DFTA, make_dfta
from repro.chc.clauses import CHCSystem
from repro.logic.adt import (
    ADTSystem,
    NAT,
    TREE,
    nat_system,
    nat_value,
    tree_system,
)
from repro.logic.sorts import PredSymbol
from repro.logic.terms import App, Term
from repro.problems import (
    DEC,
    DISEQP,
    EQP,
    EVEN,
    EVENLEFT,
    GT,
    INC,
    LT,
    diag_system,
    even_system,
    evenleft_system,
    incdec_system,
    ltgt_system,
)


# ----------------------------------------------------------------------
# ground-truth membership of the canonical invariants
# ----------------------------------------------------------------------
def even_member(t: Term) -> bool:
    """``{S^2n(Z)}`` — the unique safe invariant of *Even* (Example 4)."""
    return nat_value(t) % 2 == 0


def inc_member(x: Term, y: Term) -> bool:
    """Least model of ``inc``: y = x + 1."""
    return nat_value(y) == nat_value(x) + 1


def dec_member(x: Term, y: Term) -> bool:
    return nat_value(x) == nat_value(y) + 1


def leftmost_length(t: Term) -> int:
    """Number of nodes along the leftmost branch."""
    n = 0
    while isinstance(t, App) and t.func.name == "node":
        n += 1
        t = t.args[0]
    return n


def evenleft_member(t: Term) -> bool:
    """Least model of *EvenLeft*: even leftmost branch length."""
    return leftmost_length(t) % 2 == 0


def eq_member(x: Term, y: Term) -> bool:
    return x == y


def diseq_member(x: Term, y: Term) -> bool:
    return x != y


def lt_member(x: Term, y: Term) -> bool:
    return nat_value(x) < nat_value(y)


def gt_member(x: Term, y: Term) -> bool:
    return nat_value(x) > nat_value(y)


# ----------------------------------------------------------------------
# the paper's automata (Props. 4, 6, 9)
# ----------------------------------------------------------------------
def even_automaton(adts: Optional[ADTSystem] = None) -> DFTA:
    """Prop. 6 / Example 1's automaton: parity of ``S`` applications."""
    adts = adts or nat_system()
    return make_dfta(
        adts,
        {NAT: 2},
        {
            ("Z", ()): 0,
            ("S", (0,)): 1,
            ("S", (1,)): 0,
        },
        [(0,)],
        (NAT,),
    )


def incdec_automata(
    adts: Optional[ADTSystem] = None,
) -> dict[PredSymbol, DFTA]:
    """Prop. 4: the mod-3 2-automata for ``inc`` and ``dec``.

    ``inc`` accepts ``(x mod 3, y mod 3) in {(0,1), (1,2), (2,0)}`` —
    an over-approximation of +1 that still refutes the query.
    """
    adts = adts or nat_system()
    transitions = {
        ("Z", ()): 0,
        ("S", (0,)): 1,
        ("S", (1,)): 2,
        ("S", (2,)): 0,
    }
    inc = make_dfta(
        adts, {NAT: 3}, transitions, [(0, 1), (1, 2), (2, 0)], (NAT, NAT)
    )
    dec = make_dfta(
        adts, {NAT: 3}, transitions, [(1, 0), (2, 1), (0, 2)], (NAT, NAT)
    )
    return {INC: inc, DEC: dec}


def evenleft_automaton(adts: Optional[ADTSystem] = None) -> DFTA:
    """Prop. 9's automaton: parity of the leftmost branch."""
    adts = adts or tree_system()
    return make_dfta(
        adts,
        {TREE: 2},
        {
            ("leaf", ()): 0,
            ("node", (0, 0)): 1,
            ("node", (0, 1)): 1,
            ("node", (1, 0)): 0,
            ("node", (1, 1)): 0,
        },
        [(0,)],
        (TREE,),
    )


# ----------------------------------------------------------------------
# Figure 3 classification
# ----------------------------------------------------------------------
@dataclass
class AtlasEntry:
    """One program of Figure 3 with witnesses and classification."""

    name: str
    system_factory: Callable[[], CHCSystem]
    in_reg: bool
    in_elem: bool
    in_sizeelem: bool
    positive_reference: str
    negative_reference: str = ""

    @property
    def classification(self) -> dict[str, bool]:
        return {
            "Reg": self.in_reg,
            "Elem": self.in_elem,
            "SizeElem": self.in_sizeelem,
        }


ATLAS: dict[str, AtlasEntry] = {
    "Even": AtlasEntry(
        "Even",
        even_system,
        in_reg=True,
        in_elem=False,
        in_sizeelem=True,
        positive_reference="Prop. 6 (Reg), Prop. 8 (SizeElem)",
        negative_reference="Prop. 1 (not Elem, by the Elem pumping lemma)",
    ),
    "IncDec": AtlasEntry(
        "IncDec",
        incdec_system,
        in_reg=True,
        in_elem=True,
        in_sizeelem=True,
        positive_reference="Example 4 (Elem), Prop. 4 (Reg)",
    ),
    "EvenLeft": AtlasEntry(
        "EvenLeft",
        evenleft_system,
        in_reg=True,
        in_elem=False,
        in_sizeelem=False,
        positive_reference="Prop. 9 (Reg)",
        negative_reference=(
            "Prop. 2 (not SizeElem, by the SizeElem pumping lemma); "
            "Elem ⊆ SizeElem gives not Elem"
        ),
    ),
    "Diag": AtlasEntry(
        "Diag",
        diag_system,
        in_reg=False,
        in_elem=True,
        in_sizeelem=True,
        positive_reference="Prop. 11 (Elem: eq(x,y) ≡ x=y)",
        negative_reference=(
            "Prop. 11 (not Reg: tree automata cannot express disequality, "
            "Comon et al.)"
        ),
    ),
    "LtGt": AtlasEntry(
        "LtGt",
        ltgt_system,
        in_reg=False,
        in_elem=False,
        in_sizeelem=True,
        positive_reference="Prop. 12 (SizeElem: size(x) < size(y))",
        negative_reference=(
            "Prop. 12 (not Reg: union lt ∪ gt would make Diag regular)"
        ),
    ),
}


def figure3_rows() -> list[dict[str, object]]:
    """Figure 3 as a table: one row per program with class membership."""
    rows = []
    for name, entry in ATLAS.items():
        row: dict[str, object] = {"program": name}
        row.update(entry.classification)
        rows.append(row)
    return rows


def format_figure3() -> str:
    """Render Figure 3's content as an ASCII table."""
    rows = figure3_rows()
    header = f"{'program':<10} {'Reg':<5} {'Elem':<6} {'SizeElem':<8}"
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['program']:<10} "
            f"{'yes' if row['Reg'] else 'no':<5} "
            f"{'yes' if row['Elem'] else 'no':<6} "
            f"{'yes' if row['SizeElem'] else 'no':<8}"
        )
    return "\n".join(lines)
