"""Decision procedures for Elem-definability of regular Nat languages.

The paper's Sec. 2 recalls Enderton's classical fact: the first-order
language of the ``Nat`` datatype (successor arithmetic) defines exactly
the **finite and cofinite** sets, and Sec. 6.2 closes with the remark
that the Elem pumping lemma specializes on ``Nat`` to exactly that
characterization: *"every definable set L is either finite or cofinite."*

Since Peano numerals are in bijection with ℕ, a regular 1-dimensional
``Nat`` language is an eventually-periodic set of naturals; it is finite
or cofinite iff its eventual period collapses to all-out or all-in.  That
turns Elem-definability of regular Nat invariants into a *decision
procedure* over the automaton:

* :func:`nat_language_profile` — the eventually-periodic presentation
  (prefix bits + period bits) read off the automaton's ``S``-orbit,
* :func:`is_finite_language` / :func:`is_cofinite_language`,
* :func:`is_elem_definable_nat` — finite or cofinite,
* :func:`elem_defining_formula` — a human-readable first-order definition
  when one exists (a disjunction of equalities, possibly negated).

The atlas ties this back to the paper: Even's automaton is neither finite
nor cofinite (hence Prop. 1), while the invariant RInGen finds for a
``x = c`` style property is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.automata.dfta import DFTA, AutomatonError
from repro.logic.adt import NAT
from repro.logic.sorts import Sort


@dataclass(frozen=True)
class NatLanguageProfile:
    """An eventually periodic subset of ℕ.

    Membership of ``n``: ``prefix[n]`` when ``n < len(prefix)``, else
    ``period[(n - len(prefix)) % len(period)]``.
    """

    prefix: tuple[bool, ...]
    period: tuple[bool, ...]

    def member(self, n: int) -> bool:
        if n < len(self.prefix):
            return self.prefix[n]
        return self.period[(n - len(self.prefix)) % len(self.period)]

    @property
    def eventually_empty(self) -> bool:
        return not any(self.period)

    @property
    def eventually_full(self) -> bool:
        return all(self.period)


def nat_language_profile(auto: DFTA, *, sort: Sort = NAT) -> NatLanguageProfile:
    """Read the eventually-periodic presentation off the automaton.

    Follow the ``S``-orbit from the state of ``Z``: since the state space
    is finite the orbit enters a cycle; the pre-cycle part is the prefix,
    the cycle the period.
    """
    if auto.dimension != 1 or auto.final_sorts[0] != sort:
        raise AutomatonError("expects a 1-automaton over Nat")
    state = auto.transitions.get(("Z", ()))
    if state is None:
        return NatLanguageProfile((), (False,))
    finals = {q for (q,) in auto.finals}
    seen: dict[int, int] = {}
    bits: list[bool] = []
    current: Optional[int] = state
    position = 0
    while current is not None and current not in seen:
        seen[current] = position
        bits.append(current in finals)
        current = auto.transitions.get(("S", (current,)))
        position += 1
    if current is None:
        # the orbit dies: everything beyond is rejected (sink)
        return NatLanguageProfile(tuple(bits), (False,))
    start = seen[current]
    return NatLanguageProfile(tuple(bits[:start]), tuple(bits[start:]))


def is_finite_language(auto: DFTA) -> bool:
    """Whether the accepted Nat language is finite."""
    return nat_language_profile(auto).eventually_empty


def is_cofinite_language(auto: DFTA) -> bool:
    """Whether the accepted Nat language is cofinite."""
    return nat_language_profile(auto).eventually_full


def is_elem_definable_nat(auto: DFTA) -> bool:
    """Enderton / Sec. 2: definable in successor arithmetic iff the
    language is finite or cofinite."""
    profile = nat_language_profile(auto)
    return profile.eventually_empty or profile.eventually_full


def elem_defining_formula(auto: DFTA, *, var: str = "x") -> Optional[str]:
    """A first-order definition (rendered) when one exists, else ``None``.

    Finite languages become disjunctions of equalities ``x = S^k(Z)``;
    cofinite ones the negated disjunction over the complement.
    """
    profile = nat_language_profile(auto)
    horizon = len(profile.prefix) + len(profile.period)
    if profile.eventually_empty:
        members = [n for n in range(horizon) if profile.member(n)]
        if not members:
            return "false"
        return " | ".join(f"{var} = S^{n}(Z)" for n in members)
    if profile.eventually_full:
        non_members = [n for n in range(horizon) if not profile.member(n)]
        if not non_members:
            return "true"
        inner = " | ".join(f"{var} = S^{n}(Z)" for n in non_members)
        return f"~({inner})"
    return None
