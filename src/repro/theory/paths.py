"""Selector paths over ADT terms (Sec. 6.2 and Appendix B).

A *path* is a sequence of selectors ``S1 ... Sn``; applied to a ground term
it selects the subterm reached by following constructor arguments.  Paths
drive both the pumping machinery (``leaves_sigma``, simultaneous
replacement ``t[P <- u]``) and the Elem/SizeElem candidate languages of the
baseline solvers, whose normal-form atoms are built from paths
(Definition 6 / Definition 7).

Concretely a step ``(constructor name, index)`` selects the ``index``-th
argument of a term whose top constructor is that constructor; applying a
step to a term with a different top constructor is *undefined* (selectors
are guarded in the normal form by tester atoms).

Following the paper's convention, a path ``S1 ... Sn`` is applied
innermost-last: ``s(t) = S1(...(Sn(t)))``, so steps are stored outermost
selector first and ``apply`` walks them right to left.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.logic.adt import ADTSystem
from repro.logic.sorts import FuncSymbol, Sort
from repro.logic.terms import App, Term


class PathError(ValueError):
    """Raised when applying an undefined path."""


@dataclass(frozen=True, order=True)
class Step:
    """One selector: the ``index``-th argument of ``constructor``."""

    constructor: str
    index: int

    def __str__(self) -> str:
        return f"{self.constructor}.{self.index}"


@dataclass(frozen=True)
class Path:
    """A sequence of selectors, outermost first.

    ``Path((a, b))`` denotes the selector composition ``a(b(t))``: step
    ``b`` is applied to the term first.
    """

    steps: tuple[Step, ...] = ()

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        if not self.steps:
            return "<empty>"
        return " ".join(str(s) for s in self.steps)

    @property
    def is_empty(self) -> bool:
        return not self.steps

    def compose(self, inner: "Path") -> "Path":
        """``self`` applied after ``inner``: ``(self . inner)(t)``."""
        return Path(self.steps + inner.steps)

    def extend_inner(self, step: Step) -> "Path":
        """Append a step applied *first* (innermost position)."""
        return Path(self.steps + (step,))

    def extend_outer(self, step: Step) -> "Path":
        """Prepend a step applied *last* (outermost position)."""
        return Path((step,) + self.steps)

    def is_suffix_of(self, other: "Path") -> bool:
        """Whether ``self`` is a suffix of ``other``.

        With the innermost-last convention, a *suffix* of the selector word
        ``S1 ... Sn`` (per the paper) is applied to the term first, i.e. it
        is a *trailing* slice of ``steps``.
        """
        n = len(self.steps)
        if n > len(other.steps):
            return False
        return other.steps[len(other.steps) - n :] == self.steps

    def overlaps(self, other: "Path") -> bool:
        """Two paths overlap if one is a suffix of the other (Sec. 6.2)."""
        return self.is_suffix_of(other) or other.is_suffix_of(self)

    def strip_suffix(self, suffix: "Path") -> Optional["Path"]:
        """The ``r`` with ``self = r . suffix``, or ``None``."""
        if not suffix.is_suffix_of(self):
            return None
        return Path(self.steps[: len(self.steps) - len(suffix.steps)])


EMPTY_PATH = Path()


def apply_path(path: Path, term: Term, adts: ADTSystem) -> Term:
    """``s(g)``: the subterm of ``g`` at ``path`` (innermost step first)."""
    current = term
    for step in reversed(path.steps):
        if not isinstance(current, App) or current.func.name != step.constructor:
            raise PathError(
                f"path step {step} undefined on {current}"
            )
        current = current.args[step.index]
    return current


def path_defined(path: Path, term: Term, adts: ADTSystem) -> bool:
    """Whether ``path`` selects a subterm of ``term``."""
    try:
        apply_path(path, term, adts)
        return True
    except PathError:
        return False


def path_sorts(path: Path, adts: ADTSystem, source: Sort) -> Optional[Sort]:
    """The sort of ``path(t)`` for ``t`` of sort ``source``, or ``None``
    if the path is ill-sorted."""
    current = source
    for step in reversed(path.steps):
        try:
            func = adts.constructor(step.constructor)
        except Exception:
            return None
        if func.result_sort != current or step.index >= func.arity:
            return None
        current = func.arg_sorts[step.index]
    return current


def replace_at(
    term: Term, path: Path, replacement: Term, adts: ADTSystem
) -> Term:
    """``t[path <- replacement]``: replace the subterm at ``path``."""
    return replace_many(term, [(path, replacement)], adts)


def replace_many(
    term: Term,
    replacements: Sequence[tuple[Path, Term]],
    adts: ADTSystem,
) -> Term:
    """Simultaneous replacement ``t[p1 <- u1, ..., pn <- un]``.

    Paths must be pairwise non-overlapping (Sec. 6.2) except for exact
    duplicates, which must carry the same replacement.
    """
    for i, (p, u) in enumerate(replacements):
        for q, w in replacements[i + 1 :]:
            if p == q:
                if u != w:
                    raise PathError(
                        f"conflicting replacements at path {p}"
                    )
            elif p.overlaps(q):
                raise PathError(
                    f"overlapping replacement paths {p} and {q}"
                )
    return _replace(term, list(replacements), adts)


def _replace(
    term: Term,
    replacements: list[tuple[Path, Term]],
    adts: ADTSystem,
) -> Term:
    for path, replacement in replacements:
        if path.is_empty:
            return replacement
    if not isinstance(term, App):
        if replacements:
            raise PathError(f"path into non-application term {term}")
        return term
    by_index: dict[int, list[tuple[Path, Term]]] = {}
    for path, replacement in replacements:
        last = path.steps[-1]
        if last.constructor != term.func.name:
            raise PathError(
                f"path step {last} undefined on {term}"
            )
        by_index.setdefault(last.index, []).append(
            (Path(path.steps[:-1]), replacement)
        )
    new_args = list(term.args)
    for index, inner in by_index.items():
        new_args[index] = _replace(term.args[index], inner, adts)
    return App(term.func, tuple(new_args))


def paths_of(term: Term, adts: ADTSystem) -> Iterator[tuple[Path, Term]]:
    """All (path, subterm) pairs of a ground term, preorder."""
    def walk(t: Term, acc: Path) -> Iterator[tuple[Path, Term]]:
        yield acc, t
        if isinstance(t, App):
            for i, arg in enumerate(t.args):
                step = Step(t.func.name, i)
                # `acc` reaches `t`; selecting into `t` applies the new
                # step *after* acc, so it is the outermost selector
                yield from walk(arg, acc.extend_outer(step))

    yield from walk(term, EMPTY_PATH)


def is_leaf_term(term: Term, sort: Sort, adts: ADTSystem) -> bool:
    """Definition 4: a leaf term of ``sort`` contains no proper subterm of
    ``sort`` (and is itself of that sort)."""
    if term.sort != sort or not isinstance(term, App):
        return False
    return all(
        sub.sort != sort
        for arg in term.args
        for _, sub in paths_of(arg, adts)
    )


def leaves(term: Term, sort: Sort, adts: ADTSystem) -> list[Path]:
    """``leaves_sigma(g)``: paths whose subterm is a leaf term of ``sort``."""
    return [
        path
        for path, sub in paths_of(term, adts)
        if is_leaf_term(sub, sort, adts)
    ]


def all_paths(
    adts: ADTSystem, source: Sort, max_depth: int
) -> Iterator[tuple[Path, Sort]]:
    """All well-sorted paths applicable to ``source`` up to ``max_depth``.

    Used to build the candidate atom spaces of the baseline solvers.
    Yields ``(path, target sort)`` pairs, the empty path included.
    """
    frontier: list[tuple[Path, Sort]] = [(EMPTY_PATH, source)]
    yield EMPTY_PATH, source
    for _ in range(max_depth):
        next_frontier: list[tuple[Path, Sort]] = []
        for path, sort in frontier:
            for c in adts.constructors(sort):
                for i, arg_sort in enumerate(c.arg_sorts):
                    # new step selects deeper inside, applied first? No:
                    # extending *inner* would select before the existing
                    # path; to descend further we select the subterm of
                    # what the path produced, i.e. apply the new step
                    # after — prepend as outermost.
                    extended = path.extend_outer(Step(c.name, i))
                    yield extended, arg_sort
                    next_frontier.append((extended, arg_sort))
        frontier = next_frontier
