"""The Elem normal form of Definition 6, as executable formulas.

A normal-form formula is a DNF whose atoms are testers ``c?(s(x))``, path
equalities ``s(x) = s'(y)`` and ground equalities ``s(x) = g`` with
*guarded* selector semantics (an undefined path makes the atom false —
selectors in the paper's normal form are always guarded by testers, and
guarding is exactly what the undefined-is-false convention implements).

These classes are shared by the Elem baseline solver (its candidate
language) and by the pumping machinery of :mod:`repro.theory.pumping`
(Lemma 8 pumps normal-form cubes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.logic.adt import ADTSystem
from repro.logic.terms import Term, height
from repro.theory.paths import Path, PathError, apply_path


# ----------------------------------------------------------------------
# Candidate atoms (Definition 6 normal-form shapes)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathTesterAtom:
    """``c?(s(x_arg))`` — guarded: undefined path evaluates to false."""

    arg: int
    path: Path
    constructor: str

    def eval(self, args: Sequence[Term], adts: ADTSystem) -> bool:
        try:
            sub = apply_path(self.path, args[self.arg], adts)
        except PathError:
            return False
        return adts.test(self.constructor, sub)

    def __str__(self) -> str:
        inner = f"x{self.arg}" if self.path.is_empty else f"{self.path}(x{self.arg})"
        return f"{self.constructor}?({inner})"

    def complexity(self) -> int:
        return 1 + len(self.path)


@dataclass(frozen=True)
class PathEqAtom:
    """``s(x_i) = s'(x_j)`` — guarded on both sides."""

    left_arg: int
    left_path: Path
    right_arg: int
    right_path: Path

    def eval(self, args: Sequence[Term], adts: ADTSystem) -> bool:
        try:
            lhs = apply_path(self.left_path, args[self.left_arg], adts)
            rhs = apply_path(self.right_path, args[self.right_arg], adts)
        except PathError:
            return False
        return lhs == rhs

    def __str__(self) -> str:
        left = (
            f"x{self.left_arg}"
            if self.left_path.is_empty
            else f"{self.left_path}(x{self.left_arg})"
        )
        right = (
            f"x{self.right_arg}"
            if self.right_path.is_empty
            else f"{self.right_path}(x{self.right_arg})"
        )
        return f"{left} = {right}"

    def complexity(self) -> int:
        return 1 + len(self.left_path) + len(self.right_path)


@dataclass(frozen=True)
class GroundEqAtom:
    """``s(x_i) = g`` for a small ground term ``g``."""

    arg: int
    path: Path
    ground: Term

    def eval(self, args: Sequence[Term], adts: ADTSystem) -> bool:
        try:
            sub = apply_path(self.path, args[self.arg], adts)
        except PathError:
            return False
        return sub == self.ground

    def __str__(self) -> str:
        inner = f"x{self.arg}" if self.path.is_empty else f"{self.path}(x{self.arg})"
        return f"{inner} = {self.ground}"

    def complexity(self) -> int:
        return 1 + len(self.path) + height(self.ground)


Atom = object  # any of the three atom classes above


@dataclass(frozen=True)
class Literal:
    atom: Atom
    positive: bool

    def eval(self, args: Sequence[Term], adts: ADTSystem) -> bool:
        value = self.atom.eval(args, adts)  # type: ignore[attr-defined]
        return value if self.positive else not value

    def __str__(self) -> str:
        return str(self.atom) if self.positive else f"~({self.atom})"

    def complexity(self) -> int:
        return self.atom.complexity() + (0 if self.positive else 1)  # type: ignore[attr-defined]


@dataclass(frozen=True)
class ElemFormula:
    """A candidate in DNF: a tuple of cubes (tuples of literals).

    The empty DNF is ``false``; an empty cube is ``true``.
    """

    cubes: tuple[tuple[Literal, ...], ...]

    def eval(self, args: Sequence[Term], adts: ADTSystem) -> bool:
        return any(
            all(lit.eval(args, adts) for lit in cube) for cube in self.cubes
        )

    def __str__(self) -> str:
        if not self.cubes:
            return "false"
        rendered = []
        for cube in self.cubes:
            if not cube:
                rendered.append("true")
            else:
                rendered.append(" & ".join(str(l) for l in cube))
        return " | ".join(f"({c})" for c in rendered)

    def complexity(self) -> int:
        return sum(
            1 + sum(l.complexity() for l in cube) for cube in self.cubes
        )


ELEM_TRUE = ElemFormula(((),))
ELEM_FALSE = ElemFormula(())


