"""Executable pumping machinery for Elem and SizeElem (Sec. 6, Appendix B).

The paper's second contribution is a pair of pumping lemmas used to prove
*negative definability*: if a language were definable in Elem (resp.
SizeElem), big enough members could be pumped and stay inside — so finding
a pumped element outside the language refutes definability.  This module
makes that machinery executable:

* the pump-set construction of Lemma 8's proof: a congruence closure over
  selector paths built from the positive equalities of a normal-form cube
  (the Oppen-style graph of the proof), from which the replacement set
  ``P`` and the height threshold ``N`` are computed,
* :func:`pump` — the substitution ``g[P <- t]``,
* generic refuters: given a candidate normal-form formula claimed to
  define a language, search for a pumping counterexample (a pumped term on
  which formula and language disagree); every verdict is witnessed by a
  concrete term, so the refutation is self-checking,
* the size-indistinguishability refuter behind Prop. 2: two terms of equal
  size with different property values defeat any size-only template.

Used by the test suite to mechanically replay Prop. 1 (Even ∉ Elem),
Prop. 2 (EvenLeft ∉ SizeElem) and the STLC undefinability argument of
Appendix A in bounded form.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.logic.adt import ADTSystem
from repro.logic.sorts import Sort
from repro.logic.terms import Term, height
from repro.theory.normal_form import (
    ElemFormula,
    GroundEqAtom,
    Literal,
    PathEqAtom,
    PathTesterAtom,
)
from repro.theory.paths import (
    EMPTY_PATH,
    Path,
    PathError,
    apply_path,
    leaves,
    replace_many,
)


class PumpingError(ValueError):
    """Raised when the pumping construction does not apply."""


# ----------------------------------------------------------------------
# Path congruence closure (the proof graph of Lemma 8)
# ----------------------------------------------------------------------
class PathCongruence:
    """Union-find over selector paths, seeded by positive equalities."""

    def __init__(self) -> None:
        self._parent: dict[Path, Path] = {}

    def add(self, path: Path) -> None:
        self._parent.setdefault(path, path)

    def find(self, path: Path) -> Path:
        self.add(path)
        root = path
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[path] != root:
            self._parent[path], path = root, self._parent[path]
        return root

    def union(self, a: Path, b: Path) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb

    def paths(self) -> list[Path]:
        return list(self._parent)

    def equivalence_class(self, path: Path) -> list[Path]:
        root = self.find(path)
        return [p for p in self._parent if self.find(p) == root]


def cube_satisfied_by(
    formula: ElemFormula, g: Term, adts: ADTSystem
) -> Optional[tuple[Literal, ...]]:
    """The first DNF cube of ``formula`` that ``g`` satisfies (1-dim)."""
    for cube in formula.cubes:
        if all(lit.eval((g,), adts) for lit in cube):
            return cube
    return None


def congruence_of_cube(cube: Sequence[Literal]) -> PathCongruence:
    """The path congruence graph from a cube's positive path equalities."""
    congruence = PathCongruence()
    for lit in cube:
        if not lit.positive:
            continue
        atom = lit.atom
        if isinstance(atom, PathEqAtom):
            congruence.add(atom.left_path)
            congruence.add(atom.right_path)
            congruence.union(atom.left_path, atom.right_path)
    return congruence


def pump_set(
    cube: Sequence[Literal], p: Path
) -> list[Path]:
    """The replacement set ``P`` of Lemma 8's proof.

    For each congruence-graph path ``q`` that is a suffix of ``p`` (write
    ``p = r_q . q``), every class member ``e`` contributes ``r_q . e``;
    with no such ``q``, ``P = {p}``.
    """
    congruence = congruence_of_cube(cube)
    replacement: set[Path] = set()
    for q in congruence.paths():
        r_q = p.strip_suffix(q)
        if r_q is None:
            continue
        for e in congruence.equivalence_class(q):
            replacement.add(r_q.compose(e))
    if not replacement:
        replacement = {p}
    if p not in replacement:
        replacement.add(p)
    return sorted(replacement, key=lambda path: (len(path), str(path)))


def pumping_threshold(g: Term) -> int:
    """The ``N`` of Lemma 8: pump with terms strictly higher than ``g``."""
    return 1 + height(g)


def formula_pumping_constant(formula: ElemFormula, adts: ADTSystem) -> int:
    """The ``K`` of Lemma 8: formula size plus the largest leaf-term size.

    Computed syntactically over the candidate's atoms; any term higher than
    ``K`` with a pumped path longer than ``K`` is pumpable.
    """
    size = 0
    for cube in formula.cubes:
        for lit in cube:
            atom = lit.atom
            size += 2
            if isinstance(atom, PathEqAtom):
                size += len(atom.left_path) + len(atom.right_path)
            elif isinstance(atom, PathTesterAtom):
                size += len(atom.path) + 1
            elif isinstance(atom, GroundEqAtom):
                size += len(atom.path) + height(atom.ground)
    leaf_bound = max(
        (
            adts.min_height(sort)
            for sort in adts.sorts
        ),
        default=1,
    )
    return size + leaf_bound + 1


def pump(
    g: Term,
    replacement_paths: Iterable[Path],
    t: Term,
    adts: ADTSystem,
) -> Term:
    """``g[P <- t]``: replace every path of ``P`` by ``t`` simultaneously."""
    return replace_many(g, [(p, t) for p in replacement_paths], adts)


# ----------------------------------------------------------------------
# Refuters
# ----------------------------------------------------------------------
@dataclass
class PumpingWitness:
    """A self-checking refutation of Elem-definability.

    ``base`` satisfies the candidate formula and the language; ``pumped``
    satisfies the formula but not the language (or vice versa) — so the
    formula does not define the language, as the pumping lemma predicts
    for any candidate once the language is non-elementary.
    """

    base: Term
    path: Path
    replacement_paths: list[Path]
    filler: Term
    pumped: Term

    def __str__(self) -> str:
        return (
            f"pumped {self.base} at {self.path} "
            f"(P = {[str(p) for p in self.replacement_paths]}) "
            f"with {self.filler} into {self.pumped}"
        )


def find_pumping_counterexample(
    formula: ElemFormula,
    membership: Callable[[Term], bool],
    sort: Sort,
    adts: ADTSystem,
    *,
    base_terms: Optional[Sequence[Term]] = None,
    filler_terms: Optional[Sequence[Term]] = None,
    max_base_height: int = 8,
    max_filler_height: int = 10,
) -> Optional[PumpingWitness]:
    """Refute "``formula`` defines the language ``membership``" by pumping.

    Searches for a member ``g`` of both formula and language, pumps it at a
    deep leaf path per Lemma 8, and reports the first pumped term on which
    the formula (which must keep accepting, by the lemma) and the language
    disagree.  The returned witness is independently checkable.
    """
    if base_terms is None:
        base_terms = adts.terms_up_to_height(sort, max_base_height)
    if filler_terms is None:
        filler_terms = adts.terms_up_to_height(sort, max_filler_height)
    for g in base_terms:
        if not membership(g):
            continue
        cube = cube_satisfied_by(formula, g, adts)
        if cube is None:
            # formula already disagrees with the language on a member
            return PumpingWitness(g, EMPTY_PATH, [], g, g)
        threshold = pumping_threshold(g)
        for p in leaves(g, sort, adts):
            if len(p) == 0:
                continue
            replacement = pump_set(cube, p)
            try:
                for t in filler_terms:
                    if height(t) <= threshold:
                        continue
                    pumped = pump(g, replacement, t, adts)
                    formula_accepts = formula.eval((pumped,), adts)
                    in_language = membership(pumped)
                    if formula_accepts != in_language:
                        return PumpingWitness(
                            g, p, replacement, t, pumped
                        )
            except PathError:
                continue
    return None


@dataclass
class SizeIndistinguishableWitness:
    """Two same-size terms with different property values (Prop. 2 core).

    No size-only constraint can contain one and exclude the other, so any
    language separating them is not definable by sizes alone.
    """

    inside: Term
    outside: Term
    size: int

    def __str__(self) -> str:
        return (
            f"size {self.size}: {self.inside} (in) vs "
            f"{self.outside} (out)"
        )


def find_size_indistinguishable_pair(
    membership: Callable[[Term], bool],
    sort: Sort,
    adts: ADTSystem,
    *,
    max_height: int = 5,
) -> Optional[SizeIndistinguishableWitness]:
    """Find same-size terms separated by the language.

    This is the executable heart of Prop. 2 (EvenLeft ∉ SizeElem): for
    expanding sorts, size classes get large, and EvenLeft-style properties
    split them — size constraints count all constructors at once and
    cannot see 'the leftmost branch'.
    """
    from repro.logic.terms import size as term_size

    by_size: dict[int, list[Term]] = {}
    for t in adts.terms_up_to_height(sort, max_height):
        by_size.setdefault(term_size(t), []).append(t)
    for size_value in sorted(by_size):
        bucket = by_size[size_value]
        members = [t for t in bucket if membership(t)]
        non_members = [t for t in bucket if not membership(t)]
        if members and non_members:
            return SizeIndistinguishableWitness(
                members[0], non_members[0], size_value
            )
    return None
