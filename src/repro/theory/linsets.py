"""Linear and semilinear sets of naturals (Sec. 6.3 / Appendix B.2).

SizeElem's size constraints define semilinear sets (Presburger-definable);
the pumping lemma for SizeElem pumps along an infinite *linear* subset of
the size image ``S_sigma``.  This module provides:

* :class:`LinearSet` — ``{ v0 + k1*v1 + ... + kl*vl }`` (1-dimensional),
* :class:`SemilinearSet` — finite unions of linear sets,
* intersection of infinite linear sets (Lemma 10's constructive proof),
* the size image ``S_sigma`` as a semilinear set, recovered from the
  grammar DP of :meth:`repro.logic.adt.ADTSystem.count_terms_of_size` by
  prefix-plus-period detection,
* the ``max_fin`` statistic of Definition 8 and the expanding-sort test of
  Definition 5 (Example 7: ``Nat`` no, ``List``/``Tree`` yes).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.logic.adt import ADTSystem
from repro.logic.sorts import Sort


class LinSetError(ValueError):
    """Raised on malformed linear-set constructions."""


@dataclass(frozen=True)
class LinearSet:
    """``{ base + k1*p1 + ... + kl*pl | ki >= 0 }`` over naturals."""

    base: int
    periods: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if self.base < 0 or any(p <= 0 for p in self.periods):
            raise LinSetError("base must be >= 0 and periods positive")

    @property
    def is_infinite(self) -> bool:
        return bool(self.periods)

    def __contains__(self, n: int) -> bool:
        if n < self.base:
            return False
        return self._reachable(n - self.base)

    def _reachable(self, target: int) -> bool:
        if target == 0:
            return True
        if not self.periods:
            return False
        # coin-problem DP; values stay small in all our uses
        reachable = [False] * (target + 1)
        reachable[0] = True
        for value in range(1, target + 1):
            for p in self.periods:
                if p <= value and reachable[value - p]:
                    reachable[value] = True
                    break
        return reachable[target]

    def members(self, bound: int) -> list[int]:
        """All members up to ``bound`` inclusive."""
        return [n for n in range(self.base, bound + 1) if n in self]

    def iter_members(self) -> Iterator[int]:
        """Members in increasing order (infinite when periodic)."""
        n = self.base
        while True:
            if n in self:
                yield n
            n += 1
            if not self.periods and n > self.base:
                return

    def __str__(self) -> str:
        if not self.periods:
            return f"{{{self.base}}}"
        periods = ", ".join(f"k*{p}" for p in self.periods)
        return f"{{{self.base} + {periods}}}"


def intersect_infinite_linear(a: LinearSet, b: LinearSet) -> Optional[LinearSet]:
    """Lemma 10: the intersection of infinite 1-dim linear sets.

    Returns an infinite linear subset of ``a ∩ b`` (or ``None`` when the
    intersection is empty).  Follows the paper's constructive proof: from
    any common element ``c``, the set ``{c + d*W*V}`` lies in both, where
    ``W``/``V`` are the period sums.
    """
    if not (a.is_infinite and b.is_infinite):
        raise LinSetError("both operands must be infinite linear sets")
    w = sum(a.periods)
    v = sum(b.periods)
    bound = a.base + b.base + 2 * w * v + max(w, v)
    common = [n for n in a.members(bound) if n in b]
    if not common:
        return None
    return LinearSet(common[0], (w * v,))


@dataclass(frozen=True)
class SemilinearSet:
    """A finite union of linear sets."""

    parts: tuple[LinearSet, ...]

    def __contains__(self, n: int) -> bool:
        return any(n in p for p in self.parts)

    def members(self, bound: int) -> list[int]:
        out = sorted(
            {n for p in self.parts for n in p.members(bound)}
        )
        return out

    def infinite_parts(self) -> list[LinearSet]:
        return [p for p in self.parts if p.is_infinite]

    def __str__(self) -> str:
        return " ∪ ".join(str(p) for p in self.parts) if self.parts else "{}"


def size_image_semilinear(
    adts: ADTSystem, sort: Sort, *, bound: int = 80
) -> SemilinearSet:
    """``S_sigma`` as a semilinear set, by prefix + period detection.

    Parikh's theorem guarantees ``S_sigma`` is semilinear (the paper cites
    the Hojjat–Rümmer view of sizes as the Parikh image of the ADT
    declaration read as a grammar); for a one-letter alphabet any
    semilinear set is eventually periodic, so detecting the period of the
    realizable-size sequence recovers an exact representation — verified
    against the DP counts up to ``bound`` by the test suite.
    """
    members = adts.size_image(sort, bound)
    if not members:
        return SemilinearSet(())
    member_set = set(members)
    max_check = bound
    for period in range(1, bound // 3 + 1):
        start = bound // 3
        if _is_periodic(member_set, start, period, max_check):
            prefix = [
                LinearSet(n) for n in members if n < start
            ]
            recurring = [
                LinearSet(n, (period,))
                for n in range(start, start + period)
                if n in member_set
            ]
            return SemilinearSet(tuple(prefix + recurring))
    # no period found within the window: fall back to the finite prefix
    return SemilinearSet(tuple(LinearSet(n) for n in members))


def _is_periodic(
    member_set: set[int], start: int, period: int, bound: int
) -> bool:
    for n in range(start, bound - period + 1):
        if (n in member_set) != ((n + period) in member_set):
            return False
    return True


def max_fin(parts: Sequence[LinearSet]) -> int:
    """Definition 8's ``max_fin``: the largest base among purely finite
    components (0 when every component is infinite or the set is empty)."""
    finite_bases = [p.base for p in parts if not p.is_infinite]
    return max(finite_bases, default=0)


def is_expanding_sort(
    adts: ADTSystem, sort: Sort, *, bound: int = 60, threshold: int = 3
) -> bool:
    """Definition 5 via the counting DP (cf. Example 7).

    A sort is expanding when each non-empty size class eventually has
    arbitrarily many members; we witness growth past ``threshold`` on a
    window and require monotone non-collapse.  Matches the paper's
    examples: ``Nat`` is not expanding (|T^k| = 1), lists and trees are.
    """
    counts = [adts.count_terms_of_size(sort, k) for k in range(1, bound + 1)]
    window = counts[bound // 2 :]
    nonempty = [c for c in window if c > 0]
    if not nonempty:
        return False
    return all(c >= threshold for c in nonempty)


def is_expanding_signature(adts: ADTSystem, *, bound: int = 60) -> bool:
    """Whether every sort of the ADT system is expanding."""
    return all(
        is_expanding_sort(adts, sort, bound=bound) for sort in adts.sorts
    )
