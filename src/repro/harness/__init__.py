"""Experiment harness: multi-solver runs and Table 1 / Fig 4-6 rendering."""

from repro.harness.runner import (
    Campaign,
    REPRESENTATION_ROW,
    RunRecord,
    SOLVER_ORDER,
    batch_order,
    make_solver,
    run_campaign,
    run_problem,
)
from repro.harness.report import campaign_report, markdown_table
from repro.harness.tables import (
    Table1Row,
    figure4_data,
    figure5_data,
    figure6_data,
    format_histogram,
    format_scatter,
    format_table1,
    table1,
)

__all__ = [
    "Campaign",
    "batch_order",
    "campaign_report",
    "markdown_table",
    "REPRESENTATION_ROW",
    "RunRecord",
    "SOLVER_ORDER",
    "Table1Row",
    "figure4_data",
    "figure5_data",
    "figure6_data",
    "format_histogram",
    "format_scatter",
    "format_table1",
    "make_solver",
    "run_campaign",
    "run_problem",
    "table1",
]
