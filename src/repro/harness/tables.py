"""Rendering of Table 1 and the textual forms of Figures 4-6.

The paper's artifacts, regenerated from a :class:`Campaign`:

* :func:`table1` — the per-suite SAT/UNSAT/unique counts with the
  representation-class header row,
* :func:`figure4_data` / :func:`figure5_data` — the timing scatter pairs
  (all results / SAT-only), with timeouts pinned to the boundary,
* :func:`figure6_data` — the histogram of finite-model sizes,
* ASCII renderers for each, used by the benchmark harness and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.result import Status
from repro.harness.runner import (
    Campaign,
    REPRESENTATION_ROW,
    SOLVER_ORDER,
)


@dataclass
class Table1Row:
    """One row of Table 1."""

    suite: str
    total: int
    answer: str
    counts: dict[str, int]


def table1(
    campaign: Campaign,
    suite_sizes: dict[str, int],
    *,
    solvers: Sequence[str] = SOLVER_ORDER,
) -> list[Table1Row]:
    """Compute the rows of Table 1 from campaign records."""
    rows: list[Table1Row] = []
    for suite, total in suite_sizes.items():
        for status, label in ((Status.SAT, "SAT"), (Status.UNSAT, "UNSAT")):
            counts = {
                s: campaign.count(suite, s, status) for s in solvers
            }
            rows.append(Table1Row(suite, total, label, counts))
            if suite == "TIP":
                unique = {
                    s: campaign.unique_count(suite, s, status, solvers)
                    for s in solvers
                }
                rows.append(
                    Table1Row(suite, total, f"Unique {label}", unique)
                )
    # totals
    for status, label in ((Status.SAT, "SAT"), (Status.UNSAT, "UNSAT")):
        counts = {
            s: sum(
                campaign.count(suite, s, status) for suite in suite_sizes
            )
            for s in solvers
        }
        rows.append(
            Table1Row("Total", sum(suite_sizes.values()), label, counts)
        )
    return rows


def format_table1(
    rows: list[Table1Row], *, solvers: Sequence[str] = SOLVER_ORDER
) -> str:
    """ASCII rendering in the paper's layout."""
    headers = ["Problem Set", "#", "Answer"] + [
        f"{s} ({REPRESENTATION_ROW.get(s, '-')})" for s in solvers
    ]
    widths = [max(14, len(h)) for h in headers]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        cells = [row.suite, str(row.total), row.answer] + [
            str(row.counts.get(s, 0)) for s in solvers
        ]
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        )
    return "\n".join(lines)


def figure4_data(campaign: Campaign) -> dict[str, list[tuple[float, float, str]]]:
    """Figure 4: RInGen-vs-competitor timing pairs (all results)."""
    return {
        solver: campaign.scatter_points(solver)
        for solver in SOLVER_ORDER
        if solver != "ringen"
    }


def figure5_data(campaign: Campaign) -> dict[str, list[tuple[float, float, str]]]:
    """Figure 5: the SAT-only subset of the scatter."""
    return {
        solver: campaign.scatter_points(solver, sat_only=True)
        for solver in SOLVER_ORDER
        if solver != "ringen"
    }


def format_scatter(
    data: dict[str, list[tuple[float, float, str]]], *, title: str
) -> str:
    """Summarize scatter data: wins/losses/ties per competitor."""
    lines = [title]
    for solver, points in data.items():
        wins = sum(1 for x, y, _ in points if x < y)
        losses = sum(1 for x, y, _ in points if x > y)
        ties = len(points) - wins - losses
        lines.append(
            f"  vs {solver}: ringen faster on {wins}, slower on "
            f"{losses}, tied on {ties} (of {len(points)})"
        )
    return "\n".join(lines)


def figure6_data(campaign: Campaign) -> dict[int, int]:
    """Figure 6: model-size histogram of RInGen's SAT answers."""
    return campaign.model_size_histogram()


def format_histogram(histogram: dict[int, int], *, title: str) -> str:
    """ASCII bar chart of the model-size distribution."""
    lines = [title]
    if not histogram:
        return title + "\n  (no models)"
    peak = max(histogram.values())
    for size in sorted(histogram):
        count = histogram[size]
        bar = "#" * max(1, round(count * 40 / peak))
        lines.append(f"  size {size:>3}: {bar} {count}")
    return "\n".join(lines)
