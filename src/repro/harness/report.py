"""Markdown experiment report generation.

Combines a campaign's Table 1 counts, scatter summaries and the model-size
histogram into a single markdown document — the artifact a downstream
user regenerates to compare their run against EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.result import Status
from repro.harness.runner import Campaign, REPRESENTATION_ROW, SOLVER_ORDER
from repro.harness.tables import (
    figure4_data,
    figure5_data,
    figure6_data,
    table1,
)


def markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)


def campaign_report(
    campaign: Campaign,
    suite_sizes: dict[str, int],
    *,
    title: str = "Experiment report",
    solvers: Sequence[str] = SOLVER_ORDER,
) -> str:
    """Render the full report for one campaign."""
    sections: list[str] = [f"# {title}", ""]
    sections.append(
        f"Per-run timeout: {campaign.timeout:.1f}s — "
        f"{len(campaign.records)} runs total."
    )
    sections.append("")
    if campaign.interrupted:
        sections.append(
            "**PARTIAL REPORT** — the campaign was interrupted "
            "(SIGINT/SIGTERM); the tables below cover only the "
            "journaled prefix.  Re-run with `--resume` on the same "
            "journal to finish the remaining problems."
        )
        sections.append("")

    # Table 1
    sections.append("## Table 1 — correct answers per solver")
    sections.append("")
    headers = ["Problem Set", "#", "Answer"] + [
        f"{s} ({REPRESENTATION_ROW.get(s, '-')})" for s in solvers
    ]
    rows = []
    for row in table1(campaign, suite_sizes, solvers=solvers):
        rows.append(
            [row.suite, row.total, row.answer]
            + [row.counts.get(s, 0) for s in solvers]
        )
    sections.append(markdown_table(headers, rows))
    sections.append("")

    # timing comparison
    sections.append("## Figures 4/5 — timing vs RInGen")
    sections.append("")
    fig4 = figure4_data(campaign)
    fig5 = figure5_data(campaign)
    headers = ["competitor", "faster (all)", "slower (all)",
               "faster (SAT)", "slower (SAT)"]
    rows = []
    for solver in solvers:
        if solver == "ringen":
            continue
        all_points = fig4.get(solver, [])
        sat_points = fig5.get(solver, [])
        rows.append(
            [
                solver,
                sum(1 for x, y, _ in all_points if x < y),
                sum(1 for x, y, _ in all_points if x > y),
                sum(1 for x, y, _ in sat_points if x < y),
                sum(1 for x, y, _ in sat_points if x > y),
            ]
        )
    sections.append(markdown_table(headers, rows))
    sections.append("")

    # model sizes
    sections.append("## Figure 6 — finite model sizes")
    sections.append("")
    histogram = figure6_data(campaign)
    if histogram:
        rows = [
            [size, count, "#" * count] for size, count in sorted(
                histogram.items()
            )
        ]
        sections.append(markdown_table(["size", "count", ""], rows))
    else:
        sections.append("_no models found_")
    sections.append("")

    # model finder engine statistics (incremental CDCL reuse)
    finder_rows = [
        (record, record.details["finder"])
        for record in campaign.records
        if record.solver == "ringen" and "finder" in record.details
    ]
    if finder_rows:
        sections.append("## Model finder — incremental engine")
        sections.append("")
        encoded = sum(f["clauses_encoded"] for _, f in finder_rows)
        reused = sum(f["clauses_reused"] for _, f in finder_rows)
        learned_total = sum(f["learned_total"] for _, f in finder_rows)
        learned_kept = sum(f["learned_kept"] for _, f in finder_rows)
        learned_glue = sum(
            f.get("learned_glue", 0) for _, f in finder_rows
        )
        attempts = sum(f["attempts"] for _, f in finder_rows)
        resets = sum(f["solver_resets"] for _, f in finder_rows)
        refuted = sum(
            f.get("vectors_refuted", 0) for _, f in finder_rows
        )
        exhausted = sum(
            f.get("vectors_exhausted", 0) for _, f in finder_rows
        )
        skipped = sum(
            f.get("vectors_skipped", 0) for _, f in finder_rows
        )
        cores = sum(
            f.get("cores_extracted", 0) for _, f in finder_rows
        )
        incremental_runs = sum(
            1 for _, f in finder_rows if f["incremental"]
        )
        denominator = encoded + reused
        reuse_pct = (100.0 * reused / denominator) if denominator else 0.0
        sections.append(
            markdown_table(
                ["metric", "value"],
                [
                    ["runs with finder stats", len(finder_rows)],
                    ["incremental runs", incremental_runs],
                    ["size vectors attempted", attempts],
                    ["vectors refuted (proven unsat)", refuted],
                    ["vectors exhausted (budget, unknown)", exhausted],
                    ["vectors skipped by unsat cores", skipped],
                    ["unsat cores extracted", cores],
                    ["clauses encoded", encoded],
                    ["clauses reused across vectors", reused],
                    ["reuse ratio", f"{reuse_pct:.1f}%"],
                    ["learned clauses derived", learned_total],
                    ["glue clauses (LBD <= 2) derived", learned_glue],
                    ["learned clauses kept at end", learned_kept],
                    ["engine resets", resets],
                ],
            )
        )
        sections.append("")

        # SAT backend breakdown: which engine ran under each finder and
        # what the core pipeline did there — one row per backend so a
        # mixed python/pysat campaign stays legible
        by_backend: dict[str, list[dict]] = {}
        for _, f in finder_rows:
            by_backend.setdefault(
                f.get("sat_backend", "python"), []
            ).append(f)
        sections.append("## Model finder — SAT backends")
        sections.append("")
        rows = []
        for backend in sorted(by_backend):
            group = by_backend[backend]
            rows.append(
                [
                    backend,
                    len(group),
                    sum(g.get("vectors_refuted", 0) for g in group),
                    sum(g.get("cores_extracted", 0) for g in group),
                    sum(g.get("cores_minimized", 0) for g in group),
                    sum(g.get("core_lits_dropped", 0) for g in group),
                ]
            )
        sections.append(
            markdown_table(
                [
                    "backend",
                    "runs",
                    "vectors refuted",
                    "cores extracted",
                    "cores minimized",
                    "core literals dropped",
                ],
                rows,
            )
        )
        sections.append("")

    # honest unknown verdicts: a completed sweep proves "no model <= N"
    # while a budget-cut sweep proves nothing — report which was which.
    # Execution-layer errors (crashes, hard kills, OOMs) are NOT
    # unknowns; they get their own section below.
    unknown_rows = [
        record
        for record in campaign.records
        if record.solver == "ringen"
        and record.status is Status.UNKNOWN
        and not record.errored
    ]
    if unknown_rows:
        sections.append("## Model finder — unknown verdicts")
        sections.append("")
        rows = []
        for record in unknown_rows:
            # structured key set by ringen; records without it (old
            # artifacts) fall into the "other" bucket
            kind = record.details.get("verdict_kind")
            if record.details.get("complete"):
                verdict = "no model within size bound (sweep complete)"
            elif kind == "herbrand":
                # raising budgets is not the remedy here
                verdict = "unknown (model verification failed)"
            elif kind == "budget" and record.details.get("timeout_hit"):
                verdict = "unknown (wall-clock timeout)"
            elif kind == "budget":
                verdict = "unknown (conflict budget exhausted)"
            else:
                verdict = "unknown (other)"
            rows.append(
                [
                    f"{record.problem.suite}/{record.problem.name}",
                    verdict,
                    record.reason,
                ]
            )
        sections.append(
            markdown_table(["problem", "verdict", "detail"], rows)
        )
        sections.append("")

    # execution-layer failures: every crashed / hard-killed / OOM-killed
    # task, with exception type and retry count — these used to be
    # silently folded into the unknowns
    error_rows = [r for r in campaign.records if r.errored]
    if error_rows:
        sections.append("## Errors — crashed / killed / OOM tasks")
        sections.append("")
        rows = []
        for record in error_rows:
            detail = record.reason
            exc_type = record.details.get("exception_type")
            if exc_type and exc_type not in detail:
                detail = f"{exc_type}: {detail}"
            rows.append(
                [
                    f"{record.problem.suite}/{record.problem.name}",
                    record.solver,
                    record.error_kind,
                    record.attempts,
                    detail,
                ]
            )
        sections.append(
            markdown_table(
                ["problem", "solver", "error", "attempts", "detail"], rows
            )
        )
        sections.append("")

    # supervised execution: worker / retry / resume accounting
    if campaign.exec_stats is not None:
        stats = campaign.exec_stats
        sections.append("## Execution — supervised campaign")
        sections.append("")
        error_counts = stats.get("error_counts") or {}
        rows = [
            ["mode", "isolated" if stats.get("isolate") else "in-process"],
            ["tasks total", stats.get("tasks_total", 0)],
            ["tasks executed", stats.get("tasks_executed", 0)],
            ["tasks resumed from journal", stats.get("tasks_resumed", 0)],
            ["transient retries", stats.get("retries", 0)],
            ["workers spawned", stats.get("workers_spawned", 0)],
            [
                "workers warm-started",
                stats.get("workers_warm_started", 0),
            ],
            [
                "engine snapshots collected",
                stats.get("snapshots_collected", 0),
            ],
            ["interrupted", "yes" if stats.get("interrupted") else "no"],
        ]
        for kind in sorted(error_counts):
            rows.append([f"errors: {kind}", error_counts[kind]])
        sections.append(markdown_table(["metric", "value"], rows))
        sections.append("")

    # campaign batch mode: cross-problem engine sharing — rendered
    # uniformly from the consolidated PoolStats dict, so new counters
    # (e.g. warm-cache snapshot accounting) appear without edits here
    if campaign.pool_stats is not None:
        sections.append("## Campaign engine pool — cross-problem reuse")
        sections.append("")
        pool = campaign.pool_stats
        pooled_runs = sum(
            1 for _, f in finder_rows if f.get("engine_shared")
        )
        labels = {
            "problems": "problems through the pool",
            "engines_created": "engines created",
            "engine_hits": "warm-engine hits",
            "cross_problem_clauses": "cross-problem clauses inherited",
            "engine_recycles": "engines recycled",
            "engines_evicted": "engines evicted",
            "released": "problems released",
            "engines_live": "engines live at the end",
            "snapshot_saves": "snapshots persisted to the warm cache",
            "snapshot_hits": "warm starts from a snapshot",
            "snapshot_misses": "warm-cache misses",
            "snapshot_rejected": "snapshots rejected (fell back cold)",
        }
        rows = [["runs on a shared engine", pooled_runs]]
        for key, value in pool.items():
            rows.append([labels.get(key, key.replace("_", " ")), value])
        sections.append(markdown_table(["metric", "value"], rows))
        sections.append("")

    # observability: where the wall clock went, from the merged metrics
    # snapshot (present only when the campaign ran with --metrics)
    if campaign.obs is not None:
        counters = campaign.obs.get("counters") or {}
        phase_names = sorted(
            {
                name[len("phase."):-len("_s")]
                for name in counters
                if name.startswith("phase.") and name.endswith("_s")
            }
        )
        if phase_names:
            sections.append("## Timing breakdown — solver phases")
            sections.append("")
            total = sum(
                counters.get(f"phase.{p}_s", 0.0) for p in phase_names
            )
            rows = []
            for phase in phase_names:
                secs = counters.get(f"phase.{phase}_s", 0.0)
                calls = int(counters.get(f"phase.{phase}_n", 0))
                share = (100.0 * secs / total) if total else 0.0
                rows.append(
                    [phase, f"{secs:.3f}", calls, f"{share:.1f}%"]
                )
            sections.append(
                markdown_table(
                    ["phase", "time (s)", "calls", "share"], rows
                )
            )
            sections.append("")
            sections.append(
                "_`propagate`/`analyze` are timed inside `minimize` "
                "probes too, so phase shares describe where time went, "
                "not a disjoint partition._"
            )
            sections.append("")
        hist = (campaign.obs.get("histograms") or {}).get("task.elapsed")
        if hist and hist.get("count"):
            sections.append("## Timing breakdown — task wall clock")
            sections.append("")
            mean = hist["total"] / hist["count"]
            sections.append(
                markdown_table(
                    ["metric", "value"],
                    [
                        ["tasks", hist["count"]],
                        ["total (s)", f"{hist['total']:.3f}"],
                        ["mean (s)", f"{mean:.3f}"],
                        ["min (s)", f"{hist['min']:.3f}"],
                        ["max (s)", f"{hist['max']:.3f}"],
                    ],
                )
            )
            sections.append("")

    # per-problem appendix: everything any solver answered
    sections.append("## Appendix — solved problems")
    sections.append("")
    headers = ["problem", "solver", "answer", "time (s)"]
    rows = []
    for record in campaign.records:
        if record.status is not Status.UNKNOWN and record.correct:
            rows.append(
                [
                    f"{record.problem.suite}/{record.problem.name}",
                    record.solver,
                    record.status.value,
                    f"{record.elapsed:.3f}",
                ]
            )
    sections.append(markdown_table(headers, rows))
    sections.append("")
    return "\n".join(sections)
