"""Multi-solver experiment runner (the engine behind Table 1 and Figs 4-6).

Runs every solver on every problem of a suite with per-run timeouts,
records verdicts + wall times, checks each verdict against the problem's
ground truth (a wrong SAT/UNSAT is counted as *incorrect* and excluded
from the solved tallies, mirroring how solver competitions score), and
aggregates into the paper's tables and figures.
"""

from __future__ import annotations

import contextlib
import logging
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.benchgen.suite import Problem, Suite
from repro.chc.transform import preprocess
from repro.core.result import SolveResult, Status
from repro.core.ringen import RInGen, RInGenConfig
from repro.mace.pool import EnginePool, signature_fingerprint
from repro.obs import runtime as obs_runtime
from repro.solvers.elem import ElemConfig, ElemSolver
from repro.solvers.induct import InductConfig, InductSolver
from repro.solvers.sizeelem import SizeElemConfig, SizeElemSolver
from repro.solvers.verimap import VeriMapConfig, VeriMapSolver

logger = logging.getLogger(__name__)

SOLVER_ORDER = ["ringen", "eldarica", "spacer", "cvc4-ind", "verimap-iddt"]

# Table 1's header row: the representation class of each solver.
REPRESENTATION_ROW = {
    "ringen": "Reg",
    "eldarica": "SizeElem",
    "spacer": "Elem",
    "cvc4-ind": "-",
    "verimap-iddt": "-",
}


def make_solver(
    name: str,
    timeout: float,
    *,
    engine_pool: Optional[EnginePool] = None,
    sat_backend: str = "python",
    engine_cache_dir: Optional[str] = None,
    sweep_shards: int = 1,
):
    """Instantiate a solver under its Table 1 alias.

    ``engine_pool`` (campaign batch mode), ``sat_backend`` (the SAT
    engine under the model finder), ``engine_cache_dir`` (the disk
    warm cache of serialized engines) and ``sweep_shards`` (speculative
    parallel size sweeps) only concern RInGen — the baselines have no
    incremental engine to share and ignore them.
    """
    if name == "ringen":
        return RInGen(
            RInGenConfig(
                timeout=timeout,
                engine_pool=engine_pool,
                sat_backend=sat_backend,
                engine_cache_dir=engine_cache_dir,
                sweep_shards=sweep_shards,
            )
        )
    if name == "eldarica":
        return SizeElemSolver(SizeElemConfig(timeout=timeout))
    if name == "spacer":
        return ElemSolver(ElemConfig(timeout=timeout))
    if name == "cvc4-ind":
        return InductSolver(InductConfig(timeout=timeout))
    if name == "verimap-iddt":
        return VeriMapSolver(VeriMapConfig(timeout=timeout))
    raise ValueError(f"unknown solver {name!r}")


@dataclass
class RunRecord:
    """One (problem, solver) measurement."""

    problem: Problem
    solver: str
    status: Status
    elapsed: float
    correct: bool
    model_size: Optional[int] = None
    reason: str = ""
    # solver-reported extras (e.g. the model finder's incremental-engine
    # statistics under "finder"), surfaced by the report generator
    details: dict = field(default_factory=dict)
    # execution-layer outcome: None for an honest solver verdict;
    # "crash" / "timeout_hard" / "oom" when the task failed and the
    # supervisor turned the failure into a structured verdict.  These
    # records stay UNKNOWN for scoring (they are non-answers, not wrong
    # answers) but the report surfaces them in a dedicated errors
    # section instead of folding them into the unknowns.
    error_kind: Optional[str] = None
    attempts: int = 1
    traceback: str = ""

    @property
    def solved(self) -> bool:
        return self.correct and self.status is not Status.UNKNOWN

    @property
    def errored(self) -> bool:
        return self.error_kind is not None


@dataclass
class Campaign:
    """All measurements of one experiment run."""

    records: list[RunRecord] = field(default_factory=list)
    timeout: float = 1.0
    # campaign batch mode: cross-problem engine reuse counters from the
    # shared EnginePool (None when every problem got a fresh engine)
    pool_stats: Optional[dict] = None
    # supervised execution: retry/resume/worker accounting from
    # repro.exec (None for the plain in-process fast path), plus
    # whether the campaign was stopped by SIGINT/SIGTERM — in which
    # case the records are the partial, journaled prefix
    exec_stats: Optional[dict] = None
    interrupted: bool = False
    # observability: the merged metrics snapshot of the run (see
    # repro.obs.metrics) when metrics collection was on, else None
    obs: Optional[dict] = None

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    # -- selections ------------------------------------------------------
    def for_solver(self, solver: str) -> list[RunRecord]:
        return [r for r in self.records if r.solver == solver]

    def for_suite(self, suite: str) -> list[RunRecord]:
        return [r for r in self.records if r.problem.suite == suite]

    def record(self, problem_name: str, solver: str) -> Optional[RunRecord]:
        for r in self.records:
            if r.problem.name == problem_name and r.solver == solver:
                return r
        return None

    # -- Table 1 aggregation ----------------------------------------------
    def count(self, suite: str, solver: str, status: Status) -> int:
        return sum(
            1
            for r in self.records
            if r.problem.suite == suite
            and r.solver == solver
            and r.status is status
            and r.correct
        )

    def unique_count(
        self, suite: str, solver: str, status: Status, others: Sequence[str]
    ) -> int:
        """Problems only this solver answered with ``status`` (correctly)."""
        mine = {
            r.problem.name
            for r in self.records
            if r.problem.suite == suite
            and r.solver == solver
            and r.status is status
            and r.correct
        }
        for other in others:
            if other == solver:
                continue
            mine -= {
                r.problem.name
                for r in self.records
                if r.problem.suite == suite
                and r.solver == other
                and r.status is status
                and r.correct
            }
        return len(mine)

    # -- figure data --------------------------------------------------------
    def scatter_points(
        self, competitor: str, *, sat_only: bool = False
    ) -> list[tuple[float, float, str]]:
        """Figure 4/5 points: (ringen time, competitor time, problem).

        Unsolved runs sit at the timeout value (the paper places timeouts
        on the dashed boundary lines).
        """
        points = []
        by_name: dict[str, dict[str, RunRecord]] = {}
        for r in self.records:
            by_name.setdefault(r.problem.name, {})[r.solver] = r
        for name, runs in by_name.items():
            mine = runs.get("ringen")
            theirs = runs.get(competitor)
            if mine is None or theirs is None:
                continue
            if sat_only and not (
                (mine.solved and mine.status is Status.SAT)
                or (theirs.solved and theirs.status is Status.SAT)
            ):
                continue
            x = mine.elapsed if mine.solved else self.timeout
            y = theirs.elapsed if theirs.solved else self.timeout
            points.append((x, y, name))
        return points

    def model_size_histogram(self) -> dict[int, int]:
        """Figure 6: distribution of finite-model sizes among SAT answers."""
        histogram: dict[int, int] = {}
        for r in self.records:
            if (
                r.solver == "ringen"
                and r.status is Status.SAT
                and r.correct
                and r.model_size is not None
            ):
                histogram[r.model_size] = histogram.get(r.model_size, 0) + 1
        return histogram


def batch_order(problems: Sequence[Problem]) -> list[Problem]:
    """Order a batch so signature-compatible problems run back-to-back.

    The engine pool keys persistent engines by signature fingerprint, so
    grouping compatible problems maximizes warm-engine hits and keeps
    the working set to one engine at a time (the pool's LRU never
    thrashes).  Problems are fingerprinted on their *preprocessed* form
    — the same form RInGen hands to the pool, so the schedule groups
    exactly by the pool's engine keys (preprocessing can add ``diseq``
    predicates that split raw-compatible systems apart).  Grouping is
    stable: groups appear in first-occurrence order and problems keep
    their relative order within a group.
    """
    groups: dict[tuple, list[Problem]] = {}
    order: list[tuple] = []
    for problem in problems:
        try:
            key = signature_fingerprint(preprocess(problem.build()))
        except Exception as error:
            # an unfingerprintable problem still runs (in its own group,
            # on a fresh engine) — but a build/preprocess failure here
            # predicts a failure at solve time, so say so instead of
            # hiding it
            logger.warning(
                "batch_order: could not fingerprint %s/%s (%s: %s); "
                "scheduling it unshared",
                problem.suite,
                problem.name,
                type(error).__name__,
                error,
            )
            key = ("unfingerprintable", problem.suite, problem.name)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(problem)
    return [p for key in order for p in groups[key]]


def run_problem(
    problem: Problem,
    solver_name: str,
    timeout: float,
    *,
    engine_pool: Optional[EnginePool] = None,
) -> RunRecord:
    """Run one solver on one problem and score the verdict."""
    task_id = task_id_for(problem, solver_name)
    obs_runtime.task_started(task_id)
    tracer = obs_runtime.TRACER
    span_cm = (
        tracer.span("task", {"task": task_id})
        if tracer is not None
        else contextlib.nullcontext()
    )
    try:
        with span_cm:
            return _run_problem_impl(
                problem, solver_name, timeout, engine_pool=engine_pool
            )
    finally:
        obs_runtime.task_finished()


def _run_problem_impl(
    problem: Problem,
    solver_name: str,
    timeout: float,
    *,
    engine_pool: Optional[EnginePool] = None,
) -> RunRecord:
    start = time.monotonic()
    try:
        solver = make_solver(solver_name, timeout, engine_pool=engine_pool)
        system = problem.build()
        result = solver.solve(system)
    except Exception as error:
        # A crash is a structured error verdict, not an honest
        # "unknown": the record keeps the exception type and traceback
        # and the report lists it in a dedicated errors section.
        logger.warning(
            "%s/%s %s crashed: %s: %s",
            problem.suite,
            problem.name,
            solver_name,
            type(error).__name__,
            error,
        )
        return RunRecord(
            problem,
            solver_name,
            Status.UNKNOWN,
            time.monotonic() - start,
            True,
            reason=f"error:crash: {type(error).__name__}: {error}",
            details={"exception_type": type(error).__name__},
            error_kind="crash",
            traceback=traceback_mod.format_exc(limit=20),
        )
    elapsed = time.monotonic() - start
    correct = (
        result.status is Status.UNKNOWN
        or result.status.value == problem.expected_status
    )
    model_size = None
    if result.is_sat:
        model_size = result.details.get("model_size")
    return RunRecord(
        problem,
        solver_name,
        result.status,
        elapsed,
        correct,
        model_size,
        result.reason,
        dict(result.details),
    )


def run_campaign(
    suites: Sequence[Suite],
    *,
    solvers: Optional[Sequence[str]] = None,
    timeout: float = 1.0,
    progress: Optional[Callable[[str], None]] = None,
    problem_filter: Optional[Callable[[Problem], bool]] = None,
    share_engines: bool = False,
    engine_pool: Optional[EnginePool] = None,
    isolate: bool = False,
    journal_path: Optional[str] = None,
    resume: bool = False,
    policy: Optional[object] = None,
    engine_cache_dir: Optional[str] = None,
) -> Campaign:
    """Run the full (suite x solver) product.

    ``share_engines`` switches on campaign batch mode: one
    :class:`~repro.mace.pool.EnginePool` spans the whole run (pass
    ``engine_pool`` to supply your own), problems are scheduled in
    :func:`batch_order` so signature-compatible systems run
    back-to-back, and the pool's cross-problem reuse counters land in
    ``Campaign.pool_stats``.  Verdicts are unaffected — the pool only
    changes which solver state the model finder starts from.
    ``engine_cache_dir`` additionally persists engines to a disk warm
    cache, so a later campaign over the same benchmark families starts
    from this one's solver state (flushed when the run completes).

    Supervised execution (``isolate``, ``journal_path``, ``resume``, or
    an explicit :class:`repro.exec.ExecPolicy` in ``policy``) routes
    every task through :mod:`repro.exec`: worker subprocesses with a
    hard watchdog and memory cap, retry with backoff for transient
    failures, a flushed JSONL journal with checkpoint/resume, and
    graceful SIGINT/SIGTERM shutdown that returns the partial campaign
    (``Campaign.interrupted``).  In isolated + ``share_engines`` mode
    each signature-compatible batch rides one worker with a private
    engine pool — the in-process sharing, preserved per worker.  The
    plain in-process path below stays the default and is byte-for-byte
    the pre-supervisor behaviour.
    """
    solvers = list(solvers or SOLVER_ORDER)
    if isolate or journal_path or resume or policy is not None:
        return _run_campaign_supervised(
            suites,
            solvers=solvers,
            timeout=timeout,
            progress=progress,
            problem_filter=problem_filter,
            share_engines=share_engines,
            engine_pool=engine_pool,
            isolate=isolate,
            journal_path=journal_path,
            resume=resume,
            policy=policy,
            engine_cache_dir=engine_cache_dir,
        )
    campaign = Campaign(timeout=timeout)
    pool = engine_pool
    if share_engines and pool is None:
        pool = EnginePool(cache_dir=engine_cache_dir)
    tracer = obs_runtime.TRACER
    span_cm = (
        tracer.span(
            "campaign", {"suites": len(suites), "solvers": list(solvers)}
        )
        if tracer is not None
        else contextlib.nullcontext()
    )
    with span_cm:
        for suite in suites:
            problems = [
                p
                for p in suite
                if problem_filter is None or problem_filter(p)
            ]
            if pool is not None:
                problems = batch_order(problems)
            for problem in problems:
                for solver_name in solvers:
                    record = run_problem(
                        problem, solver_name, timeout, engine_pool=pool
                    )
                    campaign.add(record)
                    if progress is not None:
                        progress(
                            f"{problem.suite}/{problem.name} "
                            f"{solver_name}: {record.status} "
                            f"({record.elapsed:.2f}s)"
                        )
    if pool is not None:
        pool.flush_cache()
        campaign.pool_stats = pool.as_dict()
    _publish_campaign_obs(campaign)
    return campaign


def task_id_for(problem: Problem, solver_name: str) -> str:
    """The stable journal/task key of one (problem, solver) pair."""
    return f"{problem.suite}/{problem.name}/{solver_name}"


def _publish_campaign_obs(campaign: Campaign) -> None:
    """Fold the finished campaign into the metrics registry (if any)
    and hang the merged snapshot on ``campaign.obs``.

    Per-record: the ``task.elapsed`` timing histogram, status and error
    tallies, and the model finder's stats dict.  Campaign-level: the
    pool and execution-layer counters.  The ``phase.*`` and ``sat.*``
    counters were already published at solve time by the instrumented
    layers themselves.
    """
    metrics = obs_runtime.METRICS
    if metrics is None:
        return
    for r in campaign.records:
        metrics.timing("task.elapsed", r.elapsed)
        metrics.inc(f"task.status.{r.status.value}")
        if r.error_kind:
            metrics.inc(f"task.error.{r.error_kind}")
        finder = r.details.get("finder")
        if isinstance(finder, dict):
            metrics.publish("finder", finder)
    if campaign.pool_stats:
        metrics.publish("pool", campaign.pool_stats)
    if campaign.exec_stats:
        metrics.publish(
            "exec",
            {
                k: v
                for k, v in campaign.exec_stats.items()
                # pool counters go in under their own prefix above; the
                # last heartbeat is a point sample, not a counter
                if k not in ("pool_stats", "last_heartbeat")
            },
        )
    campaign.obs = metrics.snapshot()


def _record_from_exec(problem: Problem, solver_name: str, rec: dict) -> RunRecord:
    """Rehydrate a supervisor verdict dict into a :class:`RunRecord`."""
    return RunRecord(
        problem,
        solver_name,
        Status(rec.get("status", "unknown")),
        float(rec.get("elapsed") or 0.0),
        bool(rec.get("correct", True)),
        rec.get("model_size"),
        rec.get("reason") or "",
        dict(rec.get("details") or {}),
        error_kind=rec.get("error_kind"),
        attempts=int(rec.get("attempts") or 1),
        traceback=rec.get("traceback") or "",
    )


def _run_campaign_supervised(
    suites: Sequence[Suite],
    *,
    solvers: Sequence[str],
    timeout: float,
    progress: Optional[Callable[[str], None]],
    problem_filter: Optional[Callable[[Problem], bool]],
    share_engines: bool,
    engine_pool: Optional[EnginePool],
    isolate: bool,
    journal_path: Optional[str],
    resume: bool,
    policy: Optional[object],
    engine_cache_dir: Optional[str] = None,
) -> Campaign:
    """The supervised campaign loop (see :func:`run_campaign`)."""
    # imported here so the default fast path never pays for (or cycles
    # with) the execution layer
    from repro.exec.supervisor import ExecPolicy, TaskSpec, execute_tasks

    if policy is None:
        policy = ExecPolicy()
    policy.isolate = policy.isolate or isolate
    policy.share_engines = policy.share_engines or share_engines
    if engine_cache_dir:
        # ship the warm-cache location to workers through the solver
        # options (RInGenConfig.engine_cache_dir); the journal's config
        # fingerprint deliberately ignores this key
        opts = dict(policy.solver_opts or {})
        opts.setdefault("engine_cache_dir", engine_cache_dir)
        policy.solver_opts = opts
    tasks: list[TaskSpec] = []
    task_problems: dict[str, tuple[Problem, str]] = {}
    index = 0
    for suite in suites:
        problems = [
            p
            for p in suite
            if problem_filter is None or problem_filter(p)
        ]
        if policy.share_engines:
            problems = batch_order(problems)
        for problem in problems:
            group_key = None
            if policy.share_engines and policy.isolate:
                try:
                    group_key = signature_fingerprint(
                        preprocess(problem.build())
                    )
                except Exception as error:
                    logger.warning(
                        "could not fingerprint %s/%s for batching "
                        "(%s); running it unshared",
                        problem.suite,
                        problem.name,
                        error,
                    )
            for solver_name in solvers:
                tid = task_id_for(problem, solver_name)
                tasks.append(
                    TaskSpec(
                        task_id=tid,
                        solver=solver_name,
                        timeout=timeout,
                        expected_status=problem.expected_status,
                        problem=problem,
                        index=index,
                        # only ringen rides the engine pool; batching
                        # the baselines by signature would be pointless
                        group_key=(
                            group_key if solver_name == "ringen" else None
                        ),
                    )
                )
                task_problems[tid] = (problem, solver_name)
                index += 1
    pool = engine_pool
    if policy.share_engines and not policy.isolate and pool is None:
        pool = EnginePool(cache_dir=engine_cache_dir)
    tracer = obs_runtime.TRACER
    span_cm = (
        tracer.span(
            "campaign",
            {
                "suites": len(suites),
                "solvers": list(solvers),
                "isolate": policy.isolate,
            },
        )
        if tracer is not None
        else contextlib.nullcontext()
    )
    with span_cm:
        records, stats = execute_tasks(
            tasks,
            policy,
            journal_path=journal_path,
            resume=resume,
            progress=progress,
            engine_pool=pool,
        )
    campaign = Campaign(timeout=timeout)
    for task in tasks:
        rec = records.get(task.task_id)
        if rec is None:
            continue  # interrupted before this task ran
        problem, solver_name = task_problems[task.task_id]
        campaign.add(_record_from_exec(problem, solver_name, rec))
    campaign.exec_stats = stats.as_dict()
    campaign.interrupted = stats.interrupted
    if pool is not None:
        pool.flush_cache()
        campaign.pool_stats = pool.as_dict()
    elif stats.pool_stats is not None:
        campaign.pool_stats = stats.pool_stats
    _publish_campaign_obs(campaign)
    return campaign
