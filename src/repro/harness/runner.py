"""Multi-solver experiment runner (the engine behind Table 1 and Figs 4-6).

Runs every solver on every problem of a suite with per-run timeouts,
records verdicts + wall times, checks each verdict against the problem's
ground truth (a wrong SAT/UNSAT is counted as *incorrect* and excluded
from the solved tallies, mirroring how solver competitions score), and
aggregates into the paper's tables and figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.benchgen.suite import Problem, Suite
from repro.chc.transform import preprocess
from repro.core.result import SolveResult, Status
from repro.core.ringen import RInGen, RInGenConfig
from repro.mace.pool import EnginePool, signature_fingerprint
from repro.solvers.elem import ElemConfig, ElemSolver
from repro.solvers.induct import InductConfig, InductSolver
from repro.solvers.sizeelem import SizeElemConfig, SizeElemSolver
from repro.solvers.verimap import VeriMapConfig, VeriMapSolver

SOLVER_ORDER = ["ringen", "eldarica", "spacer", "cvc4-ind", "verimap-iddt"]

# Table 1's header row: the representation class of each solver.
REPRESENTATION_ROW = {
    "ringen": "Reg",
    "eldarica": "SizeElem",
    "spacer": "Elem",
    "cvc4-ind": "-",
    "verimap-iddt": "-",
}


def make_solver(
    name: str, timeout: float, *, engine_pool: Optional[EnginePool] = None
):
    """Instantiate a solver under its Table 1 alias.

    ``engine_pool`` (campaign batch mode) only concerns RInGen — the
    baselines have no incremental engine to share and ignore it.
    """
    if name == "ringen":
        return RInGen(
            RInGenConfig(timeout=timeout, engine_pool=engine_pool)
        )
    if name == "eldarica":
        return SizeElemSolver(SizeElemConfig(timeout=timeout))
    if name == "spacer":
        return ElemSolver(ElemConfig(timeout=timeout))
    if name == "cvc4-ind":
        return InductSolver(InductConfig(timeout=timeout))
    if name == "verimap-iddt":
        return VeriMapSolver(VeriMapConfig(timeout=timeout))
    raise ValueError(f"unknown solver {name!r}")


@dataclass
class RunRecord:
    """One (problem, solver) measurement."""

    problem: Problem
    solver: str
    status: Status
    elapsed: float
    correct: bool
    model_size: Optional[int] = None
    reason: str = ""
    # solver-reported extras (e.g. the model finder's incremental-engine
    # statistics under "finder"), surfaced by the report generator
    details: dict = field(default_factory=dict)

    @property
    def solved(self) -> bool:
        return self.correct and self.status is not Status.UNKNOWN


@dataclass
class Campaign:
    """All measurements of one experiment run."""

    records: list[RunRecord] = field(default_factory=list)
    timeout: float = 1.0
    # campaign batch mode: cross-problem engine reuse counters from the
    # shared EnginePool (None when every problem got a fresh engine)
    pool_stats: Optional[dict] = None

    def add(self, record: RunRecord) -> None:
        self.records.append(record)

    # -- selections ------------------------------------------------------
    def for_solver(self, solver: str) -> list[RunRecord]:
        return [r for r in self.records if r.solver == solver]

    def for_suite(self, suite: str) -> list[RunRecord]:
        return [r for r in self.records if r.problem.suite == suite]

    def record(self, problem_name: str, solver: str) -> Optional[RunRecord]:
        for r in self.records:
            if r.problem.name == problem_name and r.solver == solver:
                return r
        return None

    # -- Table 1 aggregation ----------------------------------------------
    def count(self, suite: str, solver: str, status: Status) -> int:
        return sum(
            1
            for r in self.records
            if r.problem.suite == suite
            and r.solver == solver
            and r.status is status
            and r.correct
        )

    def unique_count(
        self, suite: str, solver: str, status: Status, others: Sequence[str]
    ) -> int:
        """Problems only this solver answered with ``status`` (correctly)."""
        mine = {
            r.problem.name
            for r in self.records
            if r.problem.suite == suite
            and r.solver == solver
            and r.status is status
            and r.correct
        }
        for other in others:
            if other == solver:
                continue
            mine -= {
                r.problem.name
                for r in self.records
                if r.problem.suite == suite
                and r.solver == other
                and r.status is status
                and r.correct
            }
        return len(mine)

    # -- figure data --------------------------------------------------------
    def scatter_points(
        self, competitor: str, *, sat_only: bool = False
    ) -> list[tuple[float, float, str]]:
        """Figure 4/5 points: (ringen time, competitor time, problem).

        Unsolved runs sit at the timeout value (the paper places timeouts
        on the dashed boundary lines).
        """
        points = []
        by_name: dict[str, dict[str, RunRecord]] = {}
        for r in self.records:
            by_name.setdefault(r.problem.name, {})[r.solver] = r
        for name, runs in by_name.items():
            mine = runs.get("ringen")
            theirs = runs.get(competitor)
            if mine is None or theirs is None:
                continue
            if sat_only and not (
                (mine.solved and mine.status is Status.SAT)
                or (theirs.solved and theirs.status is Status.SAT)
            ):
                continue
            x = mine.elapsed if mine.solved else self.timeout
            y = theirs.elapsed if theirs.solved else self.timeout
            points.append((x, y, name))
        return points

    def model_size_histogram(self) -> dict[int, int]:
        """Figure 6: distribution of finite-model sizes among SAT answers."""
        histogram: dict[int, int] = {}
        for r in self.records:
            if (
                r.solver == "ringen"
                and r.status is Status.SAT
                and r.correct
                and r.model_size is not None
            ):
                histogram[r.model_size] = histogram.get(r.model_size, 0) + 1
        return histogram


def batch_order(problems: Sequence[Problem]) -> list[Problem]:
    """Order a batch so signature-compatible problems run back-to-back.

    The engine pool keys persistent engines by signature fingerprint, so
    grouping compatible problems maximizes warm-engine hits and keeps
    the working set to one engine at a time (the pool's LRU never
    thrashes).  Problems are fingerprinted on their *preprocessed* form
    — the same form RInGen hands to the pool, so the schedule groups
    exactly by the pool's engine keys (preprocessing can add ``diseq``
    predicates that split raw-compatible systems apart).  Grouping is
    stable: groups appear in first-occurrence order and problems keep
    their relative order within a group.
    """
    groups: dict[tuple, list[Problem]] = {}
    order: list[tuple] = []
    for problem in problems:
        try:
            key = signature_fingerprint(preprocess(problem.build()))
        except Exception:
            key = ("unfingerprintable", problem.suite, problem.name)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(problem)
    return [p for key in order for p in groups[key]]


def run_problem(
    problem: Problem,
    solver_name: str,
    timeout: float,
    *,
    engine_pool: Optional[EnginePool] = None,
) -> RunRecord:
    """Run one solver on one problem and score the verdict."""
    solver = make_solver(solver_name, timeout, engine_pool=engine_pool)
    system = problem.build()
    start = time.monotonic()
    try:
        result = solver.solve(system)
    except Exception as error:  # solver crash counts as unknown
        return RunRecord(
            problem,
            solver_name,
            Status.UNKNOWN,
            time.monotonic() - start,
            True,
            reason=f"crash: {error}",
        )
    elapsed = time.monotonic() - start
    correct = (
        result.status is Status.UNKNOWN
        or result.status.value == problem.expected_status
    )
    model_size = None
    if result.is_sat:
        model_size = result.details.get("model_size")
    return RunRecord(
        problem,
        solver_name,
        result.status,
        elapsed,
        correct,
        model_size,
        result.reason,
        dict(result.details),
    )


def run_campaign(
    suites: Sequence[Suite],
    *,
    solvers: Optional[Sequence[str]] = None,
    timeout: float = 1.0,
    progress: Optional[Callable[[str], None]] = None,
    problem_filter: Optional[Callable[[Problem], bool]] = None,
    share_engines: bool = False,
    engine_pool: Optional[EnginePool] = None,
) -> Campaign:
    """Run the full (suite x solver) product.

    ``share_engines`` switches on campaign batch mode: one
    :class:`~repro.mace.pool.EnginePool` spans the whole run (pass
    ``engine_pool`` to supply your own), problems are scheduled in
    :func:`batch_order` so signature-compatible systems run
    back-to-back, and the pool's cross-problem reuse counters land in
    ``Campaign.pool_stats``.  Verdicts are unaffected — the pool only
    changes which solver state the model finder starts from.
    """
    campaign = Campaign(timeout=timeout)
    solvers = list(solvers or SOLVER_ORDER)
    pool = engine_pool
    if share_engines and pool is None:
        pool = EnginePool()
    for suite in suites:
        problems = [
            p
            for p in suite
            if problem_filter is None or problem_filter(p)
        ]
        if pool is not None:
            problems = batch_order(problems)
        for problem in problems:
            for solver_name in solvers:
                record = run_problem(
                    problem, solver_name, timeout, engine_pool=pool
                )
                campaign.add(record)
                if progress is not None:
                    progress(
                        f"{problem.suite}/{problem.name} "
                        f"{solver_name}: {record.status} "
                        f"({record.elapsed:.2f}s)"
                    )
    if pool is not None:
        campaign.pool_stats = pool.as_dict()
    return campaign
