"""MACE/Paradox-style finite model finding for constraint-free CHCs.

The reduction of Sec. 4.2: a constraint-free CHC system read as EUF is
satisfiable in a finite structure iff a propositional encoding over a fixed
domain-size vector is satisfiable.  We search size vectors in order of
total size (matching the model sizes reported in Figure 6), encode each
candidate with

* cell variables ``F[f, args, v]`` ("f(args) = v") with exactly-one-value
  constraints (totality + functionality),
* relation variables ``P[p, args]``,
* one ground CNF clause per instantiation of each (flattened) CHC,
* least-constant symmetry breaking on base constructors,

and solve with the in-repo CDCL solver.  A SAT answer decodes into a
:class:`~repro.mace.model.FiniteModel`; the caller then converts it to a
tree automaton (Theorem 1) to obtain a regular Herbrand model (Theorem 5).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.logic.formulas import TRUE
from repro.logic.sorts import FuncSymbol, PredSymbol, Sort
from repro.logic.terms import App, Term, Var
from repro.mace.model import FiniteModel, validate_model
from repro.sat.cnf import exactly_one
from repro.sat.solver import CDCLSolver


class FinderError(ValueError):
    """Raised on inputs the finder cannot encode."""


@dataclass
class FlatAtom:
    """A flattened atom ``P(x1, ..., xn)`` over variables only."""

    pred: PredSymbol
    vars: tuple[Var, ...]
    universal_vars: tuple[Var, ...] = ()
    # definitions local to the universal block: (func, arg vars, result var)
    local_defs: tuple[tuple[FuncSymbol, tuple[Var, ...], Var], ...] = ()
    local_vars: tuple[Var, ...] = ()


@dataclass
class FlatClause:
    """A flattened clause: definitions + body atoms -> head atom / bottom."""

    source: Clause
    vars: tuple[Var, ...]
    defs: tuple[tuple[FuncSymbol, tuple[Var, ...], Var], ...]
    body: tuple[FlatAtom, ...]
    head: Optional[FlatAtom]


def flatten_clause(cl: Clause, counter: itertools.count) -> FlatClause:
    """Flatten nested terms into chains of function-cell definitions.

    Every non-variable subterm receives a fresh variable; shared subterms
    share the variable.  Universal-block atoms get their own block-local
    definitions so that the block's Tseitin encoding can quantify over the
    intermediate values independently.
    """
    if cl.constraint != TRUE:
        raise FinderError(
            "model finder expects constraint-free clauses; preprocess first"
        )
    defs: dict[Term, Var] = {}
    def_list: list[tuple[FuncSymbol, tuple[Var, ...], Var]] = []

    def flatten_term(term: Term, sink: list, cache: dict) -> Var:
        if isinstance(term, Var):
            return term
        cached = cache.get(term)
        if cached is not None:
            return cached
        arg_vars = tuple(flatten_term(a, sink, cache) for a in term.args)
        fresh = Var(f"fl!{next(counter)}", term.func.result_sort)
        cache[term] = fresh
        sink.append((term.func, arg_vars, fresh))
        return fresh

    def flatten_atom(atom: BodyAtom) -> FlatAtom:
        if not atom.universal_vars:
            arg_vars = tuple(
                flatten_term(t, def_list, defs) for t in atom.args
            )
            return FlatAtom(atom.pred, arg_vars)
        local_sink: list = []
        local_cache: dict = {}
        arg_vars = tuple(
            flatten_term(t, local_sink, local_cache) for t in atom.args
        )
        local_vars = tuple(v for _, _, v in local_sink)
        return FlatAtom(
            atom.pred,
            arg_vars,
            atom.universal_vars,
            tuple(local_sink),
            local_vars,
        )

    body = tuple(flatten_atom(a) for a in cl.body)
    head: Optional[FlatAtom] = None
    if cl.head is not None:
        head = flatten_atom(cl.head)
    all_vars: set[Var] = set(cl.free_vars())
    all_vars.update(v for _, _, v in def_list)
    return FlatClause(
        cl,
        tuple(sorted(all_vars, key=lambda v: v.name)),
        tuple(def_list),
        body,
        head,
    )


@dataclass
class FinderStats:
    """Search statistics across attempted size vectors."""

    attempts: int = 0
    sat_vars: int = 0
    sat_clauses: int = 0
    elapsed: float = 0.0
    model_size: Optional[int] = None


@dataclass
class FinderResult:
    """Outcome of the finite model search."""

    model: Optional[FiniteModel]
    stats: FinderStats

    @property
    def found(self) -> bool:
        return self.model is not None


def size_vectors(
    sorts: Sequence[Sort], max_total: int, min_total: int = 0
) -> Iterator[dict[Sort, int]]:
    """All per-sort size assignments in order of increasing total size."""
    n = len(sorts)
    for total in range(max(n, min_total), max_total + 1):
        for composition in _compositions(total, n):
            yield dict(zip(sorts, composition))


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Compositions of ``total`` into ``parts`` positive integers."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first, *rest)


class ModelFinder:
    """Iterative-deepening finite model search for one CHC system."""

    def __init__(
        self,
        system: CHCSystem,
        *,
        max_total_size: int = 12,
        max_conflicts_per_size: Optional[int] = 200_000,
        symmetry_breaking: bool = True,
        deadline: Optional[float] = None,
        min_total_size: int = 0,
    ):
        self.system = system
        self.max_total_size = max_total_size
        self.min_total_size = min_total_size
        self.max_conflicts = max_conflicts_per_size
        self.symmetry_breaking = symmetry_breaking
        self.deadline = deadline
        counter = itertools.count()
        self.flat_clauses = [
            flatten_clause(cl, counter) for cl in system.clauses
        ]
        self.functions = sorted(
            system.adts.signature.functions.values(), key=lambda f: f.name
        )
        self.predicates = sorted(
            system.predicates.values(), key=lambda p: p.name
        )
        self.sorts = sorted(system.adts.sorts, key=lambda s: s.name)

    # ------------------------------------------------------------------
    def search(self) -> FinderResult:
        """Try size vectors in order of total size until a model appears."""
        stats = FinderStats()
        start = time.monotonic()
        for sizes in size_vectors(
            self.sorts, self.max_total_size, self.min_total_size
        ):
            if self.deadline is not None and time.monotonic() > self.deadline:
                break
            stats.attempts += 1
            model = self._try_sizes(sizes, stats)
            if model is not None:
                stats.elapsed = time.monotonic() - start
                stats.model_size = model.size()
                return FinderResult(model, stats)
        stats.elapsed = time.monotonic() - start
        return FinderResult(None, stats)

    # ------------------------------------------------------------------
    def _try_sizes(
        self, sizes: dict[Sort, int], stats: FinderStats
    ) -> Optional[FiniteModel]:
        solver = CDCLSolver()
        func_vars: dict[tuple[FuncSymbol, tuple[int, ...], int], int] = {}
        pred_vars: dict[tuple[PredSymbol, tuple[int, ...]], int] = {}

        def fvar(f: FuncSymbol, args: tuple[int, ...], val: int) -> int:
            key = (f, args, val)
            var = func_vars.get(key)
            if var is None:
                var = solver.new_var()
                func_vars[key] = var
            return var

        def pvar(p: PredSymbol, args: tuple[int, ...]) -> int:
            key = (p, args)
            var = pred_vars.get(key)
            if var is None:
                var = solver.new_var()
                pred_vars[key] = var
            return var

        ok = True
        # totality + functionality of every function cell
        for f in self.functions:
            pools = [range(sizes[s]) for s in f.arg_sorts]
            codomain = range(sizes[f.result_sort])
            for args in itertools.product(*pools):
                cell = [fvar(f, args, v) for v in codomain]
                for clause in exactly_one(cell):
                    ok &= solver.add_clause(clause)
        if self.symmetry_breaking:
            ok &= self._break_symmetry(solver, sizes, fvar)
        for flat in self.flat_clauses:
            encoded = self._encode_clause(flat, sizes, solver, fvar, pvar)
            if encoded is None:
                return None  # deadline hit mid-encoding
            ok &= encoded
            if not ok:
                break
        if not ok:
            return None
        outcome = solver.solve(
            max_conflicts=self.max_conflicts, deadline=self.deadline
        )
        stats.sat_vars = max(stats.sat_vars, solver.num_vars)
        stats.sat_clauses = max(
            stats.sat_clauses, len(solver.clauses)
        )
        if not outcome:
            return None
        assignment = solver.model()
        return self._decode(sizes, func_vars, pred_vars, assignment)

    # ------------------------------------------------------------------
    def _break_symmetry(self, solver, sizes, fvar) -> bool:
        """Least-number constraints on base constructors per sort.

        The i-th constant (in name order) of a sort may only take values
        ``0..i`` — a sound canonicity cut for constants (Claessen &
        Sörensson's least-number heuristic restricted to constants).
        """
        ok = True
        for sort in self.sorts:
            constants = [
                f
                for f in self.functions
                if f.result_sort == sort and f.arity == 0
            ]
            for i, c in enumerate(constants):
                for v in range(i + 1, sizes[sort]):
                    ok &= solver.add_clause([-fvar(c, (), v)])
        return ok

    # ------------------------------------------------------------------
    def _encode_clause(
        self, flat: FlatClause, sizes, solver, fvar, pvar
    ) -> Optional[bool]:
        """Ground one flattened clause over all variable assignments.

        Returns ``None`` when the deadline expires mid-grounding.
        """
        ok = True
        pools = [range(sizes[v.sort]) for v in flat.vars]
        index = {v: i for i, v in enumerate(flat.vars)}
        instances = 0
        for combo in itertools.product(*pools):
            instances += 1
            if (
                self.deadline is not None
                and instances % 4096 == 0
                and time.monotonic() > self.deadline
            ):
                return None

            def val(v: Var) -> int:
                return combo[index[v]]

            literals: list[int] = []
            consistent = True
            for func, arg_vars, result in flat.defs:
                args = tuple(val(a) for a in arg_vars)
                literals.append(-fvar(func, args, val(result)))
            for atom in flat.body:
                if atom.universal_vars:
                    lit = self._universal_block_lit(
                        atom, combo, index, sizes, solver, fvar, pvar
                    )
                    literals.append(-lit)
                else:
                    args = tuple(val(v) for v in atom.vars)
                    literals.append(-pvar(atom.pred, args))
            if flat.head is not None:
                args = tuple(val(v) for v in flat.head.vars)
                literals.append(pvar(flat.head.pred, args))
            if consistent:
                ok &= solver.add_clause(literals)
            if not ok:
                return False
        return ok

    # ------------------------------------------------------------------
    def _universal_block_lit(
        self, atom: FlatAtom, combo, index, sizes, solver, fvar, pvar
    ) -> int:
        """Tseitin literal ``t`` with ``t <- block``.

        ``t`` is implied by the truth of the whole universal block, so a
        negated ``t`` in a ground clause soundly asserts the block fails.
        For each instantiation of the block's universal variables and each
        choice of block-local intermediate values, we add
        ``defs /\\ P(args) -> t_inst`` and ``(/\\ t_inst) -> t``.
        """
        t = solver.new_var()
        inst_lits: list[int] = []
        upools = [range(sizes[v.sort]) for v in atom.universal_vars]
        for ucombo in itertools.product(*upools):
            t_inst = solver.new_var()
            inst_lits.append(t_inst)
            lpools = [range(sizes[v.sort]) for v in atom.local_vars]
            lindex = {v: i for i, v in enumerate(atom.local_vars)}
            uindex = {v: i for i, v in enumerate(atom.universal_vars)}

            for lcombo in itertools.product(*lpools):

                def val(v: Var) -> int:
                    if v in lindex:
                        return lcombo[lindex[v]]
                    if v in uindex:
                        return ucombo[uindex[v]]
                    return combo[index[v]]

                premise: list[int] = []
                for func, arg_vars, result in atom.local_defs:
                    args = tuple(val(a) for a in arg_vars)
                    premise.append(fvar(func, args, val(result)))
                args = tuple(val(v) for v in atom.vars)
                premise.append(pvar(atom.pred, args))
                solver.add_clause([-p for p in premise] + [t_inst])
        solver.add_clause([-l for l in inst_lits] + [t])
        return t

    # ------------------------------------------------------------------
    def _decode(
        self, sizes, func_vars, pred_vars, assignment
    ) -> FiniteModel:
        functions: dict[FuncSymbol, dict[tuple[int, ...], int]] = {}
        for (f, args, v), var in func_vars.items():
            if assignment.get(var):
                functions.setdefault(f, {})[args] = v
        predicates: dict[PredSymbol, set[tuple[int, ...]]] = {
            p: set() for p in self.predicates
        }
        for (p, args), var in pred_vars.items():
            if assignment.get(var):
                predicates[p].add(args)
        model = FiniteModel(dict(sizes), functions, predicates)
        validate_model(model)
        return model


def find_model(
    system: CHCSystem,
    *,
    max_total_size: int = 12,
    timeout: Optional[float] = None,
    symmetry_breaking: bool = True,
    max_conflicts_per_size: Optional[int] = 200_000,
    min_total_size: int = 0,
) -> FinderResult:
    """Search for a finite model of a constraint-free CHC system."""
    deadline = None if timeout is None else time.monotonic() + timeout
    finder = ModelFinder(
        system,
        max_total_size=max_total_size,
        max_conflicts_per_size=max_conflicts_per_size,
        symmetry_breaking=symmetry_breaking,
        deadline=deadline,
        min_total_size=min_total_size,
    )
    return finder.search()
