"""MACE/Paradox-style finite model finding for constraint-free CHCs.

The reduction of Sec. 4.2: a constraint-free CHC system read as EUF is
satisfiable in a finite structure iff a propositional encoding over a fixed
domain-size vector is satisfiable.  We search size vectors in order of
total size (matching the model sizes reported in Figure 6), encode each
candidate with

* cell variables ``F[f, args, v]`` ("f(args) = v") with exactly-one-value
  constraints (totality + functionality),
* relation variables ``P[p, args]``,
* one ground CNF clause per instantiation of each (flattened) CHC,
* least-constant symmetry breaking on base constructors,

and solve with the in-repo CDCL solver.  A SAT answer decodes into a
:class:`~repro.mace.model.FiniteModel`; the caller then converts it to a
tree automaton (Theorem 1) to obtain a regular Herbrand model (Theorem 5).

Incremental engine (the selector-literal encoding)
--------------------------------------------------

Consecutive size vectors share almost all of their ground encoding, so by
default one persistent :class:`~repro.sat.solver.CDCLSolver` spans the
whole sweep instead of being rebuilt per vector.  Size-dependence is
expressed through *existence selectors*: for every sort ``s`` and index
``v`` a literal ``ex[s, v]`` reads "element ``v`` of sort ``s`` exists".
The selectors form a prefix chain (``ex[s, v] -> ex[s, v-1]``; ``ex[s, 0]``
is a unit fact), so a candidate vector ``k`` is selected purely through
assumptions: ``ex[s, k_s - 1]`` and ``-ex[s, k_s]`` pin the active domain
of each sort to exactly ``{0 .. k_s - 1}``.  Size-dependent clauses are
guarded so that they are vacuous outside the vectors they describe:

* *cells*: functionality (pairwise at-most-one) and value-existence
  (``F[f, args, v] -> ex[s, v]``) clauses are valid for every size and
  carry no guard; the totality (at-least-one) row for a cell is guarded
  by ``-ex`` literals on the argument elements (inactive cells are
  don't-care) plus the positive frontier literal ``ex[s, K]`` for the
  codomain bound ``K`` it was emitted at, so growing a sort's domain just
  re-emits that one row wider while everything else is reused;
* *ground CHC instances*: guarded by ``-ex`` literals on the instance's
  element values, so an instance emitted once binds for every vector
  that contains those elements;
* *universal blocks*: per-instance Tseitin literals are forced true for
  inactive instantiations (``ex[s, u] \\/ t_inst``) and the block
  conjunction carries frontier guards, so the same block literal is
  correct at every active size;
* *symmetry breaking*: the least-constant cuts are unit clauses valid at
  every size and are emitted once per new element.

Growing a sort's domain therefore only adds the new cells', instances'
and block rows' clauses, while learned clauses, VSIDS activity and saved
phases carry across the entire sweep (solved with
``solver.solve(assumptions=...)``).

The engine *resets* (discarding the solver and re-encoding from scratch)
in exactly two situations: when the caller asks for the from-scratch
ablation (``incremental=False`` — a reset before every vector), and as a
safety valve when the shared clause database derives a level-0
contradiction, which would otherwise bleed an UNSAT verdict into every
later size vector.  Both show up in :class:`FinderStats.solver_resets`.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.logic.formulas import TRUE
from repro.logic.sorts import FuncSymbol, PredSymbol, Sort
from repro.logic.terms import App, Term, Var
from repro.mace.model import FiniteModel, validate_model
from repro.sat.cnf import SelectorPool
from repro.sat.solver import CDCLSolver


class FinderError(ValueError):
    """Raised on inputs the finder cannot encode."""


@dataclass
class FlatAtom:
    """A flattened atom ``P(x1, ..., xn)`` over variables only."""

    pred: PredSymbol
    vars: tuple[Var, ...]
    universal_vars: tuple[Var, ...] = ()
    # definitions local to the universal block: (func, arg vars, result var)
    local_defs: tuple[tuple[FuncSymbol, tuple[Var, ...], Var], ...] = ()
    local_vars: tuple[Var, ...] = ()


@dataclass
class FlatClause:
    """A flattened clause: definitions + body atoms -> head atom / bottom."""

    source: Clause
    vars: tuple[Var, ...]
    defs: tuple[tuple[FuncSymbol, tuple[Var, ...], Var], ...]
    body: tuple[FlatAtom, ...]
    head: Optional[FlatAtom]


def flatten_clause(cl: Clause, counter: itertools.count) -> FlatClause:
    """Flatten nested terms into chains of function-cell definitions.

    Every non-variable subterm receives a fresh variable; shared subterms
    share the variable.  Universal-block atoms get their own block-local
    definitions so that the block's Tseitin encoding can quantify over the
    intermediate values independently.
    """
    if cl.constraint != TRUE:
        raise FinderError(
            "model finder expects constraint-free clauses; preprocess first"
        )
    defs: dict[Term, Var] = {}
    def_list: list[tuple[FuncSymbol, tuple[Var, ...], Var]] = []

    def flatten_term(term: Term, sink: list, cache: dict) -> Var:
        if isinstance(term, Var):
            return term
        cached = cache.get(term)
        if cached is not None:
            return cached
        arg_vars = tuple(flatten_term(a, sink, cache) for a in term.args)
        fresh = Var(f"fl!{next(counter)}", term.func.result_sort)
        cache[term] = fresh
        sink.append((term.func, arg_vars, fresh))
        return fresh

    def flatten_atom(atom: BodyAtom) -> FlatAtom:
        if not atom.universal_vars:
            arg_vars = tuple(
                flatten_term(t, def_list, defs) for t in atom.args
            )
            return FlatAtom(atom.pred, arg_vars)
        local_sink: list = []
        local_cache: dict = {}
        arg_vars = tuple(
            flatten_term(t, local_sink, local_cache) for t in atom.args
        )
        local_vars = tuple(v for _, _, v in local_sink)
        return FlatAtom(
            atom.pred,
            arg_vars,
            atom.universal_vars,
            tuple(local_sink),
            local_vars,
        )

    body = tuple(flatten_atom(a) for a in cl.body)
    head: Optional[FlatAtom] = None
    if cl.head is not None:
        head = flatten_atom(cl.head)
    all_vars: set[Var] = set(cl.free_vars())
    all_vars.update(v for _, _, v in def_list)
    return FlatClause(
        cl,
        tuple(sorted(all_vars, key=lambda v: v.name)),
        tuple(def_list),
        body,
        head,
    )


@dataclass
class FinderStats:
    """Search statistics across attempted size vectors.

    ``clauses_encoded`` counts clauses handed to the SAT solver during
    this search, while ``clauses_reused`` sums, over all attempts, the
    clauses that were already in the solver when the attempt started —
    the quantity the incremental engine exists to maximise.
    ``learned_total`` counts conflict clauses derived during the search
    and ``learned_kept`` the learned clauses still alive (carried across
    attempts) when it ended.
    """

    attempts: int = 0
    sat_vars: int = 0
    sat_clauses: int = 0
    elapsed: float = 0.0
    model_size: Optional[int] = None
    clauses_encoded: int = 0
    clauses_reused: int = 0
    learned_total: int = 0
    learned_kept: int = 0
    solver_resets: int = 0
    incremental: bool = True

    def as_dict(self) -> dict:
        """Plain-dict view for result details / JSON artifacts."""
        return dataclasses.asdict(self)


@dataclass
class FinderResult:
    """Outcome of the finite model search."""

    model: Optional[FiniteModel]
    stats: FinderStats

    @property
    def found(self) -> bool:
        return self.model is not None


def size_vectors(
    sorts: Sequence[Sort], max_total: int, min_total: int = 0
) -> Iterator[dict[Sort, int]]:
    """All per-sort size assignments in order of increasing total size."""
    n = len(sorts)
    for total in range(max(n, min_total), max_total + 1):
        for composition in _compositions(total, n):
            yield dict(zip(sorts, composition))


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Compositions of ``total`` into ``parts`` positive integers."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first, *rest)


def _combos(
    old: Optional[tuple[int, ...]], new: tuple[int, ...]
) -> Iterator[tuple[int, ...]]:
    """Tuples over ``prod(range(n) for n in new)`` not yet covered.

    ``old is None`` means nothing was covered (yield the full space);
    otherwise yield exactly the difference of the two boxes, enumerated
    by the position of the first component that escapes the old box.
    """
    if old is None:
        yield from itertools.product(*[range(n) for n in new])
        return
    for pivot in range(len(new)):
        if new[pivot] <= old[pivot]:
            continue
        pools: list[range] = []
        for j in range(len(new)):
            if j < pivot:
                pools.append(range(old[j]))
            elif j == pivot:
                pools.append(range(old[j], new[j]))
            else:
                pools.append(range(new[j]))
        yield from itertools.product(*pools)


@dataclass
class _BlockState:
    """Persistent encoding state of one universal-block Tseitin literal."""

    atom: FlatAtom
    outer: dict[Var, int]
    t: int
    t_insts: dict[tuple[int, ...], int] = field(default_factory=dict)
    done_u: Optional[tuple[int, ...]] = None
    done_l: Optional[tuple[int, ...]] = None


class _IncrementalEngine:
    """One persistent CDCL encoding spanning the whole size sweep.

    See the module docstring for the selector-literal scheme.  The engine
    owns the solver, the cell/relation variable maps and the growth
    bookkeeping; :class:`ModelFinder` drives it one size vector at a
    time through :meth:`try_vector`.
    """

    def __init__(self, finder: "ModelFinder"):
        self.finder = finder
        self._folded_added = 0
        self._folded_learned = 0
        self._tick_count = 0
        self._constants: dict[Sort, list[FuncSymbol]] = {
            s: [
                f
                for f in finder.functions
                if f.result_sort == s and f.arity == 0
            ]
            for s in finder.sorts
        }
        self._fresh()

    # -- lifecycle ---------------------------------------------------------
    def _fresh(self) -> None:
        finder = self.finder
        self.solver = CDCLSolver()
        self.selectors = SelectorPool(self.solver)
        self.cur: dict[Sort, int] = {s: 0 for s in finder.sorts}
        # nested variable tables: one symbol hash to reach a table keyed
        # by cheap int tuples (the encode loops are hash-bound otherwise)
        self.func_vars: dict[
            FuncSymbol, dict[tuple[tuple[int, ...], int], int]
        ] = {f: {} for f in finder.functions}
        self.pred_vars: dict[
            PredSymbol, dict[tuple[int, ...], int]
        ] = {p: {} for p in finder.predicates}
        # existence selectors per sort, indexed by element: _ex_rows[s][v]
        self._ex_rows: dict[Sort, list[int]] = {
            s: [] for s in finder.sorts
        }
        # per function: (arg-space sizes, codomain size) already encoded
        self._func_done: dict[
            FuncSymbol, tuple[tuple[int, ...], int]
        ] = {}
        # per flat clause: variable-space sizes already instantiated
        self._clause_done: list[Optional[tuple[int, ...]]] = [
            None for _ in finder.flat_clauses
        ]
        self._sb_done: dict[Sort, int] = {s: 0 for s in finder.sorts}
        self._blocks: list[_BlockState] = []
        # positional layouts per block atom (tables are solver-scoped,
        # so the cache resets with the engine)
        self._atom_layouts: dict[int, tuple] = {}
        self._ok = True
        self.hopeless = False

    def reset(self, stats: FinderStats) -> None:
        """Discard the shared solver state and start over."""
        stats.solver_resets += 1
        self._folded_added += self.solver.stats.clauses_added
        self._folded_learned += self.solver.stats.learned
        self._fresh()

    @property
    def total_added(self) -> int:
        return self._folded_added + self.solver.stats.clauses_added

    @property
    def total_learned(self) -> int:
        return self._folded_learned + self.solver.stats.learned

    # -- small helpers -----------------------------------------------------
    def _add(self, literals: list[int]) -> None:
        self._ok &= self.solver.add_clause(literals)

    def _tick(self) -> bool:
        """Deadline poll for the encoding loops; False = give up."""
        self._tick_count += 1
        deadline = self.finder.deadline
        if (
            deadline is not None
            and self._tick_count % 2048 == 0
            and time.monotonic() > deadline
        ):
            return False
        return True

    def _ex(self, sort: Sort, v: int) -> int:
        """Existence selector ``ex[sort, v]`` with its chain clause."""
        row = self._ex_rows[sort]
        while len(row) <= v:
            lit = self.selectors.selector(("ex", sort, len(row)))
            if not row:
                self._add([lit])  # every sort is inhabited
            else:
                self._add([-lit, row[-1]])  # prefix chain
            row.append(lit)
        return row[v]

    def _fvar(self, f: FuncSymbol, args: tuple[int, ...], val: int) -> int:
        table = self.func_vars[f]
        key = (args, val)
        var = table.get(key)
        if var is None:
            var = self.solver.new_var()
            table[key] = var
        return var

    def _pvar(self, p: PredSymbol, args: tuple[int, ...]) -> int:
        table = self.pred_vars[p]
        var = table.get(args)
        if var is None:
            var = self.solver.new_var()
            table[args] = var
        return var

    # -- growth ------------------------------------------------------------
    def ensure(self, sizes: dict[Sort, int]) -> Optional[bool]:
        """Grow the encoding so every sort covers ``sizes``.

        Returns ``None`` when the deadline expired mid-encoding (the
        encoding stays consistent — already-emitted clauses are valid —
        but ``cur`` is not advanced).
        """
        finder = self.finder
        new = {s: max(self.cur[s], sizes[s]) for s in finder.sorts}
        if new == self.cur:
            return True
        for s in finder.sorts:
            self._ex(s, new[s])  # frontier + chain up front
        if self._encode_cells(new) is None:
            return None
        self._encode_symmetry(new)
        for block in list(self._blocks):
            if self._grow_block(block, new) is None:
                return None
        if self._encode_clauses(new) is None:
            return None
        self.cur = new
        return self._ok

    def _encode_cells(self, new: dict[Sort, int]) -> Optional[bool]:
        for func in self.finder.functions:
            res = func.result_sort
            new_cod = new[res]
            arg_sizes = tuple(new[s] for s in func.arg_sorts)
            done = self._func_done.get(func)
            old_args, old_cod = done if done else (None, 0)
            table = self.func_vars[func]
            res_row = self._ex_rows[res]
            arg_rows = [self._ex_rows[s] for s in func.arg_sorts]
            new_var = self.solver.new_var

            def cell_vars(args: tuple[int, ...]) -> list[int]:
                cell = []
                for v in range(new_cod):
                    key = (args, v)
                    var = table.get(key)
                    if var is None:
                        var = new_var()
                        table[key] = var
                    cell.append(var)
                return cell

            def emit_rows(args: tuple[int, ...], lo: int) -> None:
                """Functionality, value-existence and totality rows."""
                cell = cell_vars(args)
                for j in range(lo, new_cod):
                    for i in range(j):
                        self._add([-cell[i], -cell[j]])
                    if j >= 1:
                        self._add([-cell[j], res_row[j]])
                literals = [
                    -arg_rows[i][a]
                    for i, a in enumerate(args)
                    if a >= 1
                ]
                literals.append(res_row[new_cod])  # frontier guard
                literals.extend(cell)
                self._add(literals)

            for args in _combos(old_args, arg_sizes):
                if not self._tick():
                    return None
                emit_rows(args, 0)
            if done is not None and new_cod > old_cod:
                for args in itertools.product(
                    *[range(n) for n in old_args]
                ):
                    if not self._tick():
                        return None
                    emit_rows(args, old_cod)
            self._func_done[func] = (arg_sizes, new_cod)
        return self._ok

    def _encode_symmetry(self, new: dict[Sort, int]) -> None:
        """Least-number constraints on base constructors per sort.

        The i-th constant (in name order) of a sort may only take values
        ``0..i`` — a sound canonicity cut for constants (Claessen &
        Sörensson's least-number heuristic restricted to constants).
        The units are valid at every domain size, so they are emitted
        once per new element and shared by the whole sweep.
        """
        if not self.finder.symmetry_breaking:
            return
        for sort in self.finder.sorts:
            done, size = self._sb_done[sort], new[sort]
            if size <= done:
                continue
            for i, c in enumerate(self._constants[sort]):
                for v in range(max(i + 1, done), size):
                    self._add([-self._fvar(c, (), v)])
            self._sb_done[sort] = size

    def _encode_clauses(self, new: dict[Sort, int]) -> Optional[bool]:
        for idx, flat in enumerate(self.finder.flat_clauses):
            var_sizes = tuple(new[v.sort] for v in flat.vars)
            old = self._clause_done[idx]
            if old == var_sizes:
                continue
            # precomputed layout: positions instead of Var-keyed dicts,
            # so the grounding loop only touches int tuples
            index = {v: i for i, v in enumerate(flat.vars)}
            ex_rows = [self._ex_rows[v.sort] for v in flat.vars]
            defs = [
                (
                    self.func_vars[func],
                    tuple(index[a] for a in arg_vars),
                    index[result],
                )
                for func, arg_vars, result in flat.defs
            ]
            plain = []
            block_atoms = []
            for atom in flat.body:
                if atom.universal_vars:
                    block_atoms.append(atom)
                else:
                    plain.append(
                        (
                            self.pred_vars[atom.pred],
                            tuple(index[v] for v in atom.vars),
                        )
                    )
            head = None
            if flat.head is not None:
                head = (
                    self.pred_vars[flat.head.pred],
                    tuple(index[v] for v in flat.head.vars),
                )
            new_var = self.solver.new_var
            # blocks created past this point belong to instances whose
            # clause index has not committed yet (``_clause_done``); on
            # a deadline abort they are dropped so a resumed sweep does
            # not keep growing orphans for combos it will re-emit
            blocks_committed = len(self._blocks)
            for combo in _combos(old, var_sizes):
                if not self._tick():
                    del self._blocks[blocks_committed:]
                    return None
                literals: list[int] = []
                for i, c in enumerate(combo):
                    if c:
                        literals.append(-ex_rows[i][c])
                for table, apos, rpos in defs:
                    key = (
                        tuple(combo[j] for j in apos),
                        combo[rpos],
                    )
                    var = table.get(key)
                    if var is None:
                        var = new_var()
                        table[key] = var
                    literals.append(-var)
                for atom in block_atoms:
                    block = _BlockState(
                        atom,
                        {v: combo[i] for v, i in index.items()},
                        new_var(),
                    )
                    self._blocks.append(block)
                    if self._grow_block(block, new) is None:
                        del self._blocks[blocks_committed:]
                        return None
                    literals.append(-block.t)
                for table, apos in plain:
                    args = tuple(combo[j] for j in apos)
                    var = table.get(args)
                    if var is None:
                        var = new_var()
                        table[args] = var
                    literals.append(-var)
                if head is not None:
                    table, apos = head
                    args = tuple(combo[j] for j in apos)
                    var = table.get(args)
                    if var is None:
                        var = new_var()
                        table[args] = var
                    literals.append(var)
                self._add(literals)
            self._clause_done[idx] = var_sizes
        return self._ok

    # -- universal blocks --------------------------------------------------
    def _grow_block(
        self, block: _BlockState, new: dict[Sort, int]
    ) -> Optional[bool]:
        """(Re-)encode one universal block up to the ``new`` sizes.

        ``t`` is implied by the truth of the whole universal block over
        the *active* elements, so a negated ``t`` in a ground clause
        soundly asserts the block fails.  Per instantiation ``u`` of the
        block's universal variables a literal ``t_inst`` is forced true
        when ``u`` is inactive and implied by ``defs /\\ P(args)`` for
        every choice of block-local intermediate values; the guarded
        conjunction ``(/\\ t_inst) -> t`` is re-emitted wider whenever a
        universal sort grows (the old row is vacuous beyond its frontier
        guard).
        """
        atom = block.atom
        u_sizes = tuple(new[v.sort] for v in atom.universal_vars)
        l_sizes = tuple(new[v.sort] for v in atom.local_vars)
        grew_u = block.done_u != u_sizes
        for ucombo in _combos(block.done_u, u_sizes):
            if not self._tick():
                return None
            t_inst = self.solver.new_var()
            block.t_insts[ucombo] = t_inst
            for v, u in zip(atom.universal_vars, ucombo):
                if u >= 1:
                    # inactive instantiations hold vacuously
                    self._add([self._ex(v.sort, u), t_inst])
            if self._emit_premises(block, ucombo, None, l_sizes) is None:
                return None
        if block.done_u is not None and block.done_l != l_sizes:
            for ucombo in itertools.product(
                *[range(n) for n in block.done_u]
            ):
                if (
                    self._emit_premises(
                        block, ucombo, block.done_l, l_sizes
                    )
                    is None
                ):
                    return None
        if grew_u:
            literals = [
                self._ex(s, new[s])
                for s in dict.fromkeys(
                    v.sort for v in atom.universal_vars
                )
            ]
            literals.extend(-ti for ti in block.t_insts.values())
            literals.append(block.t)
            self._add(literals)
        block.done_u, block.done_l = u_sizes, l_sizes
        return True

    def _block_layout(self, atom: FlatAtom):
        """Positional layout of a block atom, computed once per atom.

        Variables are resolved to ("l", i) / ("u", i) / ("o", var)
        slots so the innermost grounding loop only touches int tuples
        (same optimization as the plain-clause grounding loop).
        """
        layout = self._atom_layouts.get(id(atom))
        if layout is None:
            uindex = {v: i for i, v in enumerate(atom.universal_vars)}
            lindex = {v: i for i, v in enumerate(atom.local_vars)}

            def pos(v: Var):
                if v in lindex:
                    return ("l", lindex[v])
                if v in uindex:
                    return ("u", uindex[v])
                return ("o", v)

            defs = [
                (
                    self.func_vars[func],
                    tuple(pos(a) for a in arg_vars),
                    pos(result),
                )
                for func, arg_vars, result in atom.local_defs
            ]
            layout = (
                defs,
                self.pred_vars[atom.pred],
                tuple(pos(v) for v in atom.vars),
            )
            self._atom_layouts[id(atom)] = layout
        return layout

    def _emit_premises(
        self,
        block: _BlockState,
        ucombo: tuple[int, ...],
        old_l: Optional[tuple[int, ...]],
        l_sizes: tuple[int, ...],
    ) -> Optional[bool]:
        t_inst = block.t_insts[ucombo]
        defs, ptable, arg_slots = self._block_layout(block.atom)
        outer = block.outer
        new_var = self.solver.new_var
        lcombo: tuple[int, ...] = ()

        def value(slot) -> int:
            kind, x = slot
            if kind == "l":
                return lcombo[x]
            if kind == "u":
                return ucombo[x]
            return outer[x]

        for lcombo in _combos(old_l, l_sizes):
            if not self._tick():
                return None
            premise: list[int] = []
            for table, arg_pos, res_pos in defs:
                key = (
                    tuple(value(p) for p in arg_pos),
                    value(res_pos),
                )
                var = table.get(key)
                if var is None:
                    var = new_var()
                    table[key] = var
                premise.append(var)
            args = tuple(value(p) for p in arg_slots)
            var = ptable.get(args)
            if var is None:
                var = new_var()
                ptable[args] = var
            premise.append(var)
            self._add([-p for p in premise] + [t_inst])
        return True

    # -- solving -----------------------------------------------------------
    def try_vector(
        self, sizes: dict[Sort, int], stats: FinderStats
    ) -> Optional[FiniteModel]:
        # same counter family as clauses_encoded (accepted add_clause
        # calls incl. units), so the reuse ratio compares like with like
        pre_added = self.solver.stats.clauses_added
        grown = self.ensure(sizes)
        if grown is None:
            return None  # deadline hit mid-encoding
        if not self._ok:
            # Level-0 contradiction in the shared database: it can no
            # longer discriminate between size vectors, so rebuild for
            # just this one (the documented reset safety valve).
            self.reset(stats)
            pre_added = 0
            if self.ensure(sizes) is None:
                return None
            if not self._ok:
                # A fresh encoding is contradictory without assumptions.
                # Every clause is valid at every size, so the conflict is
                # size-independent: no vector can ever succeed.
                self.hopeless = True
                return None
        stats.clauses_reused += pre_added
        limit = self.finder.max_learned_clauses
        if limit is not None and len(self.solver.learned_clauses) > limit:
            self.solver.reduce_learned(limit // 2)
        assumptions: list[int] = []
        for s in self.finder.sorts:
            k = sizes[s]
            if k >= 2:
                assumptions.append(self._ex(s, k - 1))
            assumptions.append(-self._ex(s, k))
        outcome = self.solver.solve(
            assumptions,
            max_conflicts=self.finder.max_conflicts,
            deadline=self.finder.deadline,
        )
        stats.sat_vars = max(stats.sat_vars, self.solver.num_vars)
        stats.sat_clauses = max(stats.sat_clauses, len(self.solver.clauses))
        if not outcome:
            return None
        return self._decode(sizes, self.solver.model())

    def _decode(
        self, sizes: dict[Sort, int], assignment: dict[int, bool]
    ) -> FiniteModel:
        functions: dict[FuncSymbol, dict[tuple[int, ...], int]] = {}
        for f, table in self.func_vars.items():
            res_size = sizes[f.result_sort]
            arg_sizes = [sizes[s] for s in f.arg_sorts]
            for (args, v), var in table.items():
                if v >= res_size:
                    continue
                if any(a >= k for a, k in zip(args, arg_sizes)):
                    continue
                if assignment.get(var):
                    functions.setdefault(f, {})[args] = v
        predicates: dict[PredSymbol, set[tuple[int, ...]]] = {
            p: set() for p in self.finder.predicates
        }
        for p, table in self.pred_vars.items():
            arg_sizes = [sizes[s] for s in p.arg_sorts]
            for args, var in table.items():
                if any(a >= k for a, k in zip(args, arg_sizes)):
                    continue
                if assignment.get(var):
                    predicates[p].add(args)
        model = FiniteModel(dict(sizes), functions, predicates)
        validate_model(model)
        return model


_UNSET = object()


class ModelFinder:
    """Iterative-deepening finite model search for one CHC system.

    With ``incremental=True`` (the default) the finder keeps one
    :class:`_IncrementalEngine` alive across every :meth:`search` call,
    so repeated searches (e.g. resuming at a larger minimum size after a
    failed Herbrand check) also reuse the encoding and learned clauses.
    ``incremental=False`` resets the engine before every size vector —
    the from-scratch behaviour, kept for the ablation benchmark.
    """

    def __init__(
        self,
        system: CHCSystem,
        *,
        max_total_size: int = 12,
        max_conflicts_per_size: Optional[int] = 200_000,
        symmetry_breaking: bool = True,
        deadline: Optional[float] = None,
        min_total_size: int = 0,
        incremental: bool = True,
        max_learned_clauses: Optional[int] = 20_000,
    ):
        self.system = system
        self.max_total_size = max_total_size
        self.min_total_size = min_total_size
        self.max_conflicts = max_conflicts_per_size
        self.symmetry_breaking = symmetry_breaking
        self.deadline = deadline
        self.incremental = incremental
        self.max_learned_clauses = max_learned_clauses
        counter = itertools.count()
        self.flat_clauses = [
            flatten_clause(cl, counter) for cl in system.clauses
        ]
        self.functions = sorted(
            system.adts.signature.functions.values(), key=lambda f: f.name
        )
        self.predicates = sorted(
            system.predicates.values(), key=lambda p: p.name
        )
        self.sorts = sorted(system.adts.sorts, key=lambda s: s.name)
        self._engine: Optional[_IncrementalEngine] = None

    # ------------------------------------------------------------------
    def search(
        self,
        *,
        min_total_size: Optional[int] = None,
        deadline: object = _UNSET,
    ) -> FinderResult:
        """Try size vectors in order of total size until a model appears.

        ``min_total_size`` applies to this call only.  Passing
        ``deadline`` *replaces* the finder's deadline from here on
        (callers resuming a sweep supply a fresh budget each call while
        the engine keeps its state); omit it to keep the current one.
        """
        if deadline is not _UNSET:
            self.deadline = deadline  # type: ignore[assignment]
        min_total = (
            self.min_total_size if min_total_size is None else min_total_size
        )
        if self._engine is None:
            self._engine = _IncrementalEngine(self)
        engine = self._engine
        stats = FinderStats(incremental=self.incremental)
        base_added = engine.total_added
        base_learned = engine.total_learned
        start = time.monotonic()

        def finish(model: Optional[FiniteModel]) -> FinderResult:
            stats.elapsed = time.monotonic() - start
            stats.clauses_encoded = engine.total_added - base_added
            stats.learned_total = engine.total_learned - base_learned
            stats.learned_kept = len(engine.solver.learned_clauses)
            if model is not None:
                stats.model_size = model.size()
            return FinderResult(model, stats)

        for sizes in size_vectors(
            self.sorts, self.max_total_size, min_total
        ):
            if self.deadline is not None and time.monotonic() > self.deadline:
                break
            stats.attempts += 1
            if not self.incremental:
                engine.reset(stats)
            model = engine.try_vector(sizes, stats)
            if model is not None:
                return finish(model)
            if engine.hopeless:
                break  # size-independent contradiction: no model exists
        return finish(None)


def find_model(
    system: CHCSystem,
    *,
    max_total_size: int = 12,
    timeout: Optional[float] = None,
    symmetry_breaking: bool = True,
    max_conflicts_per_size: Optional[int] = 200_000,
    min_total_size: int = 0,
    incremental: bool = True,
    max_learned_clauses: Optional[int] = 20_000,
) -> FinderResult:
    """Search for a finite model of a constraint-free CHC system."""
    deadline = None if timeout is None else time.monotonic() + timeout
    finder = ModelFinder(
        system,
        max_total_size=max_total_size,
        max_conflicts_per_size=max_conflicts_per_size,
        symmetry_breaking=symmetry_breaking,
        deadline=deadline,
        min_total_size=min_total_size,
        incremental=incremental,
        max_learned_clauses=max_learned_clauses,
    )
    return finder.search()
