"""MACE/Paradox-style finite model finding for constraint-free CHCs.

The reduction of Sec. 4.2: a constraint-free CHC system read as EUF is
satisfiable in a finite structure iff a propositional encoding over a fixed
domain-size vector is satisfiable.  We search size vectors in order of
total size (matching the model sizes reported in Figure 6), encode each
candidate with

* cell variables ``F[f, args, v]`` ("f(args) = v") with exactly-one-value
  constraints (totality + functionality),
* relation variables ``P[p, args]``,
* one ground CNF clause per instantiation of each (flattened) CHC,
* least-constant symmetry breaking on base constructors,

and solve with the in-repo CDCL solver.  A SAT answer decodes into a
:class:`~repro.mace.model.FiniteModel`; the caller then converts it to a
tree automaton (Theorem 1) to obtain a regular Herbrand model (Theorem 5).

Incremental engine (the selector-literal encoding)
--------------------------------------------------

Consecutive size vectors share almost all of their ground encoding, so by
default one persistent SAT engine — any
:class:`~repro.sat.backend.SatBackend`, the in-repo
:class:`~repro.sat.solver.CDCLSolver` unless ``sat_backend`` selects an
external one — spans the whole sweep instead of being rebuilt per
vector.  Size-dependence is
expressed through *existence selectors*: for every sort ``s`` and index
``v`` a literal ``ex[s, v]`` reads "element ``v`` of sort ``s`` exists".
The selectors form a prefix chain (``ex[s, v] -> ex[s, v-1]``; ``ex[s, 0]``
is a unit fact), so a candidate vector ``k`` is selected purely through
assumptions: ``ex[s, k_s - 1]`` and ``-ex[s, k_s]`` pin the active domain
of each sort to exactly ``{0 .. k_s - 1}``.  Size-dependent clauses are
guarded so that they are vacuous outside the vectors they describe:

* *cells*: functionality (pairwise at-most-one) and value-existence
  (``F[f, args, v] -> ex[s, v]``) clauses are valid for every size and
  carry no guard; the totality (at-least-one) row for a cell is guarded
  by ``-ex`` literals on the argument elements (inactive cells are
  don't-care) plus the positive frontier literal ``ex[s, K]`` for the
  codomain bound ``K`` it was emitted at, so growing a sort's domain just
  re-emits that one row wider while everything else is reused;
* *ground CHC instances*: guarded by ``-ex`` literals on the instance's
  element values, so an instance emitted once binds for every vector
  that contains those elements;
* *universal blocks*: per-instance Tseitin literals are forced true for
  inactive instantiations (``ex[s, u] \\/ t_inst``) and the block
  conjunction carries frontier guards, so the same block literal is
  correct at every active size;
* *symmetry breaking*: the least-constant cuts are unit clauses valid at
  every size and are emitted once per new element.

Growing a sort's domain therefore only adds the new cells', instances'
and block rows' clauses, while learned clauses, VSIDS activity and saved
phases carry across the entire sweep (solved with
``solver.solve(assumptions=...)``).

The engine *resets* (discarding the solver and re-encoding from scratch)
in exactly two situations: when the caller asks for the from-scratch
ablation (``incremental=False`` — a reset before every vector), and as a
safety valve when the shared clause database derives a level-0
contradiction, which would otherwise bleed an UNSAT verdict into every
later size vector.  Both show up in :class:`FinderStats.solver_resets`.

Campaign mode (sharing one engine across problems)
--------------------------------------------------

Benchmark campaigns solve hundreds of systems that overwhelmingly share
their ADT signature, so the engine hosts *multiple problems* at once.
Every clause is encoded as a selector-guarded **clause group**
(:class:`_ClauseGroup`): the ground instances carry a ``¬sel`` guard
(selector allocated from the shared :class:`~repro.sat.cnf.SelectorPool`
by canonical clause structure, :func:`clause_key`), and a problem — a
:class:`_ProblemContext` — is activated for one ``try_vector`` call by
assuming exactly the selectors of the groups it references.  Groups are
engine-wide: two problems containing the same clause (up to variable
renaming — e.g. the five STLC typing rules shared by all 23
inhabitation problems, or a benchmark family's common rules) share one
ground encoding *and* every learned clause derived from it, since those
mention the same selector.  The signature-level encoding —
existence-selector chains, cell totality/functionality rows, symmetry
cuts — carries no guard at all and is shared by every problem, as are
VSIDS activity and saved phases.

Lifecycle: a released problem decrements its groups' refcounts; a group
nothing references survives ``gc_window`` further registrations (so
back-to-back problems from one family keep their rules warm) and is
then retired — its selector pinned false via
:meth:`~repro.sat.cnf.SelectorPool.retire`, which permanently satisfies
its clauses, and a level-0 ``simplify`` physically drops them from the
watch lists (backends managing their own database treat the hint as a
no-op).  If unit propagation ever
fixes a group selector false at level 0, the database alone entails
that clause is unsatisfiable under every assumption set, i.e. at every
size vector: every problem containing it is ``hopeless`` and its sweep
stops early.  :class:`EnginePool` in :mod:`repro.mace.pool` keys
engines by a canonical signature fingerprint and hands out
:class:`ModelFinder` instances riding a shared engine.

Unsat-core–guided sweep and verdict completeness
------------------------------------------------

Every vector is solved purely under assumptions, so a refuted vector
yields an **unsat core** (the backend's ``core()``, optionally
shrunk further by its deletion-based ``minimize_core()``)
over exactly three kinds of literal: the problem's clause-group
selectors, positive existence frontiers ``ex[s, k-1]`` ("sort ``s`` has
at least ``k`` elements") and negative bounds ``-ex[s, k]`` ("at most
``k``").  The core is a semantic fact — database ∧ core ⊢ ⊥, and the
database only ever grows — so it transfers to any other size vector
whose assumptions *entail* it through the prefix chains: a candidate
``k'`` is already refuted if, for every sort, it still meets each lower
bound the core used (``k'_s ≥ k_s``) and each upper bound
(``k'_s ≤ k_s``).  :meth:`ModelFinder.search` keeps each problem's
refutation cores on its context and skips covered candidates without
touching the solver (``FinderStats.vectors_skipped``); a core that
mentions *no* existence selector at all proves the problem unsat at
every size — a sound, earlier ``ctx.hopeless`` than waiting for a group
selector to be pinned false at level 0.

The sweep also distinguishes *refuted* from *exhausted* vectors: a
solver ``None`` (conflict budget or deadline ran out) is not a
refutation, so ``FinderResult.complete`` is ``True`` — licensing the
claim "no model of total size ≤ N" — only when every candidate vector
was refuted (directly or via a covering core) and the sweep was not cut
short.  ``core_guided_sweep=False`` disables the pruning (ablation;
``benchmarks/bench_core.py`` gates that verdicts are identical either
way).
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.logic.formulas import TRUE
from repro.logic.sorts import FuncSymbol, PredSymbol, Sort
from repro.logic.terms import App, Term, Var
from repro.mace.model import FiniteModel, validate_model
from repro.obs import runtime as obs_runtime
from repro.sat.backend import SatBackend, make_backend, restore_backend
from repro.sat.cnf import SelectorPool


class FinderError(ValueError):
    """Raised on inputs the finder cannot encode."""


class EngineSnapshotError(FinderError):
    """An engine snapshot cannot be restored (wrong schema/version,
    mismatched signature fingerprint, or an unusable solver snapshot).
    Callers holding possibly-stale snapshots (the pool's disk warm
    cache, a supervised worker's task payload) treat this as "fall
    back to a cold engine", never as a campaign failure."""


#: schema version of :meth:`_IncrementalEngine.snapshot`; bumped
#: whenever the serialized layout changes incompatibly.  ``restore``
#: rejects any other version instead of guessing.
ENGINE_SNAPSHOT_VERSION = 1


def engine_fingerprint(sorts, functions, predicates) -> tuple:
    """Canonical, hashable fingerprint of an engine signature.

    Order-insensitive over the three symbol families, built purely from
    names and sort names, so it is stable across processes and pickle
    round-trips.  :func:`repro.mace.pool.signature_fingerprint`
    delegates here, which is what guarantees a snapshot taken from a
    pooled engine carries exactly the fingerprint the pool will later
    look it up under.
    """
    return (
        tuple(sorted(s.name for s in sorts)),
        tuple(
            sorted(
                (
                    f.name,
                    tuple(s.name for s in f.arg_sorts),
                    f.result_sort.name,
                )
                for f in functions
            )
        ),
        tuple(
            sorted(
                (p.name, tuple(s.name for s in p.arg_sorts))
                for p in predicates
            )
        ),
    )


@dataclass
class FlatAtom:
    """A flattened atom ``P(x1, ..., xn)`` over variables only."""

    pred: PredSymbol
    vars: tuple[Var, ...]
    universal_vars: tuple[Var, ...] = ()
    # definitions local to the universal block: (func, arg vars, result var)
    local_defs: tuple[tuple[FuncSymbol, tuple[Var, ...], Var], ...] = ()
    local_vars: tuple[Var, ...] = ()


@dataclass
class FlatClause:
    """A flattened clause: definitions + body atoms -> head atom / bottom."""

    source: Clause
    vars: tuple[Var, ...]
    defs: tuple[tuple[FuncSymbol, tuple[Var, ...], Var], ...]
    body: tuple[FlatAtom, ...]
    head: Optional[FlatAtom]


def flatten_clause(cl: Clause, counter: itertools.count) -> FlatClause:
    """Flatten nested terms into chains of function-cell definitions.

    Every non-variable subterm receives a fresh variable; shared subterms
    share the variable.  Universal-block atoms get their own block-local
    definitions so that the block's Tseitin encoding can quantify over the
    intermediate values independently.
    """
    if cl.constraint != TRUE:
        raise FinderError(
            "model finder expects constraint-free clauses; preprocess first"
        )
    defs: dict[Term, Var] = {}
    def_list: list[tuple[FuncSymbol, tuple[Var, ...], Var]] = []

    def flatten_term(term: Term, sink: list, cache: dict) -> Var:
        if isinstance(term, Var):
            return term
        cached = cache.get(term)
        if cached is not None:
            return cached
        arg_vars = tuple(flatten_term(a, sink, cache) for a in term.args)
        fresh = Var(f"fl!{next(counter)}", term.func.result_sort)
        cache[term] = fresh
        sink.append((term.func, arg_vars, fresh))
        return fresh

    def flatten_atom(atom: BodyAtom) -> FlatAtom:
        if not atom.universal_vars:
            arg_vars = tuple(
                flatten_term(t, def_list, defs) for t in atom.args
            )
            return FlatAtom(atom.pred, arg_vars)
        local_sink: list = []
        local_cache: dict = {}
        arg_vars = tuple(
            flatten_term(t, local_sink, local_cache) for t in atom.args
        )
        local_vars = tuple(v for _, _, v in local_sink)
        return FlatAtom(
            atom.pred,
            arg_vars,
            atom.universal_vars,
            tuple(local_sink),
            local_vars,
        )

    body = tuple(flatten_atom(a) for a in cl.body)
    head: Optional[FlatAtom] = None
    if cl.head is not None:
        head = flatten_atom(cl.head)
    all_vars: set[Var] = set(cl.free_vars())
    all_vars.update(v for _, _, v in def_list)
    return FlatClause(
        cl,
        tuple(sorted(all_vars, key=lambda v: v.name)),
        tuple(def_list),
        body,
        head,
    )


@dataclass
class FinderStats:
    """Search statistics across attempted size vectors.

    ``clauses_encoded`` counts clauses handed to the SAT solver during
    this search, while ``clauses_reused`` sums, over all attempts, the
    clauses that were already in the solver when the attempt started —
    the quantity the incremental engine exists to maximise.
    ``learned_total`` counts conflict clauses derived during the search
    and ``learned_kept`` the learned clauses still alive (carried across
    attempts) when it ended; ``learned_glue`` is the subset of
    ``learned_total`` with LBD ≤ 2 (kept unconditionally by the LBD
    retention policy).

    The sweep-verdict counters partition the candidate vectors:
    ``vectors_refuted`` were proven unsat by the solver,
    ``vectors_exhausted`` hit the per-size conflict/deadline budget
    (*not* a refutation — see ``FinderResult.complete``), and
    ``vectors_skipped`` were pruned because a previously extracted unsat
    core (``cores_extracted`` of them carried usable size bounds)
    already covers them.  ``hopeless`` records a size-independent
    refutation: no vector can ever succeed.
    """

    attempts: int = 0
    sat_vars: int = 0
    sat_clauses: int = 0
    elapsed: float = 0.0
    model_size: Optional[int] = None
    clauses_encoded: int = 0
    clauses_reused: int = 0
    learned_total: int = 0
    learned_kept: int = 0
    learned_glue: int = 0
    solver_resets: int = 0
    incremental: bool = True
    # unsat-core–guided sweep accounting (see the module docstring)
    vectors_refuted: int = 0
    vectors_exhausted: int = 0
    vectors_skipped: int = 0
    cores_extracted: int = 0
    # deletion-based minimization before cores become sweep bounds:
    # cores that went through a minimization pass, and the assumption
    # literals those passes removed (each removed size-bound literal
    # widens the band of vectors the core refutes for free)
    cores_minimized: int = 0
    core_lits_dropped: int = 0
    hopeless: bool = False
    # which SAT backend (repro.sat.backend) ran this search — reports
    # aggregate finder statistics per backend
    sat_backend: str = "python"
    # True when the sweep was cut short by the *wall-clock* deadline
    # (mid-encoding or mid-solve) as opposed to the per-size conflict
    # budget — the two exhaustion modes have different remedies (more
    # time vs. more conflicts), so verdict reasons keep them apart
    deadline_hit: bool = False
    # campaign mode: True when this search ran on a pool-shared engine,
    # and the clauses other problems had already contributed to that
    # engine when this finder attached (cross-problem reuse)
    engine_shared: bool = False
    cross_problem_clauses: int = 0
    # speculative parallel sweeps (repro.mace.parallel):
    # ``vectors_speculated`` counts vectors dispatched to a shard while
    # another vector was still outstanding, ``cores_broadcast`` the
    # refutation cores relayed to at least one sibling shard,
    # ``speculative_pruned`` the already-dispatched vectors a sibling's
    # broadcast core pruned shard-side without a solver call, and
    # ``shard_restarts`` the shards respawned after dying
    # mid-speculation.  ``sweep_shards`` is the portfolio width (1 for
    # the sequential sweep).
    vectors_speculated: int = 0
    cores_broadcast: int = 0
    speculative_pruned: int = 0
    shard_restarts: int = 0
    sweep_shards: int = 1

    def as_dict(self) -> dict:
        """Plain-dict view for result details / JSON artifacts."""
        return dataclasses.asdict(self)

    def merge(self, part: "FinderStats") -> None:
        """Fold another search's statistics into this one.

        The single merge rule shared by the per-solve accumulator in
        :mod:`repro.core.ringen` (sequential searches resumed after a
        failed Herbrand check) and the parallel sweep scheduler folding
        per-shard statistics: additive counters add, high-water marks
        (``sat_vars``, ``sat_clauses``, ``learned_kept``,
        ``cross_problem_clauses``, ``sweep_shards``) take the max,
        sticky flags or together, ``model_size`` keeps the most recent
        part that actually found a model, and latest-state fields
        (``sat_backend``) follow ``part``.  ``incremental`` is a
        configuration echo and is left untouched.
        """
        self.attempts += part.attempts
        self.sat_vars = max(self.sat_vars, part.sat_vars)
        self.sat_clauses = max(self.sat_clauses, part.sat_clauses)
        self.elapsed += part.elapsed
        if part.model_size is not None:
            self.model_size = part.model_size
        self.clauses_encoded += part.clauses_encoded
        self.clauses_reused += part.clauses_reused
        self.learned_total += part.learned_total
        self.learned_kept = max(self.learned_kept, part.learned_kept)
        self.learned_glue += part.learned_glue
        self.solver_resets += part.solver_resets
        self.vectors_refuted += part.vectors_refuted
        self.vectors_exhausted += part.vectors_exhausted
        self.vectors_skipped += part.vectors_skipped
        self.cores_extracted += part.cores_extracted
        self.cores_minimized += part.cores_minimized
        self.core_lits_dropped += part.core_lits_dropped
        self.hopeless = self.hopeless or part.hopeless
        self.sat_backend = part.sat_backend
        self.deadline_hit = self.deadline_hit or part.deadline_hit
        self.engine_shared = self.engine_shared or part.engine_shared
        self.cross_problem_clauses = max(
            self.cross_problem_clauses, part.cross_problem_clauses
        )
        self.vectors_speculated += part.vectors_speculated
        self.cores_broadcast += part.cores_broadcast
        self.speculative_pruned += part.speculative_pruned
        self.shard_restarts += part.shard_restarts
        self.sweep_shards = max(self.sweep_shards, part.sweep_shards)


@dataclass
class FinderResult:
    """Outcome of the finite model search.

    ``complete`` reports whether the sweep's verdict is *definitive*:
    ``True`` when a model was found, or when every candidate size
    vector up to the bound was refuted (directly, by a covering unsat
    core, or by a size-independent ``hopeless`` proof) — the only
    situations licensing "no model of total size ≤ N".  It is ``False``
    whenever any vector merely exhausted its conflict/deadline budget or
    the sweep was cut short by the search deadline, in which case the
    right reading is "unknown (budget)".
    """

    model: Optional[FiniteModel]
    stats: FinderStats
    complete: bool = False

    @property
    def found(self) -> bool:
        return self.model is not None


@dataclass
class _VectorOutcome:
    """What one :meth:`_IncrementalEngine.try_vector` call established."""

    model: Optional[FiniteModel] = None
    # True: the vector is proven to have no model (solver unsat);
    # False with model None: budget/deadline exhausted — indeterminate
    refuted: bool = False


def size_vectors(
    sorts: Sequence[Sort], max_total: int, min_total: int = 0
) -> Iterator[dict[Sort, int]]:
    """All per-sort size assignments in order of increasing total size."""
    n = len(sorts)
    for total in range(max(n, min_total), max_total + 1):
        for composition in _compositions(total, n):
            yield dict(zip(sorts, composition))


def _compositions(total: int, parts: int) -> Iterator[tuple[int, ...]]:
    """Compositions of ``total`` into ``parts`` positive integers."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first, *rest)


def _combos(
    old: Optional[tuple[int, ...]], new: tuple[int, ...]
) -> Iterator[tuple[int, ...]]:
    """Tuples over ``prod(range(n) for n in new)`` not yet covered.

    ``old is None`` means nothing was covered (yield the full space);
    otherwise yield exactly the difference of the two boxes, enumerated
    by the position of the first component that escapes the old box.
    """
    if old is None:
        yield from itertools.product(*[range(n) for n in new])
        return
    for pivot in range(len(new)):
        if new[pivot] <= old[pivot]:
            continue
        pools: list[range] = []
        for j in range(len(new)):
            if j < pivot:
                pools.append(range(old[j]))
            elif j == pivot:
                pools.append(range(old[j], new[j]))
            else:
                pools.append(range(new[j]))
        yield from itertools.product(*pools)


@dataclass
class _BlockState:
    """Persistent encoding state of one universal-block Tseitin literal."""

    atom: FlatAtom
    outer: dict[Var, int]
    t: int
    t_insts: dict[tuple[int, ...], int] = field(default_factory=dict)
    done_u: Optional[tuple[int, ...]] = None
    done_l: Optional[tuple[int, ...]] = None


def clause_key(flat: FlatClause) -> tuple:
    """A canonical, hashable key of a flat clause's logical content.

    Variables are renumbered by first occurrence in a fixed traversal
    (clause variables, definitions, body, head), so two flattenings of
    the same clause — even from different problems, with different fresh
    variable names — get equal keys.  Equal keys mean the ground
    encodings coincide up to variable naming, which is what lets a
    campaign engine share one selector-guarded clause group between
    every problem that contains the clause.
    """
    order: dict[Var, int] = {}

    def slot(v: Var) -> tuple:
        i = order.get(v)
        if i is None:
            i = len(order)
            order[v] = i
        return (i, v.sort.name)

    def atom_key(atom: FlatAtom) -> tuple:
        uindex = {v: i for i, v in enumerate(atom.universal_vars)}
        lindex = {v: i for i, v in enumerate(atom.local_vars)}

        def aslot(v: Var) -> tuple:
            if v in lindex:
                return ("l", lindex[v], v.sort.name)
            if v in uindex:
                return ("u", uindex[v], v.sort.name)
            return ("o",) + slot(v)

        return (
            atom.pred.name,
            tuple(aslot(v) for v in atom.vars),
            tuple(v.sort.name for v in atom.universal_vars),
            tuple(
                (f.name, tuple(aslot(a) for a in args), aslot(r))
                for f, args, r in atom.local_defs
            ),
            tuple(v.sort.name for v in atom.local_vars),
        )

    vars_key = tuple(slot(v) for v in flat.vars)
    defs_key = tuple(
        (f.name, tuple(slot(a) for a in args), slot(r))
        for f, args, r in flat.defs
    )
    body_key = tuple(atom_key(a) for a in flat.body)
    head_key = atom_key(flat.head) if flat.head is not None else None
    return (vars_key, defs_key, body_key, head_key)


class _ClauseGroup:
    """One selector-guarded ground encoding of one (canonical) clause.

    Groups are engine-wide: every problem containing a structurally
    identical clause references the same group, so its ground instances
    — and any learned clauses derived from them, which mention the same
    selector — encode once and serve the whole campaign.  ``refs``
    counts the live contexts referencing the group; an unreferenced
    group survives ``gc_window`` further problem registrations before
    its selector is retired (see :meth:`_IncrementalEngine._gc_groups`),
    so back-to-back problems from one family keep their shared rules
    hot while one-off query clauses age out.
    """

    __slots__ = (
        "flat",
        "serial",
        "sel",
        "cur",
        "done",
        "blocks",
        "atom_layouts",
        "refs",
        "last_touch",
    )

    def __init__(self, flat: FlatClause, serial: int):
        self.flat = flat
        self.serial = serial
        self.sel: Optional[int] = None
        self.cur: dict[Sort, int] = {}
        self.done: Optional[tuple[int, ...]] = None
        self.blocks: list[_BlockState] = []
        self.atom_layouts: dict[int, tuple] = {}
        self.refs = 0
        self.last_touch = 0


class _ProblemContext:
    """Per-problem state registered on a (possibly shared) engine.

    The context is thin: a problem is its set of clause groups (see
    :class:`_ClauseGroup`) plus a growth envelope.  Activating the
    problem for one ``solve`` call means assuming exactly its groups'
    selectors; everything else — cells, existence chains, symmetry cuts,
    the solver, and any group some other problem also contains — is
    shared engine state.
    """

    __slots__ = (
        "flat_clauses",
        "key",
        "cur",
        "groups",
        "hopeless",
        "released",
        "joined_at_clauses",
        "refuted_cores",
    )

    def __init__(
        self, flat_clauses: Sequence[FlatClause], key: int, joined_at: int
    ):
        self.flat_clauses = tuple(flat_clauses)
        self.key = key
        self.joined_at_clauses = joined_at
        self.hopeless = False
        self.released = False
        self.cur: dict[Sort, int] = {}
        # resolved lazily (and re-resolved after an engine reset)
        self.groups: Optional[list[_ClauseGroup]] = None
        # unsat cores of refuted size vectors as (lower, upper) bound
        # maps over sorts; like ``hopeless`` these are semantic facts
        # about the problem (the clause database only grows and the
        # existence chains are permanent), so they survive engine resets
        # and later searches on the same context
        self.refuted_cores: list[tuple[dict[Sort, int], dict[Sort, int]]] = []


class _IncrementalEngine:
    """One persistent CDCL encoding spanning size sweeps and problems.

    See the module docstring for the selector-literal scheme and the
    campaign extension.  The engine owns the solver, the cell/relation
    variable maps and the signature-level growth bookkeeping; each
    registered :class:`_ProblemContext` carries the per-problem state.
    :class:`ModelFinder` drives one context at a time through
    :meth:`try_vector`.
    """

    def __init__(
        self,
        sorts: Sequence[Sort],
        functions: Sequence[FuncSymbol],
        predicates: Sequence[PredSymbol],
        *,
        symmetry_breaking: bool = True,
        gc_window: int = 8,
        lbd_retention: bool = True,
        sat_backend: str = "python",
    ):
        self.sorts = list(sorts)
        self.functions = list(functions)
        self.predicates = list(predicates)
        self.symmetry_breaking = symmetry_breaking
        self.lbd_retention = lbd_retention
        # name resolved through repro.sat.backend.make_backend; part of
        # the engine's compatibility fingerprint (pooled engines never
        # mix backends — solver state is not transferable between them)
        self.sat_backend = sat_backend
        # how many problem registrations an unreferenced clause group
        # survives before its selector is retired and its clauses
        # dropped (campaign hygiene; see _gc_groups)
        self.gc_window = gc_window
        self._folded_added = 0
        self._folded_learned = 0
        self._folded_glue = 0
        self._tick_count = 0
        self._deadline: Optional[float] = None
        self._contexts: list[_ProblemContext] = []
        self._ctx_counter = itertools.count()
        self.problems_registered = 0
        self.groups_shared = 0  # group lookups served by an existing group
        # semantic memory across registrations of the *same problem*
        # (identified by its frozenset of canonical clause keys):
        # refutation cores and hopeless verdicts are facts about the
        # problem, not the encoding, so a re-registered problem — a
        # recycled engine, a warm-restored worker — inherits its sweep
        # bounds instead of re-deriving them.  FIFO-bounded; survives
        # ``reset`` for the same reason ``refuted_cores`` does.
        self._problem_facts: dict[
            frozenset,
            tuple[
                list[tuple[dict[Sort, int], dict[Sort, int]]], bool
            ],
        ] = {}
        self._constants: dict[Sort, list[FuncSymbol]] = {
            s: [
                f
                for f in self.functions
                if f.result_sort == s and f.arity == 0
            ]
            for s in self.sorts
        }
        self._fresh()

    # -- lifecycle ---------------------------------------------------------
    def _fresh(self) -> None:
        self.solver: SatBackend = make_backend(
            self.sat_backend, lbd_retention=self.lbd_retention
        )
        self.selectors = SelectorPool(self.solver)
        self.cur: dict[Sort, int] = {s: 0 for s in self.sorts}
        # nested variable tables: one symbol hash to reach a table keyed
        # by cheap int tuples (the encode loops are hash-bound otherwise)
        self.func_vars: dict[
            FuncSymbol, dict[tuple[tuple[int, ...], int], int]
        ] = {f: {} for f in self.functions}
        self.pred_vars: dict[
            PredSymbol, dict[tuple[int, ...], int]
        ] = {p: {} for p in self.predicates}
        # existence selectors per sort, indexed by element: _ex_rows[s][v]
        self._ex_rows: dict[Sort, list[int]] = {
            s: [] for s in self.sorts
        }
        # per function: (arg-space sizes, codomain size) already encoded
        self._func_done: dict[
            FuncSymbol, tuple[tuple[int, ...], int]
        ] = {}
        self._sb_done: dict[Sort, int] = {s: 0 for s in self.sorts}
        self._groups: dict[tuple, _ClauseGroup] = {}
        self._group_serial = itertools.count()
        self._ok = True
        for ctx in self._contexts:
            self._reset_context(ctx)

    def _reset_context(self, ctx: _ProblemContext) -> None:
        """Drop a context's solver-scoped state (after an engine reset).

        ``hopeless`` survives: it records a semantic fact about the
        problem (the database entailed its unsatisfiability at every
        size), not an artifact of the discarded encoding.
        """
        ctx.cur = {s: 0 for s in self.sorts}
        ctx.groups = None

    #: how many distinct problems' cores/hopeless verdicts the engine
    #: remembers across release/re-register cycles (FIFO eviction)
    PROBLEM_FACTS_MAX = 256

    @staticmethod
    def _facts_key(flat_clauses: Sequence[FlatClause]) -> frozenset:
        """Renaming-invariant identity of a problem: its clause keys.

        A frozenset rather than a sorted tuple because clause keys are
        hashable but not mutually orderable (a ``None`` head does not
        compare with a tuple one).
        """
        return frozenset(clause_key(flat) for flat in flat_clauses)

    def register(
        self, flat_clauses: Sequence[FlatClause]
    ) -> _ProblemContext:
        """Attach one problem's flattened clauses to this engine."""
        ctx = _ProblemContext(
            flat_clauses, next(self._ctx_counter), self.total_added
        )
        self._reset_context(ctx)
        facts = self._problem_facts.get(self._facts_key(flat_clauses))
        if facts is not None:
            # this exact problem (up to variable renaming) was hosted
            # before: its refutation bounds are semantic facts and
            # transfer wholesale — the sweep resumes where it left off
            cores, hopeless = facts
            ctx.refuted_cores = [
                (dict(lower), dict(upper)) for lower, upper in cores
            ]
            ctx.hopeless = hopeless
        self._contexts.append(ctx)
        self.problems_registered += 1
        return ctx

    def _resolve_groups(self, ctx: _ProblemContext) -> list[_ClauseGroup]:
        """Map the context's clauses to engine-wide clause groups."""
        if ctx.groups is not None:
            return ctx.groups
        groups: list[_ClauseGroup] = []
        seen: set[int] = set()
        for flat in ctx.flat_clauses:
            key = clause_key(flat)
            group = self._groups.get(key)
            if group is None:
                group = _ClauseGroup(flat, next(self._group_serial))
                group.cur = {s: 0 for s in self.sorts}
                self._groups[key] = group
            elif group.serial not in seen:
                self.groups_shared += 1
            if group.serial in seen:
                continue  # duplicate clause within one problem
            seen.add(group.serial)
            group.refs += 1
            group.last_touch = self.problems_registered
            groups.append(group)
        ctx.groups = groups
        return groups

    def release(self, ctx: _ProblemContext) -> None:
        """Detach a finished problem and garbage-collect stale groups.

        The problem's groups lose one reference; groups nothing alive
        references any more stay warm for ``gc_window`` further problem
        registrations (back-to-back problems from one family re-hit
        their shared rules for free) and are then retired — their
        selector is pinned false, which permanently satisfies their
        clauses, and a level-0 simplify drops those from the solver.
        """
        if ctx.released:
            return
        ctx.released = True
        if ctx.refuted_cores or ctx.hopeless:
            key = self._facts_key(ctx.flat_clauses)
            self._problem_facts.pop(key, None)
            self._problem_facts[key] = (
                [
                    (dict(lower), dict(upper))
                    for lower, upper in ctx.refuted_cores
                ],
                ctx.hopeless,
            )
            while len(self._problem_facts) > self.PROBLEM_FACTS_MAX:
                self._problem_facts.pop(
                    next(iter(self._problem_facts))
                )
        if ctx in self._contexts:
            self._contexts.remove(ctx)
        if ctx.groups is not None:
            for group in ctx.groups:
                group.refs -= 1
            ctx.groups = None
        self._gc_groups()

    def _gc_groups(self) -> None:
        retired = False
        for key, group in list(self._groups.items()):
            if group.refs > 0:
                continue
            if (
                self.problems_registered - group.last_touch
                < self.gc_window
            ):
                continue
            del self._groups[key]
            if group.sel is not None:
                self.selectors.retire(("clause", group.serial))
                retired = True
        if retired:
            # retired selectors satisfy their groups' clauses at level 0;
            # physically dropping them keeps the watch lists (and hence
            # every later problem's propagation) lean
            self.solver.simplify()

    def reset(self, stats: FinderStats) -> None:
        """Discard the shared solver state and start over."""
        stats.solver_resets += 1
        self._folded_added += self.solver.stats.clauses_added
        self._folded_learned += self.solver.stats.learned
        self._folded_glue += self.solver.stats.glue_learned
        self._fresh()

    @property
    def total_added(self) -> int:
        return self._folded_added + self.solver.stats.clauses_added

    @property
    def total_learned(self) -> int:
        return self._folded_learned + self.solver.stats.learned

    @property
    def total_glue(self) -> int:
        return self._folded_glue + self.solver.stats.glue_learned

    # -- snapshot / restore ------------------------------------------------
    def snapshot(self) -> dict:
        """Serializable state of the whole engine (picklable dict).

        Captures the solver (via the backend's own ``snapshot``), the
        selector table, the signature-level growth envelopes, every live
        clause group with its blocks, and the problem-facts memo.
        Problem *contexts* are deliberately absent: a restored engine
        starts with no registered problems, and re-registering one
        recovers its bounds through the memo.  ``atom_layouts`` is also
        dropped — it is keyed by object identity (``id(atom)``), which
        does not survive pickling, and :meth:`_block_layout` rebuilds it
        lazily on first use.

        The snapshot references the engine's own ``FlatClause``/``Var``
        structures; those are value objects the engine never mutates, so
        the dict stays valid even if the donor engine keeps solving
        (every mutable container is copied here).
        """
        if not self.solver.supports_snapshot():
            raise EngineSnapshotError(
                "SAT backend does not support snapshots"
            )
        groups = []
        for group in self._groups.values():
            groups.append(
                {
                    "flat": group.flat,
                    "serial": group.serial,
                    "sel": group.sel,
                    "cur": dict(group.cur),
                    "done": group.done,
                    "last_touch": group.last_touch,
                    "blocks": [
                        {
                            "atom": b.atom,
                            "outer": dict(b.outer),
                            "t": b.t,
                            "t_insts": dict(b.t_insts),
                            "done_u": b.done_u,
                            "done_l": b.done_l,
                        }
                        for b in group.blocks
                    ],
                }
            )
        return {
            "schema": "engine",
            "version": ENGINE_SNAPSHOT_VERSION,
            "fingerprint": engine_fingerprint(
                self.sorts, self.functions, self.predicates
            ),
            "sat_backend": self.sat_backend,
            "symmetry_breaking": self.symmetry_breaking,
            "lbd_retention": self.lbd_retention,
            "gc_window": self.gc_window,
            "sorts": list(self.sorts),
            "functions": list(self.functions),
            "predicates": list(self.predicates),
            "solver": self.solver.snapshot(),
            "selectors": self.selectors.export_state(),
            "cur": dict(self.cur),
            "func_vars": {
                f: dict(table) for f, table in self.func_vars.items()
            },
            "pred_vars": {
                p: dict(table) for p, table in self.pred_vars.items()
            },
            "ex_rows": {
                s: list(row) for s, row in self._ex_rows.items()
            },
            "func_done": dict(self._func_done),
            "sb_done": dict(self._sb_done),
            "groups": groups,
            # ``itertools.count`` does not pickle; serial reuse of
            # *retired* groups is safe (retire pops the selector key),
            # so resuming past the live maximum is all that is needed
            "next_serial": max(
                (g.serial for g in self._groups.values()), default=-1
            )
            + 1,
            "problems_registered": self.problems_registered,
            "groups_shared": self.groups_shared,
            "folded": [
                self._folded_added,
                self._folded_learned,
                self._folded_glue,
            ],
            "ok": self._ok,
            "problem_facts": [
                [
                    key,
                    [
                        (dict(lower), dict(upper))
                        for lower, upper in cores
                    ],
                    hopeless,
                ]
                for key, (cores, hopeless) in self._problem_facts.items()
            ],
        }

    @classmethod
    def restore(cls, snap: dict) -> "_IncrementalEngine":
        """Rebuild an engine from a :meth:`snapshot` dict.

        The engine is constructed from the snapshot's own signature
        lists (sorted at snapshot time), so the
        :class:`ModelFinder`/:class:`~repro.mace.pool.EnginePool`
        compatibility checks hold by construction for any system whose
        fingerprint matches.  Raises :class:`EngineSnapshotError` on a
        wrong schema/version or an internally inconsistent snapshot.
        """
        if not isinstance(snap, dict) or snap.get("schema") != "engine":
            raise EngineSnapshotError("not an engine snapshot")
        if snap.get("version") != ENGINE_SNAPSHOT_VERSION:
            raise EngineSnapshotError(
                f"engine snapshot version {snap.get('version')!r} "
                f"(this build reads {ENGINE_SNAPSHOT_VERSION})"
            )
        engine = cls(
            snap["sorts"],
            snap["functions"],
            snap["predicates"],
            symmetry_breaking=bool(snap["symmetry_breaking"]),
            gc_window=int(snap["gc_window"]),
            lbd_retention=bool(snap["lbd_retention"]),
            sat_backend=str(snap["sat_backend"]),
        )
        engine._restore_from(snap)
        return engine

    def _restore_from(self, snap: dict) -> None:
        own = engine_fingerprint(
            self.sorts, self.functions, self.predicates
        )
        if snap.get("fingerprint") != own:
            raise EngineSnapshotError(
                "snapshot fingerprint disagrees with its signature lists"
            )
        if snap["solver"].get("backend") != self.sat_backend:
            raise EngineSnapshotError(
                "snapshot's solver backend disagrees with the engine's"
            )
        solver = restore_backend(snap["solver"])
        self.solver = solver
        self.selectors = SelectorPool(solver)
        self.selectors.import_state(snap["selectors"])
        # symbol-keyed tables: the snapshot's keys are value-equal to
        # this engine's own (frozen dataclasses hash by value), so the
        # adopted dicts serve lookups from self.functions/predicates
        self.cur = {s: int(snap["cur"].get(s, 0)) for s in self.sorts}
        self.func_vars = {
            f: dict(snap["func_vars"].get(f, {})) for f in self.functions
        }
        self.pred_vars = {
            p: dict(snap["pred_vars"].get(p, {}))
            for p in self.predicates
        }
        self._ex_rows = {
            s: list(snap["ex_rows"].get(s, ())) for s in self.sorts
        }
        self._func_done = dict(snap["func_done"])
        self._sb_done = {
            s: int(snap["sb_done"].get(s, 0)) for s in self.sorts
        }
        self._groups = {}
        for g in snap["groups"]:
            group = _ClauseGroup(g["flat"], int(g["serial"]))
            group.sel = g["sel"]
            group.cur = dict(g["cur"])
            group.done = g["done"]
            group.last_touch = int(g["last_touch"])
            for b in g["blocks"]:
                block = _BlockState(
                    b["atom"],
                    dict(b["outer"]),
                    b["t"],
                    dict(b["t_insts"]),
                    b["done_u"],
                    b["done_l"],
                )
                group.blocks.append(block)
            self._groups[clause_key(group.flat)] = group
        self._group_serial = itertools.count(int(snap["next_serial"]))
        self.problems_registered = int(snap["problems_registered"])
        self.groups_shared = int(snap["groups_shared"])
        (
            self._folded_added,
            self._folded_learned,
            self._folded_glue,
        ) = (int(x) for x in snap["folded"])
        self._ok = bool(snap["ok"])
        self._problem_facts = {
            key: (
                [
                    (dict(lower), dict(upper))
                    for lower, upper in cores
                ],
                bool(hopeless),
            )
            for key, cores, hopeless in snap["problem_facts"]
        }

    # -- small helpers -----------------------------------------------------
    def _add(self, literals: list[int]) -> None:
        self._ok &= self.solver.add_clause(literals)

    def _tick(self) -> bool:
        """Deadline poll for the encoding loops; False = give up."""
        self._tick_count += 1
        deadline = self._deadline
        if (
            deadline is not None
            and self._tick_count % 2048 == 0
            and time.monotonic() > deadline
        ):
            return False
        return True

    def _sel(self, group: _ClauseGroup) -> int:
        """The group's activation selector, allocated on first use."""
        if group.sel is None:
            group.sel = self.selectors.selector(("clause", group.serial))
        return group.sel

    def _ex(self, sort: Sort, v: int) -> int:
        """Existence selector ``ex[sort, v]`` with its chain clause."""
        row = self._ex_rows[sort]
        while len(row) <= v:
            lit = self.selectors.selector(("ex", sort, len(row)))
            if not row:
                self._add([lit])  # every sort is inhabited
            else:
                self._add([-lit, row[-1]])  # prefix chain
            row.append(lit)
        return row[v]

    def _fvar(self, f: FuncSymbol, args: tuple[int, ...], val: int) -> int:
        table = self.func_vars[f]
        key = (args, val)
        var = table.get(key)
        if var is None:
            var = self.solver.new_var()
            table[key] = var
        return var

    def _pvar(self, p: PredSymbol, args: tuple[int, ...]) -> int:
        table = self.pred_vars[p]
        var = table.get(args)
        if var is None:
            var = self.solver.new_var()
            table[args] = var
        return var

    # -- growth ------------------------------------------------------------
    def ensure(
        self, ctx: _ProblemContext, sizes: dict[Sort, int]
    ) -> Optional[bool]:
        """Grow the encoding so ``ctx`` covers ``sizes`` on every sort.

        Signature-level state (existence chains, cells, symmetry cuts)
        grows to the global envelope shared by every context; each of
        the context's clause groups grows to its own envelope — which a
        group shared with other problems may already exceed, in which
        case its ground instances are simply reused.  Returns ``None``
        when the deadline expired mid-encoding (the encoding stays
        consistent — already-emitted clauses are valid — but the
        envelopes are not advanced).
        """
        tracer, metrics = obs_runtime.TRACER, obs_runtime.METRICS
        if tracer is None and metrics is None:
            return self._ensure(ctx, sizes)
        t0 = time.monotonic()
        try:
            return self._ensure(ctx, sizes)
        finally:
            dt = time.monotonic() - t0
            if tracer is not None:
                tracer.aggregate("encode", dt, 1)
            if metrics is not None:
                metrics.inc("phase.encode_s", dt)
                metrics.inc("phase.encode_n", 1)

    def _ensure(
        self, ctx: _ProblemContext, sizes: dict[Sort, int]
    ) -> Optional[bool]:
        new = {s: max(self.cur[s], sizes[s]) for s in self.sorts}
        if new != self.cur:
            for s in self.sorts:
                self._ex(s, new[s])  # frontier + chain up front
            if self._encode_cells(new) is None:
                return None
            self._encode_symmetry(new)
            self.cur = new
        ctx_new = {s: max(ctx.cur[s], sizes[s]) for s in self.sorts}
        for group in self._resolve_groups(ctx):
            group_new = {
                s: max(group.cur[s], ctx_new[s]) for s in self.sorts
            }
            if group_new == group.cur:
                continue
            for block in list(group.blocks):
                if self._grow_block(group, block, group_new) is None:
                    return None
            if self._encode_group(group, group_new) is None:
                return None
            group.cur = group_new
        ctx.cur = ctx_new
        return self._ok

    def _encode_cells(self, new: dict[Sort, int]) -> Optional[bool]:
        for func in self.functions:
            res = func.result_sort
            new_cod = new[res]
            arg_sizes = tuple(new[s] for s in func.arg_sorts)
            done = self._func_done.get(func)
            old_args, old_cod = done if done else (None, 0)
            table = self.func_vars[func]
            res_row = self._ex_rows[res]
            arg_rows = [self._ex_rows[s] for s in func.arg_sorts]
            new_var = self.solver.new_var

            def cell_vars(args: tuple[int, ...]) -> list[int]:
                cell = []
                for v in range(new_cod):
                    key = (args, v)
                    var = table.get(key)
                    if var is None:
                        var = new_var()
                        table[key] = var
                    cell.append(var)
                return cell

            def emit_rows(args: tuple[int, ...], lo: int) -> None:
                """Functionality, value-existence and totality rows."""
                cell = cell_vars(args)
                for j in range(lo, new_cod):
                    for i in range(j):
                        self._add([-cell[i], -cell[j]])
                    if j >= 1:
                        self._add([-cell[j], res_row[j]])
                literals = [
                    -arg_rows[i][a]
                    for i, a in enumerate(args)
                    if a >= 1
                ]
                literals.append(res_row[new_cod])  # frontier guard
                literals.extend(cell)
                self._add(literals)

            for args in _combos(old_args, arg_sizes):
                if not self._tick():
                    return None
                emit_rows(args, 0)
            if done is not None and new_cod > old_cod:
                for args in itertools.product(
                    *[range(n) for n in old_args]
                ):
                    if not self._tick():
                        return None
                    emit_rows(args, old_cod)
            self._func_done[func] = (arg_sizes, new_cod)
        return self._ok

    def _encode_symmetry(self, new: dict[Sort, int]) -> None:
        """Least-number constraints on base constructors per sort.

        The i-th constant (in name order) of a sort may only take values
        ``0..i`` — a sound canonicity cut for constants (Claessen &
        Sörensson's least-number heuristic restricted to constants).
        The units are valid at every domain size, so they are emitted
        once per new element and shared by the whole sweep.
        """
        if not self.symmetry_breaking:
            return
        for sort in self.sorts:
            done, size = self._sb_done[sort], new[sort]
            if size <= done:
                continue
            for i, c in enumerate(self._constants[sort]):
                for v in range(max(i + 1, done), size):
                    self._add([-self._fvar(c, (), v)])
            self._sb_done[sort] = size

    def _encode_group(
        self, group: _ClauseGroup, new: dict[Sort, int]
    ) -> Optional[bool]:
        flat = group.flat
        var_sizes = tuple(new[v.sort] for v in flat.vars)
        old = group.done
        if old == var_sizes:
            return self._ok
        sel = self._sel(group)
        # precomputed layout: positions instead of Var-keyed dicts,
        # so the grounding loop only touches int tuples
        index = {v: i for i, v in enumerate(flat.vars)}
        ex_rows = [self._ex_rows[v.sort] for v in flat.vars]
        defs = [
            (
                self.func_vars[func],
                tuple(index[a] for a in arg_vars),
                index[result],
            )
            for func, arg_vars, result in flat.defs
        ]
        plain = []
        block_atoms = []
        for atom in flat.body:
            if atom.universal_vars:
                block_atoms.append(atom)
            else:
                plain.append(
                    (
                        self.pred_vars[atom.pred],
                        tuple(index[v] for v in atom.vars),
                    )
                )
        head = None
        if flat.head is not None:
            head = (
                self.pred_vars[flat.head.pred],
                tuple(index[v] for v in flat.head.vars),
            )
        new_var = self.solver.new_var
        # blocks created past this point belong to instances whose
        # group has not committed yet (``done``); on a deadline abort
        # they are dropped so a resumed sweep does not keep growing
        # orphans for combos it will re-emit
        blocks_committed = len(group.blocks)
        for combo in _combos(old, var_sizes):
            if not self._tick():
                del group.blocks[blocks_committed:]
                return None
            # the activation guard: the group's ground instances are
            # vacuous unless its selector is assumed — a problem is
            # activated as the set of its groups' selectors, which is
            # what lets campaign mode share one instance between every
            # problem containing the clause
            literals: list[int] = [-sel]
            for i, c in enumerate(combo):
                if c:
                    literals.append(-ex_rows[i][c])
            for table, apos, rpos in defs:
                key = (
                    tuple(combo[j] for j in apos),
                    combo[rpos],
                )
                var = table.get(key)
                if var is None:
                    var = new_var()
                    table[key] = var
                literals.append(-var)
            for atom in block_atoms:
                block = _BlockState(
                    atom,
                    {v: combo[i] for v, i in index.items()},
                    new_var(),
                )
                group.blocks.append(block)
                if self._grow_block(group, block, new) is None:
                    del group.blocks[blocks_committed:]
                    return None
                literals.append(-block.t)
            for table, apos in plain:
                args = tuple(combo[j] for j in apos)
                var = table.get(args)
                if var is None:
                    var = new_var()
                    table[args] = var
                literals.append(-var)
            if head is not None:
                table, apos = head
                args = tuple(combo[j] for j in apos)
                var = table.get(args)
                if var is None:
                    var = new_var()
                    table[args] = var
                literals.append(var)
            self._add(literals)
        group.done = var_sizes
        return self._ok

    # -- universal blocks --------------------------------------------------
    def _grow_block(
        self,
        group: _ClauseGroup,
        block: _BlockState,
        new: dict[Sort, int],
    ) -> Optional[bool]:
        """(Re-)encode one universal block up to the ``new`` sizes.

        ``t`` is implied by the truth of the whole universal block over
        the *active* elements, so a negated ``t`` in a ground clause
        soundly asserts the block fails.  Per instantiation ``u`` of the
        block's universal variables a literal ``t_inst`` is forced true
        when ``u`` is inactive and implied by ``defs /\\ P(args)`` for
        every choice of block-local intermediate values; the guarded
        conjunction ``(/\\ t_inst) -> t`` is re-emitted wider whenever a
        universal sort grows (the old row is vacuous beyond its frontier
        guard).
        """
        atom = block.atom
        u_sizes = tuple(new[v.sort] for v in atom.universal_vars)
        l_sizes = tuple(new[v.sort] for v in atom.local_vars)
        grew_u = block.done_u != u_sizes
        for ucombo in _combos(block.done_u, u_sizes):
            if not self._tick():
                return None
            t_inst = self.solver.new_var()
            block.t_insts[ucombo] = t_inst
            for v, u in zip(atom.universal_vars, ucombo):
                if u >= 1:
                    # inactive instantiations hold vacuously
                    self._add([self._ex(v.sort, u), t_inst])
            if (
                self._emit_premises(group, block, ucombo, None, l_sizes)
                is None
            ):
                return None
        if block.done_u is not None and block.done_l != l_sizes:
            for ucombo in itertools.product(
                *[range(n) for n in block.done_u]
            ):
                if (
                    self._emit_premises(
                        group, block, ucombo, block.done_l, l_sizes
                    )
                    is None
                ):
                    return None
        if grew_u:
            literals = [
                self._ex(s, new[s])
                for s in dict.fromkeys(
                    v.sort for v in atom.universal_vars
                )
            ]
            literals.extend(-ti for ti in block.t_insts.values())
            literals.append(block.t)
            self._add(literals)
        block.done_u, block.done_l = u_sizes, l_sizes
        return True

    def _block_layout(self, group: _ClauseGroup, atom: FlatAtom):
        """Positional layout of a block atom, computed once per atom.

        Variables are resolved to ("l", i) / ("u", i) / ("o", var)
        slots so the innermost grounding loop only touches int tuples
        (same optimization as the plain-clause grounding loop).
        """
        layout = group.atom_layouts.get(id(atom))
        if layout is None:
            uindex = {v: i for i, v in enumerate(atom.universal_vars)}
            lindex = {v: i for i, v in enumerate(atom.local_vars)}

            def pos(v: Var):
                if v in lindex:
                    return ("l", lindex[v])
                if v in uindex:
                    return ("u", uindex[v])
                return ("o", v)

            defs = [
                (
                    self.func_vars[func],
                    tuple(pos(a) for a in arg_vars),
                    pos(result),
                )
                for func, arg_vars, result in atom.local_defs
            ]
            layout = (
                defs,
                self.pred_vars[atom.pred],
                tuple(pos(v) for v in atom.vars),
            )
            group.atom_layouts[id(atom)] = layout
        return layout

    def _emit_premises(
        self,
        group: _ClauseGroup,
        block: _BlockState,
        ucombo: tuple[int, ...],
        old_l: Optional[tuple[int, ...]],
        l_sizes: tuple[int, ...],
    ) -> Optional[bool]:
        t_inst = block.t_insts[ucombo]
        defs, ptable, arg_slots = self._block_layout(group, block.atom)
        outer = block.outer
        new_var = self.solver.new_var
        lcombo: tuple[int, ...] = ()

        def value(slot) -> int:
            kind, x = slot
            if kind == "l":
                return lcombo[x]
            if kind == "u":
                return ucombo[x]
            return outer[x]

        for lcombo in _combos(old_l, l_sizes):
            if not self._tick():
                return None
            premise: list[int] = []
            for table, arg_pos, res_pos in defs:
                key = (
                    tuple(value(p) for p in arg_pos),
                    value(res_pos),
                )
                var = table.get(key)
                if var is None:
                    var = new_var()
                    table[key] = var
                premise.append(var)
            args = tuple(value(p) for p in arg_slots)
            var = ptable.get(args)
            if var is None:
                var = new_var()
                ptable[args] = var
            premise.append(var)
            self._add([-p for p in premise] + [t_inst])
        return True

    # -- solving -----------------------------------------------------------
    def vector_covered(
        self, ctx: _ProblemContext, sizes: dict[Sort, int]
    ) -> bool:
        """True if a stored refutation core already refutes ``sizes``.

        A core with lower bounds L and upper bounds U transfers to every
        vector meeting all of them: the existence prefix chains make
        that vector's assumptions entail the core's, so it is unsat
        without re-solving (see the module docstring).
        """
        for lower, upper in ctx.refuted_cores:
            if all(sizes[s] >= k for s, k in lower.items()) and all(
                sizes[s] <= k for s, k in upper.items()
            ):
                return True
        return False

    def try_vector(
        self,
        ctx: _ProblemContext,
        sizes: dict[Sort, int],
        stats: FinderStats,
        *,
        deadline: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_learned_clauses: Optional[int] = None,
        collect_cores: bool = True,
        minimize_cores: bool = True,
    ) -> _VectorOutcome:
        """Attempt one size vector; says *how* it failed, not just that.

        Distinguishing a refutation (solver unsat — the vector provably
        has no model) from budget/deadline exhaustion (indeterminate) is
        what lets :meth:`ModelFinder.search` report an honest
        ``complete`` verdict; refutations additionally carry their unsat
        core into ``ctx.refuted_cores`` when ``collect_cores`` is on.

        With observability on (:mod:`repro.obs.runtime`) each attempt
        runs inside a ``vector`` span with the solver's phase timers
        enabled; the per-phase totals land as aggregate child spans and
        ``phase.*`` metric counters.  Disabled, this wrapper is a single
        check and the untimed body runs verbatim — verdicts and stats
        are identical either way.
        """
        tracer, metrics = obs_runtime.TRACER, obs_runtime.METRICS
        if tracer is None and metrics is None:
            return self._try_vector(
                ctx,
                sizes,
                stats,
                deadline=deadline,
                max_conflicts=max_conflicts,
                max_learned_clauses=max_learned_clauses,
                collect_cores=collect_cores,
                minimize_cores=minimize_cores,
            )
        # phase timing is a CDCLSolver extra; external backends simply
        # skip it (the vector span itself still records)
        set_pt = getattr(self.solver, "set_phase_timing", None)
        if set_pt is not None:
            set_pt(True)
        obs_runtime.watch_solver_stats(self.solver.stats)
        span = None
        if tracer is not None:
            span = tracer.begin(
                "vector",
                {
                    "sizes": {
                        getattr(s, "name", str(s)): k
                        for s, k in sizes.items()
                    }
                },
            )
        outcome: Optional[_VectorOutcome] = None
        try:
            outcome = self._try_vector(
                ctx,
                sizes,
                stats,
                deadline=deadline,
                max_conflicts=max_conflicts,
                max_learned_clauses=max_learned_clauses,
                collect_cores=collect_cores,
                minimize_cores=minimize_cores,
            )
            return outcome
        finally:
            # a reset inside the attempt swaps the solver out; the new
            # instance starts with timing off and an empty table, so the
            # read below degrades to {} rather than misattributing
            phases = (
                self.solver.phase_times()
                if getattr(self.solver, "phase_times", None) is not None
                else {}
            )
            for name, (secs, calls) in phases.items():
                if tracer is not None:
                    tracer.aggregate(name, secs, calls)
                if metrics is not None:
                    metrics.inc(f"phase.{name}_s", secs)
                    metrics.inc(f"phase.{name}_n", calls)
            set_pt = getattr(self.solver, "set_phase_timing", None)
            if set_pt is not None:
                set_pt(False)
            if span is not None:
                if outcome is not None:
                    span.args["outcome"] = (
                        "model"
                        if outcome.model is not None
                        else "refuted" if outcome.refuted else "exhausted"
                    )
                tracer.end(span)

    def _try_vector(
        self,
        ctx: _ProblemContext,
        sizes: dict[Sort, int],
        stats: FinderStats,
        *,
        deadline: Optional[float] = None,
        max_conflicts: Optional[int] = None,
        max_learned_clauses: Optional[int] = None,
        collect_cores: bool = True,
        minimize_cores: bool = True,
    ) -> _VectorOutcome:
        if ctx.released:
            raise FinderError(
                "problem context was released from its engine"
            )
        self._deadline = deadline
        # same counter family as clauses_encoded (accepted add_clause
        # calls incl. units), so the reuse ratio compares like with like
        pre_added = self.solver.stats.clauses_added
        grown = self.ensure(ctx, sizes)
        if grown is None:
            stats.vectors_exhausted += 1
            stats.deadline_hit = True
            return _VectorOutcome()  # deadline hit mid-encoding
        if not self._ok:
            # Level-0 contradiction in the shared database: it can no
            # longer discriminate between size vectors, so rebuild for
            # just this one (the documented reset safety valve).
            self.reset(stats)
            pre_added = 0
            if self.ensure(ctx, sizes) is None:
                stats.vectors_exhausted += 1
                stats.deadline_hit = True
                return _VectorOutcome()
            if not self._ok:
                # A fresh encoding is contradictory without assumptions.
                # Every clause is valid at every size, so the conflict is
                # size-independent: no vector can ever succeed.
                ctx.hopeless = True
                stats.vectors_refuted += 1
                return _VectorOutcome(refuted=True)
        stats.clauses_reused += pre_added
        limit = max_learned_clauses
        if limit is not None and self.solver.learned_count() > limit:
            self.solver.reduce_learned(limit // 2)
        # a problem is activated as the set of its groups' selectors;
        # each assumption's *meaning* is remembered so an unsat core can
        # be read back as size bounds
        assumptions: list[int] = []
        meaning: dict[int, tuple] = {}
        for g in self._resolve_groups(ctx):
            sel = self._sel(g)
            assumptions.append(sel)
            meaning[sel] = ("group",)
        for s in self.sorts:
            k = sizes[s]
            if k >= 2:
                lo = self._ex(s, k - 1)
                assumptions.append(lo)
                meaning[lo] = ("lo", s, k)
            hi = -self._ex(s, k)
            assumptions.append(hi)
            meaning[hi] = ("hi", s, k)
        pre_conflicts = self.solver.stats.conflicts
        outcome = self.solver.solve(
            assumptions,
            max_conflicts=max_conflicts,
            deadline=deadline,
        )
        stats.sat_vars = max(stats.sat_vars, self.solver.num_vars)
        stats.sat_clauses = max(
            stats.sat_clauses, self.solver.clause_count()
        )
        if outcome is True:
            return _VectorOutcome(
                model=self._decode(sizes, self.solver.model())
            )
        if outcome is None:
            # conflict budget or deadline exhausted: indeterminate, NOT
            # a refutation — the sweep's verdict must not claim it
            stats.vectors_exhausted += 1
            if deadline is not None and time.monotonic() >= deadline:
                stats.deadline_hit = True
            return _VectorOutcome()
        stats.vectors_refuted += 1
        if any(
            g.sel is not None
            and self.solver.fixed(g.sel) is False
            for g in (ctx.groups or ())
        ):
            # the database alone entails the negation of one of the
            # problem's selectors: that clause is unsatisfiable
            # under every assumption set, i.e. at every size vector
            # — stop the sweep early
            ctx.hopeless = True
        if collect_cores:
            # minimization probes only pay for themselves when the
            # refutation they amortize against cost real search; a
            # propagation-only refutation already has a cheap, re-derivable
            # core, so probing it is pure overhead
            effort = self.solver.stats.conflicts - pre_conflicts
            self._record_core(
                ctx, meaning, stats,
                minimize=(
                    minimize_cores
                    and effort >= self.CORE_MIN_TRIGGER_CONFLICTS
                ),
                effort=effort,
                deadline=deadline,
            )
        return _VectorOutcome(refuted=True)

    #: per-probe conflict budget of the deletion-based core
    #: minimization pass (each dropped literal costs at most this many
    #: conflicts; inconclusive probes just keep the literal)
    CORE_MIN_CONFLICTS = 500

    #: refutation cost (conflicts) below which a core is NOT worth
    #: minimizing: near-propagation refutations recur cheaply, so
    #: widening their stored bounds cannot win back the probe cost
    CORE_MIN_TRIGGER_CONFLICTS = 10

    #: refutation cost from which the long-shot upper-bound probes run
    #: too (see :meth:`_record_core`); below it only the lower-bound
    #: candidates — the probes that commonly succeed — are tried
    CORE_MIN_HI_CONFLICTS = 100

    def _record_core(
        self,
        ctx: _ProblemContext,
        meaning: dict[int, tuple],
        stats: FinderStats,
        *,
        minimize: bool = True,
        effort: int = 0,
        deadline: Optional[float] = None,
    ) -> None:
        """Translate the refutation's unsat core into reusable bounds.

        With ``minimize`` the core first goes through the backend's
        deletion-based :meth:`minimize_core` (bounded re-solves, budget
        capped per probe by the *refutation's own conflict count*
        ``effort`` up to :data:`CORE_MIN_CONFLICTS`, and by the sweep
        deadline — a probe never costs more than the search it is
        trying to generalize): every size-bound literal dropped widens
        the band of vectors the stored core covers, and a core
        minimized down to clause-group selectors alone upgrades to a
        size-independent refutation.
        """
        core = self.solver.core()
        # Only size-bound assumptions are worth deletion probes:
        # dropping one widens the stored bounds, while dropping a
        # clause-group selector leaves the translated core unchanged.
        # Lower bounds are probed on multi-sort sweeps only — the
        # sweep ascends and never revisits smaller totals, so widening
        # a band downward pays solely through *other compositions* of a
        # later total size.  Upper bounds are the long-shot probes: a
        # droppable "hi" upgrades the core toward a size-independent
        # refutation that stops the sweep, but such drops are rare, so
        # the gamble is only taken after a refutation expensive enough
        # (``CORE_MIN_HI_CONFLICTS``) that stopping the sweep would
        # repay many failed probes.
        multi_sort = len(self.sorts) > 1
        probe_hi = effort >= self.CORE_MIN_HI_CONFLICTS
        bound_lits = [
            lit
            for lit in core
            if (probe_hi and meaning.get(lit, ("",))[0] == "hi")
            or (multi_sort and meaning.get(lit, ("",))[0] == "lo")
        ]
        if minimize and bound_lits and len(core) > 1:
            before = len(core)
            # each probe may spend at most half the refutation's own
            # conflict count (floor: the trigger): a conclusive unsat
            # probe re-derives the refutation with the learned clauses
            # already in place, so it is normally much cheaper than the
            # original search, while a failed probe must not cost more
            # than the work it was trying to generalize
            core = self.solver.minimize_core(
                max_conflicts_per_probe=min(
                    self.CORE_MIN_CONFLICTS,
                    max(effort // 2, self.CORE_MIN_TRIGGER_CONFLICTS),
                ),
                deadline=deadline,
                candidates=bound_lits,
            )
            if len(core) < before:
                stats.cores_minimized += 1
                stats.core_lits_dropped += before - len(core)
        if not core:
            # an empty core means the shared database alone is unsat —
            # that is the reset safety valve's business, not evidence
            # about this particular problem
            return
        lower: dict[Sort, int] = {}
        upper: dict[Sort, int] = {}
        for lit in core:
            tag = meaning.get(lit)
            if tag is None:  # not one of our assumptions: don't trust it
                return
            kind = tag[0]
            if kind == "lo":
                lower[tag[1]] = max(lower.get(tag[1], 0), tag[2])
            elif kind == "hi":
                upper[tag[1]] = min(upper.get(tag[1], tag[2]), tag[2])
        stats.cores_extracted += 1
        if not lower and not upper:
            # the refutation rests on clause-group selectors alone —
            # no existence bound was involved, so the problem is unsat
            # at *every* size vector
            ctx.hopeless = True
            return
        bounds = (lower, upper)
        if bounds not in ctx.refuted_cores:
            ctx.refuted_cores.append(bounds)

    def _decode(
        self, sizes: dict[Sort, int], assignment: dict[int, bool]
    ) -> FiniteModel:
        functions: dict[FuncSymbol, dict[tuple[int, ...], int]] = {}
        for f, table in self.func_vars.items():
            res_size = sizes[f.result_sort]
            arg_sizes = [sizes[s] for s in f.arg_sorts]
            for (args, v), var in table.items():
                if v >= res_size:
                    continue
                if any(a >= k for a, k in zip(args, arg_sizes)):
                    continue
                if assignment.get(var):
                    functions.setdefault(f, {})[args] = v
        predicates: dict[PredSymbol, set[tuple[int, ...]]] = {
            p: set() for p in self.predicates
        }
        for p, table in self.pred_vars.items():
            arg_sizes = [sizes[s] for s in p.arg_sorts]
            for args, var in table.items():
                if any(a >= k for a, k in zip(args, arg_sizes)):
                    continue
                if assignment.get(var):
                    predicates[p].add(args)
        model = FiniteModel(dict(sizes), functions, predicates)
        validate_model(model)
        return model


_UNSET = object()


class ModelFinder:
    """Iterative-deepening finite model search for one CHC system.

    With ``incremental=True`` (the default) the finder keeps one
    :class:`_IncrementalEngine` alive across every :meth:`search` call,
    so repeated searches (e.g. resuming at a larger minimum size after a
    failed Herbrand check) also reuse the encoding and learned clauses.
    ``incremental=False`` resets the engine before every size vector —
    the from-scratch behaviour, kept for the ablation benchmark.

    ``engine`` injects a shared engine (campaign mode): the finder
    registers its problem as one context on that engine instead of
    building its own, inheriting every clause, learned clause and
    heuristic score other signature-compatible problems left behind.
    The engine's signature lists must match the system's exactly — the
    :class:`~repro.mace.pool.EnginePool` guarantees this by keying
    engines on a canonical signature fingerprint.

    ``core_guided_sweep`` (default on) prunes the sweep with the unsat
    cores of refuted vectors and enables the size-independent
    ``hopeless`` shortcut; ``lbd_retention`` selects the solver's
    LBD-tier learned-clause GC.  Both exist for the
    ``benchmarks/bench_core.py`` ablation, which checks verdicts are
    identical with the guidance on and off.
    """

    def __init__(
        self,
        system: CHCSystem,
        *,
        max_total_size: int = 12,
        max_conflicts_per_size: Optional[int] = 200_000,
        symmetry_breaking: bool = True,
        deadline: Optional[float] = None,
        min_total_size: int = 0,
        incremental: bool = True,
        max_learned_clauses: Optional[int] = 20_000,
        engine: Optional[_IncrementalEngine] = None,
        core_guided_sweep: bool = True,
        lbd_retention: bool = True,
        sat_backend: str = "python",
        core_minimization: bool = True,
    ):
        self.system = system
        self.max_total_size = max_total_size
        self.min_total_size = min_total_size
        self.max_conflicts = max_conflicts_per_size
        self.symmetry_breaking = symmetry_breaking
        self.deadline = deadline
        self.incremental = incremental
        self.max_learned_clauses = max_learned_clauses
        self.core_guided_sweep = core_guided_sweep
        self.lbd_retention = lbd_retention
        self.sat_backend = sat_backend
        self.core_minimization = core_minimization
        counter = itertools.count()
        self.flat_clauses = [
            flatten_clause(cl, counter) for cl in system.clauses
        ]
        self.functions = sorted(
            system.adts.signature.functions.values(), key=lambda f: f.name
        )
        self.predicates = sorted(
            system.predicates.values(), key=lambda p: p.name
        )
        self.sorts = sorted(system.adts.sorts, key=lambda s: s.name)
        if engine is not None:
            if not incremental:
                raise FinderError(
                    "a shared engine requires incremental mode"
                )
            if (
                engine.sorts != self.sorts
                or engine.functions != self.functions
                or engine.predicates != self.predicates
                or engine.symmetry_breaking != symmetry_breaking
                or engine.lbd_retention != lbd_retention
                or engine.sat_backend != sat_backend
            ):
                raise FinderError(
                    "shared engine signature does not match the system "
                    "(pool fingerprints must agree)"
                )
        self._engine: Optional[_IncrementalEngine] = engine
        self._shared_engine = engine is not None
        self._ctx: Optional[_ProblemContext] = None

    # ------------------------------------------------------------------
    def search(
        self,
        *,
        min_total_size: Optional[int] = None,
        deadline: object = _UNSET,
    ) -> FinderResult:
        """Try size vectors in order of total size until a model appears.

        ``min_total_size`` applies to this call only.  Passing
        ``deadline`` *replaces* the finder's deadline from here on
        (callers resuming a sweep supply a fresh budget each call while
        the engine keeps its state); omit it to keep the current one.

        The returned :class:`FinderResult` carries ``complete=True``
        only when the verdict is definitive: a model was found, or
        every candidate vector was *refuted* — directly, by a covering
        unsat core (``vectors_skipped``), or by a size-independent
        hopeless proof.  A vector that merely ran out of conflict or
        wall-clock budget leaves the sweep incomplete.
        """
        if self._shared_engine and not self.incremental:
            # defensive re-check of the constructor invariant (the flag
            # is a plain attribute): resetting a pooled engine would
            # wipe every other problem's state in it
            raise FinderError(
                "a shared engine requires incremental mode"
            )
        if deadline is not _UNSET:
            self.deadline = deadline  # type: ignore[assignment]
        min_total = (
            self.min_total_size if min_total_size is None else min_total_size
        )
        if self._engine is None:
            self._engine = _IncrementalEngine(
                self.sorts,
                self.functions,
                self.predicates,
                symmetry_breaking=self.symmetry_breaking,
                lbd_retention=self.lbd_retention,
                sat_backend=self.sat_backend,
            )
        engine = self._engine
        if self._ctx is None:
            self._ctx = engine.register(self.flat_clauses)
        ctx = self._ctx
        stats = FinderStats(
            incremental=self.incremental,
            engine_shared=self._shared_engine,
            cross_problem_clauses=(
                ctx.joined_at_clauses if self._shared_engine else 0
            ),
            sat_backend=engine.sat_backend,
        )
        base_added = engine.total_added
        base_learned = engine.total_learned
        base_glue = engine.total_glue
        start = time.monotonic()
        complete = True
        # live-progress registration is one weakref assignment, cheap
        # enough to do even with all collectors off
        obs_runtime.watch_finder_stats(stats)
        solver_stats = getattr(engine.solver, "stats", None)
        if solver_stats is not None:
            obs_runtime.watch_solver_stats(solver_stats)
        sat_before = (
            dataclasses.asdict(solver_stats)
            if obs_runtime.METRICS is not None
            and dataclasses.is_dataclass(solver_stats)
            else None
        )

        def finish(model: Optional[FiniteModel]) -> FinderResult:
            stats.elapsed = time.monotonic() - start
            stats.clauses_encoded = engine.total_added - base_added
            stats.learned_total = engine.total_learned - base_learned
            stats.learned_glue = engine.total_glue - base_glue
            stats.learned_kept = engine.solver.learned_count()
            stats.hopeless = ctx.hopeless
            if model is not None:
                stats.model_size = model.size()
            metrics = obs_runtime.METRICS
            if metrics is not None and sat_before is not None:
                after_stats = getattr(engine.solver, "stats", None)
                if dataclasses.is_dataclass(after_stats):
                    after = dataclasses.asdict(after_stats)
                    # deltas, clamped: an engine reset mid-sweep swaps
                    # in a fresh counter object and must not go negative
                    metrics.publish(
                        "sat",
                        {
                            key: max(value - sat_before.get(key, 0), 0)
                            for key, value in after.items()
                            if isinstance(value, (int, float))
                            and not isinstance(value, bool)
                        },
                    )
            return FinderResult(
                model, stats, complete=model is not None or complete
            )

        if ctx.hopeless:
            return finish(None)
        for sizes in size_vectors(
            self.sorts, self.max_total_size, min_total
        ):
            if self.deadline is not None and time.monotonic() > self.deadline:
                complete = False  # sweep cut short: verdict not definitive
                stats.deadline_hit = True
                break
            if self.core_guided_sweep and engine.vector_covered(ctx, sizes):
                # a previous refutation's core transfers to this vector:
                # it is proven unsat without touching the solver
                stats.vectors_skipped += 1
                continue
            stats.attempts += 1
            if not self.incremental:
                engine.reset(stats)
            outcome = engine.try_vector(
                ctx,
                sizes,
                stats,
                deadline=self.deadline,
                max_conflicts=self.max_conflicts,
                max_learned_clauses=self.max_learned_clauses,
                collect_cores=self.core_guided_sweep,
                minimize_cores=self.core_minimization,
            )
            if outcome.model is not None:
                return finish(outcome.model)
            if not outcome.refuted:
                # budget/deadline exhaustion is not a refutation
                complete = False
            if ctx.hopeless:
                # size-independent contradiction: no model exists at
                # ANY size — definitive even if some earlier vector
                # had merely exhausted its budget
                complete = True
                break
        return finish(None)


def find_model(
    system: CHCSystem,
    *,
    max_total_size: int = 12,
    timeout: Optional[float] = None,
    symmetry_breaking: bool = True,
    max_conflicts_per_size: Optional[int] = 200_000,
    min_total_size: int = 0,
    incremental: bool = True,
    max_learned_clauses: Optional[int] = 20_000,
    core_guided_sweep: bool = True,
    lbd_retention: bool = True,
    sat_backend: str = "python",
    core_minimization: bool = True,
) -> FinderResult:
    """Search for a finite model of a constraint-free CHC system."""
    deadline = None if timeout is None else time.monotonic() + timeout
    finder = ModelFinder(
        system,
        max_total_size=max_total_size,
        max_conflicts_per_size=max_conflicts_per_size,
        symmetry_breaking=symmetry_breaking,
        deadline=deadline,
        min_total_size=min_total_size,
        incremental=incremental,
        max_learned_clauses=max_learned_clauses,
        core_guided_sweep=core_guided_sweep,
        lbd_retention=lbd_retention,
        sat_backend=sat_backend,
        core_minimization=core_minimization,
    )
    return finder.search()
