"""Campaign batch mode: persistent model-finding engines shared across problems.

The paper's evaluation (Sec. 6) runs whole benchmark campaigns —
hundreds of CHC systems that overwhelmingly share their ADT signatures.
Building a fresh incremental engine per problem discards learned
clauses, VSIDS activity and the signature-level cell encoding between
runs; the :class:`EnginePool` keeps one :class:`_IncrementalEngine`
alive per *canonical signature fingerprint* instead, so every
signature-compatible problem rides the same persistent CDCL state.
Cross-problem isolation is by selector-guarded clause groups (see the
campaign section of the :mod:`repro.mace.finder` docstring): each
clause's ground instances are guarded by a selector keyed on canonical
clause structure, a problem is activated through assumptions on exactly
its groups' selectors, and structurally identical clauses across
problems — a benchmark family's shared rules — share one encoding and
the learned clauses derived from it.  Nothing is ever retracted, so
everything stays valid for every future problem.

Reset conditions (bounding a long campaign's memory):

* an engine that has hosted ``max_problems_per_engine`` contexts is
  *recycled* — the pool builds a fresh engine for the fingerprint while
  finders still holding the old one keep working standalone;
* when more than ``max_engines`` fingerprints are live, the least
  recently used engine is evicted outright;
* finished problems should be :meth:`released <EnginePool.release>`:
  their clause groups lose a reference, and groups nothing references
  for ``gc_window`` further registrations are retired (selector pinned
  false, clauses dropped by a level-0 simplify).

Warm persistence (the snapshot layer)
-------------------------------------

Engines are serializable (:meth:`_IncrementalEngine.snapshot`), and the
pool exploits that in two ways:

* ``cache_dir`` turns on a **disk-backed warm cache**: recycled and
  evicted engines are persisted (pickled, written atomically) keyed by
  their fingerprint, a :meth:`_slot_for` miss tries the cache before
  building cold, and :meth:`flush_cache` persists every live engine —
  so a second campaign over the same benchmark family starts from the
  first one's encodings, learned clauses and refutation bounds;
* :meth:`adopt_snapshot` installs an in-memory snapshot as a live slot
  (supervised workers warm-start from the snapshot a predecessor
  returned) and :meth:`last_snapshot` serializes the most recently used
  engine for handing back.

Every load/adopt path validates the wrapper schema, snapshot version,
fingerprint and pool configuration; *any* failure — corrupt file, stale
version, foreign fingerprint, missing optional backend — counts as
``snapshot_rejected`` and falls back to a cold engine, never an error.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.chc.clauses import CHCSystem
from repro.obs import runtime as obs_runtime
from repro.mace.finder import (
    ENGINE_SNAPSHOT_VERSION,
    EngineSnapshotError,
    ModelFinder,
    _IncrementalEngine,
    engine_fingerprint,
)


def signature_fingerprint(system: CHCSystem) -> tuple:
    """A canonical, hashable fingerprint of a system's signature.

    Two systems with equal fingerprints declare the same sorts, the same
    ADT constructors (name, argument sorts, result sort) and the same
    uninterpreted predicates (name, argument sorts) — exactly the data
    the propositional encoding's shared layer (existence chains, cells,
    symmetry cuts) is built from, so their finite-model searches can
    share one incremental engine.  Clause sets may differ arbitrarily;
    those stay per-problem behind activation selectors.

    Delegates to :func:`repro.mace.finder.engine_fingerprint`, so the
    fingerprint inside an engine snapshot is byte-for-byte the one the
    pool keys that engine under.
    """
    return engine_fingerprint(
        system.adts.sorts,
        system.adts.signature.functions.values(),
        system.predicates.values(),
    )


@dataclass
class PoolStats:
    """All counters of one campaign pool, serialized uniformly.

    The reuse block: ``engine_hits`` counts problems that joined an
    engine another problem had already warmed up — the reuse events the
    pool exists to create — and ``cross_problem_clauses`` sums the
    clauses those problems found already encoded on arrival.  The
    lifecycle block (``engine_recycles`` / ``engines_evicted`` /
    ``released``) tracks the memory bounds.  The snapshot block:
    ``snapshot_saves`` engines persisted to the warm cache,
    ``snapshot_hits`` engines started warm (from disk or an adopted
    in-memory snapshot), ``snapshot_misses`` cache lookups that found
    no usable file, ``snapshot_rejected`` snapshots refused for any
    reason (corrupt, wrong version, foreign fingerprint or
    configuration) — rejections always fall back cold.

    ``engines_live`` is a gauge, refreshed by :meth:`EnginePool.as_dict`;
    everything else is a monotone counter.  :meth:`as_dict` is the one
    serialization used by reports and JSON artifacts.
    """

    problems: int = 0
    engines_created: int = 0
    engine_hits: int = 0
    cross_problem_clauses: int = 0
    engine_recycles: int = 0
    engines_evicted: int = 0
    released: int = 0
    snapshot_saves: int = 0
    snapshot_hits: int = 0
    snapshot_misses: int = 0
    snapshot_rejected: int = 0
    engines_live: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class _PooledEngine:
    """One engine plus the pool's bookkeeping about it."""

    __slots__ = ("engine", "problems_hosted")

    def __init__(self, engine: _IncrementalEngine):
        self.engine = engine
        self.problems_hosted = 0


#: wrapper schema written around engine snapshots in cache files
_CACHE_SCHEMA = "engine-cache"


class EnginePool:
    """Persistent :class:`ModelFinder` engines keyed by signature.

    ``finder(system, ...)`` hands out a ModelFinder whose engine is
    shared with every previous signature-compatible problem; problems
    with incompatible signatures get (and warm up) separate engines.
    The pool is a process-lifetime object: one per campaign, threaded
    through :class:`repro.core.ringen.RInGenConfig` and the harness.
    With ``cache_dir`` set, engine state additionally persists *across*
    processes and campaigns (see the module docstring).
    """

    def __init__(
        self,
        *,
        symmetry_breaking: bool = True,
        max_engines: Optional[int] = 8,
        max_problems_per_engine: Optional[int] = 64,
        lbd_retention: bool = True,
        sat_backend: str = "python",
        cache_dir: Optional[Union[str, Path]] = None,
    ):
        self.symmetry_breaking = symmetry_breaking
        self.max_engines = max_engines
        self.max_problems_per_engine = max_problems_per_engine
        # learned-clause GC policy of every engine this pool builds;
        # finders riding a pooled engine must agree with it (the
        # ModelFinder constructor enforces the match)
        self.lbd_retention = lbd_retention
        # SAT backend of every engine this pool builds; part of the
        # engine key so a mixed-backend campaign never hands a finder
        # an engine built over the wrong solver
        self.sat_backend = sat_backend
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.stats = PoolStats()
        self._engines: "OrderedDict[tuple, _PooledEngine]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._engines)

    def fingerprint(self, system: CHCSystem) -> tuple:
        return signature_fingerprint(system)

    # -- disk warm cache ---------------------------------------------------
    def _cache_path(self, key: tuple) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:32]
        return self.cache_dir / f"{digest}.engine"

    def _persist(self, key: tuple, engine: _IncrementalEngine) -> bool:
        """Write ``engine`` to the warm cache (atomic; best-effort)."""
        path = self._cache_path(key)
        if path is None:
            return False
        try:
            payload = pickle.dumps(
                {
                    "schema": _CACHE_SCHEMA,
                    "version": ENGINE_SNAPSHOT_VERSION,
                    "key": key,
                    "engine": engine.snapshot(),
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            # a half-written or unwritable cache must never fail the
            # campaign; the next run simply starts cold
            return False
        self.stats.snapshot_saves += 1
        return True

    def _load(self, key: tuple) -> Optional[_IncrementalEngine]:
        """Try to restore ``key``'s engine from the warm cache."""
        path = self._cache_path(key)
        if path is None:
            return None
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.snapshot_misses += 1
            return None
        try:
            wrapper = pickle.loads(data)
            if (
                not isinstance(wrapper, dict)
                or wrapper.get("schema") != _CACHE_SCHEMA
                or wrapper.get("version") != ENGINE_SNAPSHOT_VERSION
            ):
                raise EngineSnapshotError("bad cache wrapper")
            if wrapper.get("key") != key:
                raise EngineSnapshotError(
                    "cache file fingerprint disagrees with its name"
                )
            engine = self._restore_engine(wrapper["engine"])
        except Exception:
            # corrupt, stale-version, foreign or unusable (e.g. a pysat
            # snapshot without python-sat installed): fall back cold
            self.stats.snapshot_rejected += 1
            return None
        self.stats.snapshot_hits += 1
        return engine

    def _restore_engine(self, snap: dict) -> _IncrementalEngine:
        """Restore + validate a snapshot against this pool's config."""
        if not isinstance(snap, dict):
            raise EngineSnapshotError("not an engine snapshot")
        if snap.get("sat_backend") != self.sat_backend:
            raise EngineSnapshotError(
                "snapshot backend disagrees with the pool's"
            )
        if bool(snap.get("lbd_retention")) != self.lbd_retention or bool(
            snap.get("symmetry_breaking")
        ) != self.symmetry_breaking:
            raise EngineSnapshotError(
                "snapshot solver policy disagrees with the pool's"
            )
        return _IncrementalEngine.restore(snap)

    def flush_cache(self) -> int:
        """Persist every live engine to the warm cache; returns count."""
        if self.cache_dir is None:
            return 0
        written = 0
        for key, slot in self._engines.items():
            if self._persist(key, slot.engine):
                written += 1
        return written

    def adopt_snapshot(self, snap: dict) -> bool:
        """Install an in-memory engine snapshot as a live pool slot.

        The warm-start path of supervised workers: the supervisor ships
        the latest snapshot for a task batch's fingerprint in the task
        payload, and the worker's pool adopts it before solving, so a
        rescheduled batch resumes from its predecessor's state instead
        of cold.  Validates like the disk cache (any failure counts as
        ``snapshot_rejected`` and returns False — callers proceed cold).
        """
        try:
            engine = self._restore_engine(snap)
            key = (self.sat_backend, snap["fingerprint"])
        except Exception:
            self.stats.snapshot_rejected += 1
            return False
        slot = _PooledEngine(engine)
        self._engines[key] = slot
        self._engines.move_to_end(key)
        self._evict_over_limit()
        self.stats.snapshot_hits += 1
        return True

    def last_snapshot(self) -> Optional[dict]:
        """Snapshot of the most recently used engine, or ``None``.

        The inverse of :meth:`adopt_snapshot`: a supervised worker calls
        this after its batch so the supervisor can reschedule survivors
        warm.  Serialization failure degrades to ``None`` (cold), never
        an error.
        """
        if not self._engines:
            return None
        slot = next(reversed(self._engines.values()))
        try:
            return slot.engine.snapshot()
        except Exception:
            self.stats.snapshot_rejected += 1
            return None

    def snapshot_for(self, system: CHCSystem) -> Optional[dict]:
        """Serialized engine state for ``system``'s signature, if any.

        The per-shard fan-out path of the parallel sweep
        (:mod:`repro.mace.parallel`): every shard of a speculative
        portfolio warm-starts from one snapshot of the signature's
        pooled engine.  A live slot is snapshotted fresh; otherwise the
        disk warm cache is consulted and its raw (already validated by
        the shard on restore) snapshot returned.  Never raises —
        ``None`` means the shards start cold.
        """
        key = (self.sat_backend, signature_fingerprint(system))
        slot = self._engines.get(key)
        if slot is not None:
            try:
                return slot.engine.snapshot()
            except Exception:
                self.stats.snapshot_rejected += 1
                return None
        path = self._cache_path(key)
        if path is None:
            return None
        try:
            wrapper = pickle.loads(path.read_bytes())
            if (
                not isinstance(wrapper, dict)
                or wrapper.get("schema") != _CACHE_SCHEMA
                or wrapper.get("version") != ENGINE_SNAPSHOT_VERSION
                or wrapper.get("key") != key
            ):
                raise EngineSnapshotError("bad cache wrapper")
            snap = wrapper["engine"]
        except Exception:
            return None
        return snap if isinstance(snap, dict) else None

    # -- engine lookup -----------------------------------------------------
    def _evict_over_limit(self) -> None:
        while (
            self.max_engines is not None
            and len(self._engines) > self.max_engines
        ):
            key, slot = self._engines.popitem(last=False)
            self._persist(key, slot.engine)
            self.stats.engines_evicted += 1

    def _slot_for(self, system: CHCSystem) -> _PooledEngine:
        key = (self.sat_backend, signature_fingerprint(system))
        from_cache_ok = True
        slot = self._engines.get(key)
        if slot is not None and (
            self.max_problems_per_engine is not None
            and slot.problems_hosted >= self.max_problems_per_engine
        ):
            # recycle: bound the clause database a very long campaign
            # accumulates; finders still holding the old engine keep
            # working standalone.  The retiring engine goes to the warm
            # cache for *future processes*, but this process must build
            # the replacement cold — reloading the snapshot we just
            # wrote would undo the recycle's memory bound
            self._persist(key, slot.engine)
            del self._engines[key]
            slot = None
            self.stats.engine_recycles += 1
            from_cache_ok = False
        if slot is None and from_cache_ok:
            cached = self._load(key)
            if cached is not None:
                slot = _PooledEngine(cached)
                self._engines[key] = slot
        if slot is None:
            slot = _PooledEngine(
                _IncrementalEngine(
                    sorted(system.adts.sorts, key=lambda s: s.name),
                    sorted(
                        system.adts.signature.functions.values(),
                        key=lambda f: f.name,
                    ),
                    sorted(
                        system.predicates.values(), key=lambda p: p.name
                    ),
                    symmetry_breaking=self.symmetry_breaking,
                    lbd_retention=self.lbd_retention,
                    sat_backend=self.sat_backend,
                )
            )
            self._engines[key] = slot
            self.stats.engines_created += 1
        self._engines.move_to_end(key)
        self._evict_over_limit()
        return slot

    def engine_for(self, system: CHCSystem) -> _IncrementalEngine:
        """The shared engine for ``system``'s signature (creating it)."""
        return self._slot_for(system).engine

    def finder(
        self,
        system: CHCSystem,
        *,
        max_total_size: int = 12,
        max_conflicts_per_size: Optional[int] = 200_000,
        deadline: Optional[float] = None,
        min_total_size: int = 0,
        max_learned_clauses: Optional[int] = 20_000,
        core_guided_sweep: bool = True,
        core_minimization: bool = True,
    ) -> ModelFinder:
        """A ModelFinder for ``system`` riding the pooled engine."""
        slot = self._slot_for(system)
        engine = slot.engine
        hit = engine.problems_registered > 0
        finder = ModelFinder(
            system,
            max_total_size=max_total_size,
            max_conflicts_per_size=max_conflicts_per_size,
            symmetry_breaking=self.symmetry_breaking,
            deadline=deadline,
            min_total_size=min_total_size,
            incremental=True,
            max_learned_clauses=max_learned_clauses,
            engine=engine,
            core_guided_sweep=core_guided_sweep,
            lbd_retention=self.lbd_retention,
            sat_backend=self.sat_backend,
            core_minimization=core_minimization,
        )
        self.stats.problems += 1
        slot.problems_hosted += 1
        if hit:
            self.stats.engine_hits += 1
            self.stats.cross_problem_clauses += engine.total_added
        return finder

    def release(self, finder: ModelFinder) -> None:
        """Retire a finished problem's activation selector.

        Safe to call for finders that never searched (no context yet)
        and idempotent for already-released ones.
        """
        engine, ctx = finder._engine, finder._ctx
        if engine is None or ctx is None or ctx.released:
            return
        engine.release(ctx)
        self.stats.released += 1

    def as_dict(self) -> dict:
        """Plain-dict stats view for reports / JSON artifacts."""
        self.stats.engines_live = len(self._engines)
        return self.stats.as_dict()

    def publish_metrics(self) -> None:
        """Fold the pool counters into the active metrics registry
        (no-op when metrics are off); ``engines_live`` goes in as a
        gauge, everything else as additive counters."""
        metrics = obs_runtime.METRICS
        if metrics is None:
            return
        snap = self.as_dict()
        live = snap.pop("engines_live", None)
        metrics.publish("pool", snap)
        if live is not None:
            metrics.gauge("pool.engines_live", live)
