"""Campaign batch mode: persistent model-finding engines shared across problems.

The paper's evaluation (Sec. 6) runs whole benchmark campaigns —
hundreds of CHC systems that overwhelmingly share their ADT signatures.
Building a fresh incremental engine per problem discards learned
clauses, VSIDS activity and the signature-level cell encoding between
runs; the :class:`EnginePool` keeps one :class:`_IncrementalEngine`
alive per *canonical signature fingerprint* instead, so every
signature-compatible problem rides the same persistent CDCL state.
Cross-problem isolation is by selector-guarded clause groups (see the
campaign section of the :mod:`repro.mace.finder` docstring): each
clause's ground instances are guarded by a selector keyed on canonical
clause structure, a problem is activated through assumptions on exactly
its groups' selectors, and structurally identical clauses across
problems — a benchmark family's shared rules — share one encoding and
the learned clauses derived from it.  Nothing is ever retracted, so
everything stays valid for every future problem.

Reset conditions (bounding a long campaign's memory):

* an engine that has hosted ``max_problems_per_engine`` contexts is
  *recycled* — the pool builds a fresh engine for the fingerprint while
  finders still holding the old one keep working standalone;
* when more than ``max_engines`` fingerprints are live, the least
  recently used engine is evicted outright;
* finished problems should be :meth:`released <EnginePool.release>`:
  their clause groups lose a reference, and groups nothing references
  for ``gc_window`` further registrations are retired (selector pinned
  false, clauses dropped by a level-0 simplify).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.chc.clauses import CHCSystem
from repro.mace.finder import ModelFinder, _IncrementalEngine


def signature_fingerprint(system: CHCSystem) -> tuple:
    """A canonical, hashable fingerprint of a system's signature.

    Two systems with equal fingerprints declare the same sorts, the same
    ADT constructors (name, argument sorts, result sort) and the same
    uninterpreted predicates (name, argument sorts) — exactly the data
    the propositional encoding's shared layer (existence chains, cells,
    symmetry cuts) is built from, so their finite-model searches can
    share one incremental engine.  Clause sets may differ arbitrarily;
    those stay per-problem behind activation selectors.
    """
    signature = system.adts.signature
    return (
        tuple(sorted(s.name for s in system.adts.sorts)),
        tuple(
            sorted(
                (
                    f.name,
                    tuple(s.name for s in f.arg_sorts),
                    f.result_sort.name,
                )
                for f in signature.functions.values()
            )
        ),
        tuple(
            sorted(
                (p.name, tuple(s.name for s in p.arg_sorts))
                for p in system.predicates.values()
            )
        ),
    )


@dataclass
class PoolStats:
    """Cross-problem reuse counters of one campaign pool.

    ``engine_hits`` counts problems that joined an engine another
    problem had already warmed up — the reuse events the pool exists to
    create — and ``cross_problem_clauses`` sums the clauses those
    problems found already encoded on arrival.
    """

    problems: int = 0
    engines_created: int = 0
    engine_hits: int = 0
    cross_problem_clauses: int = 0
    engine_recycles: int = 0
    engines_evicted: int = 0
    released: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


class _PooledEngine:
    """One engine plus the pool's bookkeeping about it."""

    __slots__ = ("engine", "problems_hosted")

    def __init__(self, engine: _IncrementalEngine):
        self.engine = engine
        self.problems_hosted = 0


class EnginePool:
    """Persistent :class:`ModelFinder` engines keyed by signature.

    ``finder(system, ...)`` hands out a ModelFinder whose engine is
    shared with every previous signature-compatible problem; problems
    with incompatible signatures get (and warm up) separate engines.
    The pool is a process-lifetime object: one per campaign, threaded
    through :class:`repro.core.ringen.RInGenConfig` and the harness.
    """

    def __init__(
        self,
        *,
        symmetry_breaking: bool = True,
        max_engines: Optional[int] = 8,
        max_problems_per_engine: Optional[int] = 64,
        lbd_retention: bool = True,
        sat_backend: str = "python",
    ):
        self.symmetry_breaking = symmetry_breaking
        self.max_engines = max_engines
        self.max_problems_per_engine = max_problems_per_engine
        # learned-clause GC policy of every engine this pool builds;
        # finders riding a pooled engine must agree with it (the
        # ModelFinder constructor enforces the match)
        self.lbd_retention = lbd_retention
        # SAT backend of every engine this pool builds; part of the
        # engine key so a mixed-backend campaign never hands a finder
        # an engine built over the wrong solver
        self.sat_backend = sat_backend
        self.stats = PoolStats()
        self._engines: "OrderedDict[tuple, _PooledEngine]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._engines)

    def fingerprint(self, system: CHCSystem) -> tuple:
        return signature_fingerprint(system)

    def _slot_for(self, system: CHCSystem) -> _PooledEngine:
        key = (self.sat_backend, signature_fingerprint(system))
        slot = self._engines.get(key)
        if slot is not None and (
            self.max_problems_per_engine is not None
            and slot.problems_hosted >= self.max_problems_per_engine
        ):
            # recycle: bound the clause database a very long campaign
            # accumulates; finders still holding the old engine keep
            # working standalone
            del self._engines[key]
            slot = None
            self.stats.engine_recycles += 1
        if slot is None:
            slot = _PooledEngine(
                _IncrementalEngine(
                    sorted(system.adts.sorts, key=lambda s: s.name),
                    sorted(
                        system.adts.signature.functions.values(),
                        key=lambda f: f.name,
                    ),
                    sorted(
                        system.predicates.values(), key=lambda p: p.name
                    ),
                    symmetry_breaking=self.symmetry_breaking,
                    lbd_retention=self.lbd_retention,
                    sat_backend=self.sat_backend,
                )
            )
            self._engines[key] = slot
            self.stats.engines_created += 1
        self._engines.move_to_end(key)
        if (
            self.max_engines is not None
            and len(self._engines) > self.max_engines
        ):
            self._engines.popitem(last=False)
            self.stats.engines_evicted += 1
        return slot

    def engine_for(self, system: CHCSystem) -> _IncrementalEngine:
        """The shared engine for ``system``'s signature (creating it)."""
        return self._slot_for(system).engine

    def finder(
        self,
        system: CHCSystem,
        *,
        max_total_size: int = 12,
        max_conflicts_per_size: Optional[int] = 200_000,
        deadline: Optional[float] = None,
        min_total_size: int = 0,
        max_learned_clauses: Optional[int] = 20_000,
        core_guided_sweep: bool = True,
        core_minimization: bool = True,
    ) -> ModelFinder:
        """A ModelFinder for ``system`` riding the pooled engine."""
        slot = self._slot_for(system)
        engine = slot.engine
        hit = engine.problems_registered > 0
        finder = ModelFinder(
            system,
            max_total_size=max_total_size,
            max_conflicts_per_size=max_conflicts_per_size,
            symmetry_breaking=self.symmetry_breaking,
            deadline=deadline,
            min_total_size=min_total_size,
            incremental=True,
            max_learned_clauses=max_learned_clauses,
            engine=engine,
            core_guided_sweep=core_guided_sweep,
            lbd_retention=self.lbd_retention,
            sat_backend=self.sat_backend,
            core_minimization=core_minimization,
        )
        self.stats.problems += 1
        slot.problems_hosted += 1
        if hit:
            self.stats.engine_hits += 1
            self.stats.cross_problem_clauses += engine.total_added
        return finder

    def release(self, finder: ModelFinder) -> None:
        """Retire a finished problem's activation selector.

        Safe to call for finders that never searched (no context yet)
        and idempotent for already-released ones.
        """
        engine, ctx = finder._engine, finder._ctx
        if engine is None or ctx is None or ctx.released:
            return
        engine.release(ctx)
        self.stats.released += 1

    def as_dict(self) -> dict:
        """Plain-dict stats view for reports / JSON artifacts."""
        info = self.stats.as_dict()
        info["engines_live"] = len(self._engines)
        return info
