"""Finite first-order structures (the models found by :mod:`repro.mace`).

A :class:`FiniteModel` interprets every sort by ``{0, ..., n_sort - 1}``,
every function symbol by a total table and every predicate symbol by a
relation.  It can evaluate ground terms, decide clause satisfaction exactly
(finite domains make the universal closure decidable — the key fact behind
Sec. 4's "checking the inductiveness of a candidate finite-model invariant
is decidable"), and is the object converted into a tree automaton by
:func:`repro.automata.from_model.model_to_automata`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.chc.clauses import BodyAtom, CHCSystem, Clause
from repro.logic.formulas import TRUE
from repro.logic.sorts import FuncSymbol, PredSymbol, Sort
from repro.logic.terms import App, Term, Var, substitute


class ModelError(ValueError):
    """Raised on malformed or incomplete finite models."""


@dataclass
class FiniteModel:
    """A finite many-sorted structure.

    ``domains`` maps each sort to its cardinality; element ``i`` of sort
    ``s`` is just the integer ``i``.  ``functions`` maps each function
    symbol to a dict from argument tuples to values; ``predicates`` maps
    each predicate symbol to the set of tuples where it holds.
    """

    domains: dict[Sort, int]
    functions: dict[FuncSymbol, dict[tuple[int, ...], int]]
    predicates: dict[PredSymbol, set[tuple[int, ...]]]

    def size(self) -> int:
        """Sum of all sort cardinalities (the x-axis of Figure 6)."""
        return sum(self.domains.values())

    def domain(self, sort: Sort) -> range:
        try:
            return range(self.domains[sort])
        except KeyError:
            raise ModelError(f"no domain for sort {sort}") from None

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def eval_term(self, term: Term, env: Mapping[Var, int] = {}) -> int:
        """Interpret a term; variables are looked up in ``env``."""
        if isinstance(term, Var):
            try:
                return env[term]
            except KeyError:
                raise ModelError(f"unbound variable {term}") from None
        table = self.functions.get(term.func)
        if table is None:
            raise ModelError(f"no interpretation for {term.func.name}")
        args = tuple(self.eval_term(a, env) for a in term.args)
        try:
            return table[args]
        except KeyError:
            raise ModelError(
                f"partial function table for {term.func.name} at {args}"
            ) from None

    def holds(
        self, pred: PredSymbol, args: tuple[int, ...]
    ) -> bool:
        return args in self.predicates.get(pred, set())

    def reachable_elements(self, adts) -> dict[Sort, set[int]]:
        """Elements denoted by some ground constructor term.

        Quantification over ground Herbrand terms corresponds *exactly* to
        quantification over these elements (every ground term evaluates
        into the set, and each member is some ground term's value), which
        is what makes :meth:`eval_clause` with ``herbrand=True`` an exact
        Herbrand-satisfaction check — even for the quantifier-alternating
        STLC query of Fig. 2, where whole-domain quantification would be
        unsound in the presence of junk elements.
        """
        reached: dict[Sort, set[int]] = {s: set() for s in self.domains}
        changed = True
        while changed:
            changed = False
            for func, table in self.functions.items():
                if not adts.is_constructor(func):
                    continue
                for args, value in table.items():
                    if all(
                        a in reached[s]
                        for a, s in zip(args, func.arg_sorts)
                    ):
                        if value not in reached[func.result_sort]:
                            reached[func.result_sort].add(value)
                            changed = True
        return reached

    def eval_atom(
        self,
        atom: BodyAtom,
        env: Mapping[Var, int],
        pools: Optional[Mapping[Sort, Iterable[int]]] = None,
    ) -> bool:
        """Evaluate a (possibly universally blocked) body atom exactly."""
        if not atom.universal_vars:
            values = tuple(self.eval_term(t, env) for t in atom.args)
            return self.holds(atom.pred, values)
        ranges = [
            (pools or {}).get(v.sort, self.domain(v.sort))
            for v in atom.universal_vars
        ]
        for combo in itertools.product(*ranges):
            inner = dict(env)
            inner.update(zip(atom.universal_vars, combo))
            values = tuple(self.eval_term(t, inner) for t in atom.args)
            if not self.holds(atom.pred, values):
                return False
        return True

    def eval_clause(
        self,
        cl: Clause,
        *,
        adts=None,
        herbrand: bool = False,
    ) -> Optional[dict[Var, int]]:
        """Exact check of the universal closure of a constraint-free clause.

        Returns ``None`` if the clause holds, otherwise a falsifying
        assignment of the clause variables.  The clause must be
        constraint-free (run :func:`repro.chc.transform.preprocess` first).

        With ``herbrand=True`` (requires ``adts``) all quantifiers range
        over the constructor-reachable substructure, making the check an
        exact test of Herbrand satisfaction of the induced relations.
        """
        if cl.constraint != TRUE:
            raise ModelError(
                "finite models evaluate constraint-free clauses only; "
                "preprocess the system first"
            )
        domain_pools: Optional[dict[Sort, set[int]]] = None
        if herbrand:
            if adts is None:
                raise ModelError("herbrand evaluation requires the ADT system")
            domain_pools = self.reachable_elements(adts)
        free = sorted(cl.free_vars(), key=lambda v: v.name)
        if domain_pools is not None:
            pools = [sorted(domain_pools[v.sort]) for v in free]
        else:
            pools = [self.domain(v.sort) for v in free]
        for combo in itertools.product(*pools):
            env = dict(zip(free, combo))
            if not all(
                self.eval_atom(a, env, domain_pools) for a in cl.body
            ):
                continue
            if cl.head is None:
                return env
            values = tuple(self.eval_term(t, env) for t in cl.head.args)
            if not self.holds(cl.head.pred, values):
                return env
        return None

    def satisfies(
        self, system: CHCSystem, *, herbrand: bool = False
    ) -> bool:
        """Whether every clause of a constraint-free system holds."""
        return all(
            self.eval_clause(cl, adts=system.adts, herbrand=herbrand) is None
            for cl in system.clauses
        )

    def first_violation(
        self, system: CHCSystem, *, herbrand: bool = False
    ) -> Optional[tuple[Clause, dict[Var, int]]]:
        """The first violated clause with its falsifying assignment."""
        for cl in system.clauses:
            env = self.eval_clause(cl, adts=system.adts, herbrand=herbrand)
            if env is not None:
                return cl, env
        return None

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable rendering in the style of the paper's examples."""
        lines: list[str] = []
        for sort, n in sorted(self.domains.items(), key=lambda kv: kv[0].name):
            lines.append(f"|M|_{sort.name} = {{{', '.join(map(str, range(n)))}}}")
        for func, table in sorted(
            self.functions.items(), key=lambda kv: kv[0].name
        ):
            if func.arity == 0:
                lines.append(f"M({func.name}) = {table[()]}")
            else:
                entries = ", ".join(
                    f"{func.name}({', '.join(map(str, args))}) = {val}"
                    for args, val in sorted(table.items())
                )
                lines.append(f"M({func.name}): {entries}")
        for pred, rel in sorted(
            self.predicates.items(), key=lambda kv: kv[0].name
        ):
            entries = ", ".join(str(t) for t in sorted(rel))
            lines.append(f"M({pred.name}) = {{{entries}}}")
        return "\n".join(lines)


def validate_model(model: FiniteModel) -> None:
    """Check totality/functionality of all tables and relation bounds."""
    for func, table in model.functions.items():
        pools = [model.domain(s) for s in func.arg_sorts]
        expected = set(itertools.product(*pools))
        if set(table) != expected:
            raise ModelError(f"function {func.name} has a partial table")
        codomain = model.domains.get(func.result_sort)
        if codomain is None:
            raise ModelError(f"missing domain for {func.result_sort}")
        for value in table.values():
            if not 0 <= value < codomain:
                raise ModelError(
                    f"function {func.name} maps outside its codomain"
                )
    for pred, rel in model.predicates.items():
        for args in rel:
            if len(args) != pred.arity:
                raise ModelError(f"relation {pred.name} has wrong arity")
            for value, sort in zip(args, pred.arg_sorts):
                if not 0 <= value < model.domains.get(sort, 0):
                    raise ModelError(
                        f"relation {pred.name} contains out-of-domain tuple"
                    )
