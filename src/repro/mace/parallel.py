"""Speculative parallel size sweeps: a process-sharded vector portfolio.

The sequential sweep (:meth:`repro.mace.finder.ModelFinder.search`)
tries candidate size vectors in order of ascending total size on one
incremental engine.  This module keeps the same frontier and the same
verdict semantics but dispatches vectors to a portfolio of N engine
*shards* — subprocesses each hosting a private incremental engine,
warm-restored from an engine snapshot when one is available (the
:meth:`~repro.mace.pool.EnginePool.snapshot_for` fan-out) — and
*speculates*: while the lowest outstanding vector is still being
solved, later vectors are already running elsewhere.

Determinism / parity contract
-----------------------------

* A refutation is a sound, engine-independent fact (the vector provably
  has no model), so which engine refutes a vector never matters.
* The :class:`SweepScheduler` commits outcomes **strictly in sweep
  order**: a SAT answer wins only once every earlier vector has
  committed non-SAT, so the winning size vector — and with it the
  status and the model size — is exactly what the sequential sweep
  would have returned.  Outstanding speculation above the winner is
  cancelled (shards killed, partial answers discarded).
* Model *internals* may differ from a sequential run's (a CDCL model
  depends on search history); statuses, winning vector and model size
  do not, and every returned model still goes through the exact
  Herbrand verification in :mod:`repro.core.ringen`.
* With finite conflict budgets, *which* vectors exhaust their budget
  can differ between runs (each stays an honest "unknown"); the
  default budgets are effectively unbounded on the supported suites.

Core broadcast
--------------

Every refutation core a shard extracts is translated shard-side into
per-sort ``(lower, upper)`` bounds (the PR 3 logic), shipped back with
the verdict, folded into the scheduler's master bound list — pruning
the frontier before dispatch, ``vectors_skipped`` — and broadcast to
every other live shard, which prunes its own already-dispatched queue
without a solver call (``speculative_pruned``).

Fault tolerance
---------------

A shard that dies mid-speculation (crash, kill, injected fault) is
respawned from the same snapshot seed with the accumulated bounds
replayed through its spawn payload, and its in-flight vectors are
redispatched at ``attempt + 1``; a vector that keeps killing shards is
written off as exhausted after :data:`MAX_VECTOR_ATTEMPTS` (an honest
"unknown", never a wrong verdict).  Shards are driven directly over
``multiprocessing`` pipes — the supervised-worker protocol machinery
(:mod:`repro.exec.worker` hosts the shard entrypoint) with vector-level
task granularity and ``core`` control messages in both directions.

In-process fallback
-------------------

Daemonic processes may not have children, so inside an isolated
supervised worker (``--isolate`` campaigns) the portfolio falls back to
an in-process variant: N private engines in this process, round-robin,
one whole vector per turn.  Scheduler, commit order and broadcast
semantics are identical; there is no wall-clock speedup (cross-problem
parallelism already comes from the supervisor in that mode).
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from multiprocessing import connection as mp_connection
from typing import Optional, Sequence

from repro.chc.clauses import CHCSystem
from repro.exec.faults import ReproFaultPlan
from repro.mace.finder import (
    FinderError,
    FinderResult,
    FinderStats,
    _IncrementalEngine,
    flatten_clause,
    size_vectors,
)
from repro.obs import runtime as obs_runtime

_UNSET = object()

#: vectors queued per shard beyond the one it is solving: the queue
#: keeps a shard busy the moment it answers while leaving queued
#: vectors exposed to broadcast cores (the shard-side prune needs a
#: queue deep enough that a sibling's refutation lands before the
#: covered vector starts; shallower queues prune almost never, much
#: deeper ones waste speculation past the commit horizon)
SHARD_QUEUE_DEPTH = 4

#: dispatch attempts per vector before a repeatedly shard-killing
#: vector is written off as exhausted, and respawns per shard slot
#: before the slot is abandoned
MAX_VECTOR_ATTEMPTS = 3


def _covered(
    bounds: Sequence[tuple[dict, dict]], sizes: tuple[int, ...]
) -> bool:
    """True when some (index-keyed) core bound pair refutes ``sizes``."""
    for lower, upper in bounds:
        if all(sizes[i] >= k for i, k in lower.items()) and all(
            sizes[i] <= k for i, k in upper.items()
        ):
            return True
    return False


class _ShardRunner:
    """One engine shard: the portfolio member that actually solves.

    Process mode runs it behind a pipe
    (:func:`repro.exec.worker.shard_entry`); the in-process fallback
    drives the same object directly.  Either way it owns a private
    incremental engine — warm-restored from the payload snapshot when
    possible, cold otherwise — plus the sibling bounds broadcast to it,
    and renders every answer as the scheduler's wire dict.
    """

    def __init__(self, payload: dict):
        self.uid = payload["shard"]
        self.isolated = bool(payload.get("isolated"))
        self.max_conflicts = payload.get("max_conflicts")
        self.max_learned = payload.get("max_learned_clauses")
        self.collect_cores = bool(payload.get("core_guided_sweep", True))
        self.minimize_cores = bool(payload.get("core_minimization", True))
        self.fault_plan = ReproFaultPlan.parse(payload.get("fault_plan"))
        system: CHCSystem = payload["system"]
        sorts = sorted(system.adts.sorts, key=lambda s: s.name)
        functions = sorted(
            system.adts.signature.functions.values(), key=lambda f: f.name
        )
        predicates = sorted(
            system.predicates.values(), key=lambda p: p.name
        )
        self.stats = FinderStats(
            incremental=True,
            sat_backend=payload.get("sat_backend", "python"),
        )
        engine = None
        snap = payload.get("snapshot")
        if snap is not None:
            try:
                engine = _IncrementalEngine.restore(snap)
                self.stats.engine_shared = True
            except Exception:
                engine = None  # stale or foreign snapshot: start cold
        if engine is None:
            engine = _IncrementalEngine(
                sorts,
                functions,
                predicates,
                symmetry_breaking=bool(
                    payload.get("symmetry_breaking", True)
                ),
                lbd_retention=bool(payload.get("lbd_retention", True)),
                sat_backend=payload.get("sat_backend", "python"),
            )
        self.engine = engine
        # a restored engine's signature objects are value-equal copies
        # of the payload's; key size dicts by the engine's own
        self.sorts = list(engine.sorts)
        self._sort_pos = {s: i for i, s in enumerate(self.sorts)}
        counter = itertools.count()
        self.ctx = engine.register(
            [flatten_clause(cl, counter) for cl in system.clauses]
        )
        #: index-keyed bounds broadcast from sibling shards; checked
        #: before solving a dispatched vector — a hit is a shard-side
        #: prune, no solver call
        self.foreign_bounds: list[tuple[dict, dict]] = []
        # a respawned shard replays the bounds accumulated before its
        # predecessor died (the scheduler puts them in the payload)
        self.adopt_bounds(payload.get("bounds") or ())
        self._start = time.monotonic()
        self._base_added = engine.total_added
        self._base_learned = engine.total_learned
        self._base_glue = engine.total_glue

    def adopt_bounds(
        self, bounds: Sequence[tuple[dict, dict]]
    ) -> None:
        """Fold broadcast (index-keyed) bounds from sibling shards."""
        self.foreign_bounds.extend(
            (dict(lower), dict(upper)) for lower, upper in bounds
        )

    def _index_bounds(
        self, bounds: tuple[dict, dict]
    ) -> tuple[dict, dict]:
        """Sort-keyed engine bounds → index-keyed wire bounds."""
        lower, upper = bounds
        pos = self._sort_pos
        return (
            {pos[s]: k for s, k in lower.items()},
            {pos[s]: k for s, k in upper.items()},
        )

    def solve_vector(
        self,
        seq: int,
        sizes_t: tuple[int, ...],
        attempt: int,
        deadline: Optional[float],
    ) -> dict:
        """Solve (or prune) one dispatched vector; returns the wire
        result dict — outcome, fresh core bounds, cumulative stats."""
        if self.isolated:
            # deterministic fault injection, keyed like supervised
            # tasks: the integer key is the vector sequence number
            self.fault_plan.fire(
                f"shard{self.uid}",
                seq,
                attempt,
                isolated=True,
                timeout=None,
                mem_limit_mb=None,
            )
        result: dict = {"kind": "result", "seq": seq, "shard": self.uid}
        sizes = dict(zip(self.sorts, sizes_t))
        if self.collect_cores and self.engine.vector_covered(
            self.ctx, sizes
        ):
            # own core: the scheduler's frontier filter just had not
            # caught up with this shard's latest refutation
            self.stats.vectors_skipped += 1
            result["outcome"] = "skipped"
            result["foreign"] = False
        elif self.collect_cores and _covered(self.foreign_bounds, sizes_t):
            self.stats.vectors_skipped += 1
            result["outcome"] = "skipped"
            result["foreign"] = True
        else:
            self.stats.attempts += 1
            pre_cores = len(self.ctx.refuted_cores)
            outcome = self.engine.try_vector(
                self.ctx,
                sizes,
                self.stats,
                deadline=deadline,
                max_conflicts=self.max_conflicts,
                max_learned_clauses=self.max_learned,
                collect_cores=self.collect_cores,
                minimize_cores=self.minimize_cores,
            )
            if outcome.model is not None:
                result["outcome"] = "sat"
                result["model"] = outcome.model
                self.stats.model_size = outcome.model.size()
            elif outcome.refuted:
                result["outcome"] = "refuted"
            else:
                result["outcome"] = "exhausted"
            fresh = self.ctx.refuted_cores[pre_cores:]
            if fresh:
                result["cores"] = [self._index_bounds(b) for b in fresh]
            if self.ctx.hopeless:
                result["hopeless"] = True
        # cumulative mirror of ModelFinder.search's finish() fields, so
        # the scheduler's newest-stats-wins fold stays additive-correct
        self.stats.elapsed = time.monotonic() - self._start
        self.stats.clauses_encoded = (
            self.engine.total_added - self._base_added
        )
        self.stats.learned_total = (
            self.engine.total_learned - self._base_learned
        )
        self.stats.learned_glue = (
            self.engine.total_glue - self._base_glue
        )
        self.stats.learned_kept = self.engine.solver.learned_count()
        result["stats"] = self.stats.as_dict()
        return result


class _ProcessShard:
    """Scheduler-side handle on one shard subprocess."""

    def __init__(self, ctx, payload: dict):
        from repro.exec import worker as exec_worker

        self.uid = payload["shard"]
        parent, child = ctx.Pipe(duplex=True)
        self.conn = parent
        self.proc = ctx.Process(
            target=exec_worker.shard_entry,
            args=(child, payload),
            daemon=True,
        )
        self.proc.start()
        child.close()
        #: seq -> (sizes tuple, attempt) for every unanswered dispatch
        self.inflight: dict[int, tuple[tuple[int, ...], int]] = {}
        self.dead = False

    @property
    def depth(self) -> int:
        return len(self.inflight)

    def _send(self, msg: dict) -> None:
        try:
            self.conn.send(msg)
        except (OSError, ValueError):
            self.dead = True

    def dispatch(
        self,
        seq: int,
        sizes_t: tuple[int, ...],
        attempt: int,
        deadline: Optional[float],
    ) -> None:
        self.inflight[seq] = (sizes_t, attempt)
        self._send(
            {
                "kind": "vector",
                "seq": seq,
                "sizes": list(sizes_t),
                "attempt": attempt,
                "deadline": deadline,
            }
        )

    def broadcast(self, bounds: list) -> None:
        self._send({"kind": "core", "bounds": bounds})

    def poll(self) -> list[dict]:
        """Drain available messages; EOF marks the shard dead (its
        buffered answers are still delivered first — pipe semantics)."""
        out: list[dict] = []
        if self.dead:
            return out
        try:
            while self.conn.poll(0):
                msg = self.conn.recv()
                if msg.get("kind") == "result":
                    self.inflight.pop(msg.get("seq"), None)
                out.append(msg)
        except (EOFError, OSError):
            self.dead = True
        return out

    def stop(self) -> None:
        self._send({"kind": "stop"})

    def kill(self) -> None:
        from repro.exec.supervisor import _kill

        try:
            self.conn.close()
        except OSError:
            pass
        _kill(self.proc)


class _SweepState:
    """Sweep-order bookkeeping shared by both portfolio modes.

    Owns the frontier iterator, the master (index-keyed) bound list,
    per-sequence outcomes, and the strictly-in-order commit pointer
    that makes the parallel sweep's verdict match the sequential one.
    """

    def __init__(
        self,
        sorts: list,
        max_total: int,
        min_total: int,
        stats: FinderStats,
        core_guided: bool,
    ):
        self._iter = size_vectors(sorts, max_total, min_total)
        self._sorts = sorts
        self.stats = stats
        self.core_guided = core_guided
        self.bounds: list[tuple[dict, dict]] = []
        self.next_seq = 0
        self.next_commit = 0
        self.outcomes: dict[int, dict] = {}
        self.exhausted_frontier = False
        self.sat_seq: Optional[int] = None
        self.winner = None  # FiniteModel of the committed winning vector
        self.hopeless = False
        self.complete = True

    def next_vector(self) -> Optional[tuple[int, tuple[int, ...]]]:
        """Next uncovered frontier vector with its sequence number.

        ``None`` once the frontier is exhausted — or while a SAT answer
        is pending commit: vectors above it can never win, so dispatch
        stops (in-flight lower vectors still resolve normally).
        """
        if self.sat_seq is not None:
            return None
        while True:
            sizes = next(self._iter, None)
            if sizes is None:
                self.exhausted_frontier = True
                return None
            sizes_t = tuple(sizes[s] for s in self._sorts)
            if self.core_guided and _covered(self.bounds, sizes_t):
                # a broadcast core already refutes this vector: pruned
                # before dispatch, exactly the sequential skip
                self.stats.vectors_skipped += 1
                continue
            seq = self.next_seq
            self.next_seq += 1
            return seq, sizes_t

    def add_bounds(
        self, bounds: Sequence[tuple[dict, dict]]
    ) -> list[tuple[dict, dict]]:
        """Fold shard-reported bounds; returns the genuinely new ones."""
        fresh = []
        for bound in bounds:
            pair = (dict(bound[0]), dict(bound[1]))
            if pair not in self.bounds:
                self.bounds.append(pair)
                fresh.append(pair)
        return fresh

    def resolve(self, seq: int, outcome: dict) -> None:
        """Record a shard answer (or write-off) for one sequence."""
        if seq < self.next_commit or seq in self.outcomes:
            return  # late duplicate (e.g. answered then redispatched)
        self.outcomes[seq] = outcome
        if outcome.get("hopeless"):
            # size-independent refutation: definitive for the whole
            # sweep regardless of order, same as the sequential loop
            self.hopeless = True
        if outcome["outcome"] == "sat" and (
            self.sat_seq is None or seq < self.sat_seq
        ):
            self.sat_seq = seq

    def commit(self) -> bool:
        """Advance the in-order pointer; True once a winner committed."""
        while self.next_commit in self.outcomes:
            outcome = self.outcomes.pop(self.next_commit)
            self.next_commit += 1
            kind = outcome["outcome"]
            if kind == "sat":
                self.winner = outcome["model"]
                return True
            if kind == "exhausted":
                self.complete = False
            # refuted / skipped just advance the pointer
        return False


class SweepScheduler:
    """Drives one speculative sweep over a portfolio of shards."""

    def __init__(self, finder: "ParallelModelFinder", mode: str):
        self.finder = finder
        self.mode = mode
        self.stats = FinderStats(
            incremental=True,
            sat_backend=finder.sat_backend,
            sweep_shards=finder.sweep_shards,
        )
        #: newest cumulative FinderStats dict per shard uid — survives
        #: the shard's death, folded additively at the end
        self.shard_stats: dict[int, dict] = {}
        self.state: Optional[_SweepState] = None

    # -- shared result handling -------------------------------------------
    def _consume(self, msg: dict, siblings_fn) -> None:
        """Fold one shard message into the sweep state.

        ``siblings_fn(origin_uid)`` yields the live sibling receivers a
        fresh core should be broadcast to (mode-specific transport).
        """
        kind = msg.get("kind")
        if kind == "done":
            metrics = obs_runtime.METRICS
            if metrics is not None and msg.get("obs_metrics"):
                metrics.merge(msg["obs_metrics"])
            spans = msg.get("obs_spans")
            if spans and obs_runtime.TRACER is not None:
                obs_runtime.TRACER.absorb(spans)
            return
        if kind != "result":
            return
        state = self.state
        uid = msg.get("shard")
        if msg.get("stats"):
            self.shard_stats[uid] = msg["stats"]
        spans = msg.get("obs_spans")
        if spans and obs_runtime.TRACER is not None:
            obs_runtime.TRACER.absorb(spans)
        if msg.get("outcome") == "skipped" and msg.get("foreign"):
            # a sibling's broadcast core pruned this shard's queue —
            # the cross-process vectors_skipped the tentpole exists for
            self.stats.speculative_pruned += 1
        fresh = state.add_bounds(msg.get("cores") or ())
        if fresh:
            receivers = list(siblings_fn(uid))
            for receiver in receivers:
                receiver(fresh)
            if receivers:
                self.stats.cores_broadcast += len(fresh)
        state.resolve(
            msg["seq"],
            {
                "outcome": msg["outcome"],
                "model": msg.get("model"),
                "hopeless": msg.get("hopeless", False),
            },
        )

    def _finalize(
        self, start: float, model, complete: bool
    ) -> FinderResult:
        stats = self.stats
        for shard_dict in self.shard_stats.values():
            try:
                stats.merge(FinderStats(**shard_dict))
            except TypeError:
                pass  # foreign/stale stats dict: drop, never crash
        # shard elapsed times overlap; wall clock is the honest figure
        stats.elapsed = time.monotonic() - start
        stats.sweep_shards = self.finder.sweep_shards
        if self.state is not None and self.state.hopeless:
            stats.hopeless = True
        if model is not None:
            stats.model_size = model.size()
        metrics = obs_runtime.METRICS
        if metrics is not None:
            metrics.inc(
                "finder.speculative.vectors", stats.vectors_speculated
            )
            metrics.inc(
                "finder.speculative.cores_broadcast", stats.cores_broadcast
            )
            metrics.inc(
                "finder.speculative.pruned", stats.speculative_pruned
            )
            metrics.inc(
                "finder.speculative.shard_restarts", stats.shard_restarts
            )
        return FinderResult(
            model, stats, complete=model is not None or complete
        )

    # -- process portfolio -------------------------------------------------
    def run_process(self, min_total: int) -> FinderResult:
        finder = self.finder
        from repro.exec.supervisor import _mp_context

        start = time.monotonic()
        state = _SweepState(
            finder.sorts,
            finder.max_total_size,
            min_total,
            self.stats,
            finder.core_guided_sweep,
        )
        self.state = state
        ctx = _mp_context()
        uid_counter = itertools.count()
        #: vectors orphaned by a shard death, sorted by seq
        requeue: list[tuple[int, tuple[int, ...], int]] = []

        def spawn() -> _ProcessShard:
            uid = next(uid_counter)
            payload = finder._payload(uid, isolated=True)
            payload["bounds"] = [
                (dict(lo), dict(hi)) for lo, hi in state.bounds
            ]
            return _ProcessShard(ctx, payload)

        shards: list[Optional[_ProcessShard]] = []
        restarts = [0] * finder.sweep_shards
        decided = False  # winner or hopeless: kill + discard speculation
        try:
            shards = [spawn() for _ in range(finder.sweep_shards)]

            def live() -> list[_ProcessShard]:
                return [s for s in shards if s is not None and not s.dead]

            def siblings(origin_uid: int):
                for shard in live():
                    if shard.uid != origin_uid:
                        yield shard.broadcast

            while True:
                if (
                    finder.deadline is not None
                    and time.monotonic() > finder.deadline
                ):
                    self.stats.deadline_hit = True
                    state.complete = False
                    break
                # bury dead shards: respawn (bounds replayed via the
                # payload) and redispatch their unanswered vectors
                for slot, shard in enumerate(shards):
                    if shard is None or not shard.dead:
                        continue
                    orphans = sorted(shard.inflight.items())
                    shard.kill()
                    shards[slot] = None
                    if restarts[slot] < MAX_VECTOR_ATTEMPTS:
                        restarts[slot] += 1
                        self.stats.shard_restarts += 1
                        shards[slot] = spawn()
                    for seq, (sizes_t, attempt) in orphans:
                        if attempt + 1 > MAX_VECTOR_ATTEMPTS:
                            # this vector keeps killing shards: an
                            # honest unknown, never a wrong verdict
                            state.resolve(seq, {"outcome": "exhausted"})
                        else:
                            requeue.append((seq, sizes_t, attempt + 1))
                    requeue.sort()
                alive = live()
                if not alive:
                    # every slot abandoned: resolve what remains as
                    # exhausted and let the commit pointer decide
                    for seq, _sizes, _attempt in requeue:
                        state.resolve(seq, {"outcome": "exhausted"})
                    requeue.clear()
                    if state.commit():
                        decided = True
                    else:
                        state.complete = False
                    break
                # dispatch: redispatch orphans first, then the frontier
                for shard in alive:
                    while shard.depth < SHARD_QUEUE_DEPTH:
                        if requeue:
                            seq, sizes_t, attempt = requeue.pop(0)
                            if (
                                state.sat_seq is not None
                                and seq > state.sat_seq
                            ):
                                continue  # can never win: drop
                        else:
                            nxt = state.next_vector()
                            if nxt is None:
                                break
                            seq, sizes_t = nxt
                            attempt = 1
                        if any(s.depth for s in alive):
                            self.stats.vectors_speculated += 1
                        shard.dispatch(
                            seq, sizes_t, attempt, finder.deadline
                        )
                # receive
                conns = [s.conn for s in live()]
                if conns:
                    mp_connection.wait(conns, timeout=0.05)
                for shard in live():
                    for msg in shard.poll():
                        self._consume(msg, siblings)
                if state.commit() or state.hopeless:
                    decided = True
                    break
                inflight = sum(s.depth for s in live())
                if (
                    inflight == 0
                    and not requeue
                    and not any(s is not None and s.dead for s in shards)
                    and (state.exhausted_frontier or state.sat_seq is not None)
                ):
                    if state.commit():
                        decided = True
                    break
        finally:
            for shard in shards:
                if shard is None:
                    continue
                if decided or shard.dead:
                    # cancel outstanding speculation: kill + discard
                    shard.kill()
                else:
                    shard.stop()
            stop_deadline = time.monotonic() + 2.0
            for shard in shards:
                if shard is None or shard.dead or decided:
                    continue
                try:
                    while shard.conn.poll(
                        max(stop_deadline - time.monotonic(), 0)
                    ):
                        msg = shard.conn.recv()
                        self._consume(
                            msg, lambda _uid: ()
                        )
                        if msg.get("kind") == "done":
                            break
                except (EOFError, OSError):
                    pass
                shard.kill()
        complete = (
            state.winner is not None
            or state.hopeless
            or (
                state.complete
                and state.exhausted_frontier
                and not self.stats.deadline_hit
            )
        )
        return self._finalize(start, state.winner, complete)

    # -- in-process portfolio ----------------------------------------------
    def run_inprocess(self, min_total: int) -> FinderResult:
        finder = self.finder
        start = time.monotonic()
        state = _SweepState(
            finder.sorts,
            finder.max_total_size,
            min_total,
            self.stats,
            finder.core_guided_sweep,
        )
        self.state = state
        runners = [
            _ShardRunner(finder._payload(uid, isolated=False))
            for uid in range(finder.sweep_shards)
        ]
        queues: list[list[tuple[int, tuple[int, ...]]]] = [
            [] for _ in runners
        ]

        def siblings(origin_uid: int):
            for runner in runners:
                if runner.uid != origin_uid:
                    yield runner.adopt_bounds

        decided = False
        while not decided:
            if (
                finder.deadline is not None
                and time.monotonic() > finder.deadline
            ):
                self.stats.deadline_hit = True
                state.complete = False
                break
            for queue in queues:
                while len(queue) < SHARD_QUEUE_DEPTH:
                    nxt = state.next_vector()
                    if nxt is None:
                        break
                    if any(queues):
                        self.stats.vectors_speculated += 1
                    queue.append(nxt)
            if not any(queues):
                state.commit()
                break
            # round-robin: each runner solves one whole vector per
            # turn, so sibling cores land between a runner's queued
            # vectors exactly as they would across processes
            for runner, queue in zip(runners, queues):
                if not queue:
                    continue
                seq, sizes_t = queue.pop(0)
                msg = runner.solve_vector(seq, sizes_t, 1, finder.deadline)
                self._consume(msg, siblings)
                if state.commit() or state.hopeless:
                    decided = True
                    break
        complete = (
            state.winner is not None
            or state.hopeless
            or (
                state.complete
                and state.exhausted_frontier
                and not self.stats.deadline_hit
            )
        )
        return self._finalize(start, state.winner, complete)


class ParallelModelFinder:
    """Drop-in :class:`~repro.mace.finder.ModelFinder` running the size
    sweep as a speculative shard portfolio (see the module docstring).

    ``mode`` is ``"process"`` (subprocess shards, fork-preferred),
    ``"inprocess"`` (the interleaved fallback portfolio) or ``"auto"``
    (process shards unless this process is daemonic — e.g. inside an
    isolated supervised worker — which may not have children).
    ``snapshot`` seeds every shard with one serialized engine state
    (:meth:`~repro.mace.pool.EnginePool.snapshot_for`).  The search
    contract — signature, :class:`FinderResult`, ``complete``
    semantics — matches :meth:`ModelFinder.search`, so
    :mod:`repro.core.ringen` drives either interchangeably.
    """

    def __init__(
        self,
        system: CHCSystem,
        *,
        sweep_shards: int = 2,
        max_total_size: int = 12,
        max_conflicts_per_size: Optional[int] = 200_000,
        symmetry_breaking: bool = True,
        deadline: Optional[float] = None,
        min_total_size: int = 0,
        max_learned_clauses: Optional[int] = 20_000,
        core_guided_sweep: bool = True,
        lbd_retention: bool = True,
        sat_backend: str = "python",
        core_minimization: bool = True,
        snapshot: Optional[dict] = None,
        mode: str = "auto",
        fault_plan: Optional[ReproFaultPlan] = None,
    ):
        if sweep_shards < 1:
            raise FinderError("sweep_shards must be >= 1")
        if mode not in ("auto", "process", "inprocess"):
            raise FinderError(f"unknown sweep mode {mode!r}")
        self.system = system
        self.sweep_shards = sweep_shards
        self.max_total_size = max_total_size
        self.max_conflicts = max_conflicts_per_size
        self.symmetry_breaking = symmetry_breaking
        self.deadline = deadline
        self.min_total_size = min_total_size
        self.max_learned_clauses = max_learned_clauses
        self.core_guided_sweep = core_guided_sweep
        self.lbd_retention = lbd_retention
        self.sat_backend = sat_backend
        self.core_minimization = core_minimization
        self.snapshot = snapshot
        self.mode = mode
        self.fault_plan = fault_plan
        self.sorts = sorted(system.adts.sorts, key=lambda s: s.name)

    def _payload(self, uid: int, *, isolated: bool) -> dict:
        plan = self.fault_plan
        if plan is None:
            plan = ReproFaultPlan.from_env()
        return {
            "shard": uid,
            "system": self.system,
            "snapshot": self.snapshot,
            "symmetry_breaking": self.symmetry_breaking,
            "lbd_retention": self.lbd_retention,
            "sat_backend": self.sat_backend,
            "max_conflicts": self.max_conflicts,
            "max_learned_clauses": self.max_learned_clauses,
            "core_guided_sweep": self.core_guided_sweep,
            "core_minimization": self.core_minimization,
            "isolated": isolated,
            "fault_plan": plan.encode() if plan else None,
            "obs": {
                "trace": obs_runtime.TRACER is not None,
                "metrics": obs_runtime.METRICS is not None,
            },
        }

    def search(
        self,
        *,
        min_total_size: Optional[int] = None,
        deadline: object = _UNSET,
    ) -> FinderResult:
        """Run one speculative sweep; see :meth:`ModelFinder.search`
        for the deadline-replacement and ``complete`` semantics.  Each
        call spawns a fresh shard portfolio and tears it down (the rare
        Herbrand-retry resumption re-spawns; shards re-derive skips
        from the refutation bounds, which are cheap relative to the
        solves the retry still has to do)."""
        if deadline is not _UNSET:
            self.deadline = deadline  # type: ignore[assignment]
        min_total = (
            self.min_total_size
            if min_total_size is None
            else min_total_size
        )
        mode = self.mode
        if mode == "auto":
            mode = (
                "inprocess"
                if multiprocessing.current_process().daemon
                else "process"
            )
        scheduler = SweepScheduler(self, mode)
        obs_runtime.watch_finder_stats(scheduler.stats)
        if mode == "process":
            return scheduler.run_process(min_total)
        return scheduler.run_inprocess(min_total)
