"""MACE-style finite model finder over the in-repo CDCL SAT solver."""

from repro.mace.finder import (
    ENGINE_SNAPSHOT_VERSION,
    EngineSnapshotError,
    FinderError,
    FinderResult,
    FinderStats,
    FlatAtom,
    FlatClause,
    ModelFinder,
    engine_fingerprint,
    find_model,
    flatten_clause,
    size_vectors,
)
from repro.mace.model import FiniteModel, ModelError, validate_model
from repro.mace.parallel import ParallelModelFinder, SweepScheduler
from repro.mace.pool import EnginePool, PoolStats, signature_fingerprint

__all__ = [
    "ENGINE_SNAPSHOT_VERSION",
    "EnginePool",
    "EngineSnapshotError",
    "PoolStats",
    "engine_fingerprint",
    "signature_fingerprint",
    "FinderError",
    "FinderResult",
    "FinderStats",
    "FiniteModel",
    "FlatAtom",
    "FlatClause",
    "ModelError",
    "ModelFinder",
    "ParallelModelFinder",
    "SweepScheduler",
    "find_model",
    "flatten_clause",
    "size_vectors",
    "validate_model",
]
