"""The engine↔solver boundary: the :class:`SatBackend` protocol.

The finite model finder (:mod:`repro.mace.finder`), the campaign engine
pool (:mod:`repro.mace.pool`) and the selector machinery
(:mod:`repro.sat.cnf`) drive a SAT solver through exactly the
incremental contract captured here — variable/clause growth between
solve calls, assumption-based solving with per-call conflict and
wall-clock budgets, tri-state answers, failed-assumption cores with
deletion-based minimization, level-0 queries, and database hygiene
(``simplify`` / ``reduce_learned``).  Everything above the SAT layer
depends only on this protocol, never on a concrete solver class, so
engines can be swapped per :class:`~repro.core.ringen.RInGenConfig`:

* ``"python"`` — the in-repo pure-Python :class:`~repro.sat.solver.
  CDCLSolver` (always available; the reference semantics),
* ``"pysat"`` — the optional :class:`~repro.sat.pysat_backend.
  PySATBackend` adapter over `python-sat`'s Glucose (MiniSat lineage;
  a speed-ceiling measurement for the pure-Python hot path).

The protocol is *structural* (:class:`typing.Protocol`): a backend
neither imports nor inherits anything from here — it just implements
the methods.  :func:`make_backend` is the one place backend names are
resolved; unavailable optional backends fail with a clean
:class:`BackendUnavailableError` instead of an ImportError traceback.

Contract fine print (what the model finder actually relies on):

* ``solve`` returns ``True`` / ``False`` / ``None`` (budget or deadline
  exhausted — indeterminate, never to be read as unsat);
* after ``False``, ``core()`` returns a subset of that call's
  assumptions whose conjunction with the database is unsat, and
  ``minimize_core()`` shrinks it further by bounded re-solving;
* after ``True``, ``model()`` returns the assignment and must refuse
  (raise) in any other state rather than serve stale values;
* ``fixed(lit)`` reports literals entailed by the database alone
  (level 0); backends that cannot answer may return ``None``
  (the finder only loses an early-exit, never soundness);
* ``simplify`` / ``reduce_learned`` are hints: a backend managing its
  own database (an external solver) may treat them as no-ops;
* ``stats`` exposes the shared :class:`~repro.sat.solver.SatStats`
  counter block; ``clauses_added`` and ``solve_calls`` must be exact
  (the incremental engine's reuse accounting is built on them), the
  search counters may be best-effort.
"""

from __future__ import annotations

from typing import (
    Iterable,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from repro.sat.solver import SatStats


class BackendUnavailableError(RuntimeError):
    """A requested SAT backend's optional dependency is not installed.

    Raised by :func:`make_backend` (and by the optional backends'
    constructors) with an actionable message; callers that offer
    backend selection (the CLI, the harness) surface the message
    instead of an ImportError traceback.
    """


@runtime_checkable
class SatBackend(Protocol):
    """Structural interface every SAT engine plugged under the model
    finder must satisfy.  See the module docstring for the contract."""

    num_vars: int
    stats: SatStats

    def new_var(self) -> int:
        ...

    def new_vars(self, count: int) -> list[int]:
        ...

    def add_clause(self, literals: Iterable[int]) -> bool:
        ...

    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        max_conflicts: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        ...

    def core(self) -> list[int]:
        ...

    def minimize_core(
        self,
        *,
        max_conflicts_per_probe: int = 1_000,
        deadline: Optional[float] = None,
        candidates: Optional[Sequence[int]] = None,
    ) -> list[int]:
        ...

    def model(self) -> dict[int, bool]:
        ...

    def fixed(self, lit: int) -> Optional[bool]:
        ...

    def simplify(self) -> int:
        ...

    def reduce_learned(self, keep: int) -> int:
        ...

    def clause_count(self) -> int:
        ...

    def learned_count(self) -> int:
        ...

    # snapshot capability (optional in spirit: every backend answers
    # supports_snapshot(), and snapshot() may be degraded — the PySAT
    # adapter round-trips only its clause database, dropping the C
    # solver's warm metadata; see restore_backend for the inverse)
    def supports_snapshot(self) -> bool:
        ...

    def snapshot(self) -> dict:
        ...


#: the backends :func:`make_backend` resolves, in presentation order;
#: ``"python"`` is the always-available fallback
BACKEND_NAMES = ("python", "pysat")


def backend_available(name: str) -> bool:
    """Whether ``name`` can actually be constructed in this process."""
    if name == "python":
        return True
    if name == "pysat":
        from repro.sat.pysat_backend import pysat_available

        return pysat_available()
    return False


def available_backends() -> list[str]:
    """The constructible backend names, pure Python always first."""
    return [name for name in BACKEND_NAMES if backend_available(name)]


def make_backend(
    name: str, *, lbd_retention: bool = True
) -> SatBackend:
    """Construct the named backend.

    ``lbd_retention`` selects the pure-Python solver's learned-clause
    GC policy (LBD tiers vs. legacy shortest-first); external backends
    follow their own built-in discipline (Glucose *is* the LBD
    lineage) and accept the flag for interface uniformity.

    Raises :class:`BackendUnavailableError` for a known backend whose
    dependency is missing and :class:`ValueError` for an unknown name.
    """
    if name == "python":
        from repro.sat.solver import CDCLSolver

        return CDCLSolver(lbd_retention=lbd_retention)
    if name == "pysat":
        from repro.sat.pysat_backend import PySATBackend

        return PySATBackend(lbd_retention=lbd_retention)
    raise ValueError(
        f"unknown SAT backend {name!r} (known: {', '.join(BACKEND_NAMES)})"
    )


def restore_backend(snap: dict) -> SatBackend:
    """Rebuild a backend from a ``snapshot()`` dict, by ``backend`` name.

    The inverse of the protocol's snapshot capability: dispatches on the
    snapshot's own ``backend`` field (each backend validates its
    ``schema``/``version`` header itself).  Restoring a ``"pysat"``
    snapshot without `python-sat` installed raises
    :class:`BackendUnavailableError`; an unknown backend name raises
    :class:`ValueError` — callers holding possibly-foreign snapshots
    (the disk warm cache) treat any exception as "fall back cold".
    """
    if not isinstance(snap, dict):
        raise ValueError("not a solver snapshot")
    name = snap.get("backend")
    if name == "python":
        from repro.sat.solver import CDCLSolver

        return CDCLSolver.restore(snap)
    if name == "pysat":
        from repro.sat.pysat_backend import PySATBackend

        return PySATBackend.restore(snap)
    raise ValueError(
        f"unknown SAT backend {name!r} in snapshot "
        f"(known: {', '.join(BACKEND_NAMES)})"
    )
