"""A CDCL SAT solver.

The finite model finder (:mod:`repro.mace`) reduces "does this EUF clause
set have a model of domain size k?" to propositional satisfiability, in the
style of MACE/Paradox — the same family of backends the paper runs behind
RInGen.  This module implements the required SAT engine from scratch:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style activity decision heuristic with phase saving,
* Luby restarts and learned-clause garbage collection.

Literals are encoded as nonzero integers (DIMACS convention): variable
``v`` appears as ``+v`` / ``-v``.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

UNASSIGNED = 0
TRUE_VAL = 1
FALSE_VAL = -1


class SatError(ValueError):
    """Raised on malformed CNF input (zero literals, unknown variables)."""


@dataclass
class SatStats:
    """Counters reported by :meth:`CDCLSolver.solve`."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned: int = 0


def _luby(i: int) -> int:
    """The Luby restart sequence 1 1 2 1 1 2 4 ... (1-indexed)."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class CDCLSolver:
    """Conflict-driven clause learning SAT solver."""

    def __init__(self, num_vars: int = 0):
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self.learned_clauses: list[list[int]] = []
        self.stats = SatStats()
        self._assign: list[int] = [UNASSIGNED]
        self._level: list[int] = [0]
        self._reason: list[Optional[list[int]]] = [None]
        self._phase: list[bool] = [False]
        self._activity: list[float] = [0.0]
        self._watches: dict[int, list[list[int]]] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._queue_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._ok = True
        if num_vars:
            self.new_vars(num_vars)

    # -- variable / clause management -------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        self._assign.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(False)
        self._activity.append(0.0)
        self._watches[self.num_vars] = []
        self._watches[-self.num_vars] = []
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat."""
        seen: set[int] = set()
        clause: list[int] = []
        for lit in literals:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            var = abs(lit)
            if var > self.num_vars:
                raise SatError(f"unknown variable {var}")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
        if not self._ok:
            return False
        if not clause:
            self._ok = False
            return False
        # remove already-falsified literals at level 0, keep satisfied clauses
        if any(self._value(l) == TRUE_VAL and self._level[abs(l)] == 0
               for l in clause):
            return True
        clause = [
            l
            for l in clause
            if not (
                self._value(l) == FALSE_VAL and self._level[abs(l)] == 0
            )
        ]
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        self.clauses.append(clause)
        self._watch(clause)
        return True

    def _watch(self, clause: list[int]) -> None:
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    # -- assignment helpers ------------------------------------------------
    def _value(self, lit: int) -> int:
        val = self._assign[abs(lit)]
        if val == UNASSIGNED:
            return UNASSIGNED
        return val if lit > 0 else -val

    def _enqueue(self, lit: int, reason: Optional[list[int]]) -> bool:
        current = self._value(lit)
        if current == TRUE_VAL:
            return True
        if current == FALSE_VAL:
            return False
        var = abs(lit)
        self._assign[var] = TRUE_VAL if lit > 0 else FALSE_VAL
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[list[int]]:
        """Unit propagation; returns a conflicting clause or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self.stats.propagations += 1
            falsified = -lit
            watchers = self._watches[falsified]
            new_watchers: list[list[int]] = []
            conflict: Optional[list[int]] = None
            for idx, clause in enumerate(watchers):
                if conflict is not None:
                    new_watchers.extend(watchers[idx:])
                    break
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                # clause[1] == falsified now (or clause was restructured)
                first = clause[0]
                if self._value(first) == TRUE_VAL:
                    new_watchers.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != FALSE_VAL:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watches[clause[1]].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                new_watchers.append(clause)
                if not self._enqueue(first, clause):
                    conflict = clause
            self._watches[falsified] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis ---------------------------------------------------
    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP learning; returns (learned clause, backjump level)."""
        learned: list[int] = [0]  # slot 0 holds the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        trail_lit: Optional[int] = None
        reason: Optional[list[int]] = conflict
        index = len(self._trail)
        current_level = len(self._trail_lim)
        while True:
            assert reason is not None
            for q in reason:
                if trail_lit is not None and q == trail_lit:
                    continue  # skip the literal this reason clause asserted
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while True:
                index -= 1
                trail_lit = self._trail[index]
                if seen[abs(trail_lit)]:
                    break
            seen[abs(trail_lit)] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[abs(trail_lit)]
        learned[0] = -trail_lit
        # compute backjump level: max level among learned[1:]
        if len(learned) == 1:
            back_level = 0
        else:
            back_level = max(self._level[abs(q)] for q in learned[1:])
        # move a literal of back_level to slot 1 for watching
        if len(learned) > 1:
            best = max(
                range(1, len(learned)),
                key=lambda i: self._level[abs(learned[i])],
            )
            learned[1], learned[best] = learned[best], learned[1]
        return learned, back_level

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100

    def _decay(self) -> None:
        self._var_inc /= self._var_decay

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._assign[var] = UNASSIGNED
            self._reason[var] = None
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    def _decide(self) -> Optional[int]:
        best_var = 0
        best_act = -1.0
        for var in range(1, self.num_vars + 1):
            if self._assign[var] == UNASSIGNED and self._activity[var] > best_act:
                best_var = var
                best_act = self._activity[var]
        if best_var == 0:
            return None
        return best_var if self._phase[best_var] else -best_var

    # -- main loop -------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        max_conflicts: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        """Solve under assumptions.

        Returns True (sat), False (unsat), or None if ``max_conflicts`` or
        the wall-clock ``deadline`` was exhausted (both are used by the
        model finder's per-size budgets).
        """
        if not self._ok:
            return False
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False
        for lit in assumptions:
            if self._value(lit) == FALSE_VAL:
                return False
            if self._value(lit) == UNASSIGNED:
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                conflict = self._propagate()
                if conflict is not None:
                    self._backtrack(0)
                    return False
        base_level = len(self._trail_lim)
        restart_count = 0
        conflicts_here = 0
        steps = 0
        budget = 100 * _luby(restart_count + 1)
        while True:
            steps += 1
            if deadline is not None and steps % 512 == 0:
                if time.monotonic() > deadline:
                    self._backtrack(0)
                    return None
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                if max_conflicts is not None and self.stats.conflicts > max_conflicts:
                    self._backtrack(0)
                    return None
                if len(self._trail_lim) == base_level:
                    return False
                learned, back_level = self._analyze(conflict)
                self._backtrack(max(back_level, base_level))
                if len(learned) == 1:
                    self._backtrack(base_level)
                    if not self._enqueue(learned[0], None):
                        return False
                else:
                    self.learned_clauses.append(learned)
                    self.stats.learned += 1
                    self._watch(learned)
                    self._enqueue(learned[0], learned)
                self._decay()
                if conflicts_here >= budget:
                    self.stats.restarts += 1
                    restart_count += 1
                    conflicts_here = 0
                    budget = 100 * _luby(restart_count + 1)
                    self._backtrack(base_level)
                continue
            decision = self._decide()
            if decision is None:
                return True
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    def model(self) -> dict[int, bool]:
        """The satisfying assignment after a successful :meth:`solve`."""
        return {
            v: self._assign[v] == TRUE_VAL
            for v in range(1, self.num_vars + 1)
            if self._assign[v] != UNASSIGNED
        }


def solve_cnf(
    clauses: Iterable[Iterable[int]], num_vars: int
) -> Optional[dict[int, bool]]:
    """One-shot convenience API: solve a CNF, return a model or ``None``."""
    solver = CDCLSolver(num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            return None
    result = solver.solve()
    if not result:
        return None
    model = solver.model()
    for v in range(1, num_vars + 1):
        model.setdefault(v, False)
    return model


def brute_force_sat(
    clauses: Sequence[Sequence[int]], num_vars: int
) -> Optional[dict[int, bool]]:
    """Reference solver by exhaustive enumeration (tests only)."""
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(
                assignment[abs(l)] == (l > 0)
                for l in clause
            )
            for clause in clauses
        ):
            return assignment
    return None
