"""A CDCL SAT solver.

The finite model finder (:mod:`repro.mace`) reduces "does this EUF clause
set have a model of domain size k?" to propositional satisfiability, in the
style of MACE/Paradox — the same family of backends the paper runs behind
RInGen.  This module implements the required SAT engine from scratch:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style activity decision heuristic with phase saving,
* Luby restarts and learned-clause garbage collection.

Conflict quality and unsat cores (the model finder's guidance layer):

* every learned clause carries its **LBD** ("literals blocks distance",
  the number of distinct decision levels among its literals — Audemard &
  Simon's glue measure) and a bump/decay **activity**;
  :meth:`CDCLSolver.reduce_learned` retains by LBD tier instead of
  length, keeping *glue* clauses (LBD ≤ 2) unconditionally;
* when :meth:`CDCLSolver.solve` answers ``False`` under assumptions, a
  MiniSat-style final-conflict analysis records the **unsat core** — the
  subset of the assumptions the refutation actually used — retrievable
  via :meth:`CDCLSolver.core`.  Every ``False`` path produces a core,
  including the early conflict while the assumptions themselves are
  being propagated.  The model finder reads cores over its existence
  and clause-group selectors to prune the size sweep.

Literals are encoded as nonzero integers (DIMACS convention): variable
``v`` appears as ``+v`` / ``-v``.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Sequence

UNASSIGNED = 0
TRUE_VAL = 1
FALSE_VAL = -1

#: schema version of :meth:`CDCLSolver.snapshot`; bumped whenever the
#: serialized layout changes incompatibly.  :meth:`CDCLSolver.restore`
#: rejects any other version instead of guessing.
SNAPSHOT_VERSION = 1


class SatError(ValueError):
    """Raised on malformed CNF input (zero literals, unknown variables)."""


@dataclass
class SatStats:
    """Counters reported by :meth:`CDCLSolver.solve`.

    All counters are cumulative over the solver's lifetime; incremental
    callers (the model finder's size sweep) snapshot them between calls
    to attribute work to individual :meth:`CDCLSolver.solve` calls.
    ``clauses_added`` counts every well-formed clause accepted by
    :meth:`CDCLSolver.add_clause` while the solver is still consistent —
    including units that were immediately propagated, tautologies and
    clauses already satisfied at level 0 — so reused-vs-newly-encoded
    clause accounting survives level-0 simplification and the counter
    means the same thing on every accepting return path.
    """

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned: int = 0
    clauses_added: int = 0
    solve_calls: int = 0
    # conflict-quality layer: glue clauses (LBD <= 2) among `learned`,
    # and the number of unsat cores extracted by final-conflict analysis
    glue_learned: int = 0
    cores: int = 0
    # dynamic LBD maintenance: learned clauses whose glue improved when
    # they were reused as reasons (Glucose-style re-computation)
    lbd_updates: int = 0
    # deletion-based core minimization: probe solves issued and
    # assumption literals they removed from cores
    core_probes: int = 0
    core_lits_removed: int = 0


def _luby(i: int) -> int:
    """The Luby restart sequence 1 1 2 1 1 2 4 ... (1-indexed)."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class CDCLSolver:
    """Conflict-driven clause learning SAT solver.

    ``lbd_retention`` selects the learned-clause GC policy of
    :meth:`reduce_learned`: LBD tiers with unconditional glue retention
    (the default, Glucose-style) or the legacy shortest-first policy
    (kept for the ablation benchmark).
    """

    #: learned clauses at or below this LBD are "glue" — they connect
    #: decision levels so tightly that dropping them is never worth it
    GLUE_LBD = 2

    def __init__(self, num_vars: int = 0, *, lbd_retention: bool = True):
        self.num_vars = 0
        self.lbd_retention = lbd_retention
        self.clauses: list[list[int]] = []
        self.learned_clauses: list[list[int]] = []
        self.stats = SatStats()
        self._assign: list[int] = [UNASSIGNED]
        self._level: list[int] = [0]
        self._reason: list[Optional[list[int]]] = [None]
        self._phase: list[bool] = [False]
        self._activity: list[float] = [0.0]
        # watcher lists in one flat array indexed by literal code
        # (2*var for the positive literal, 2*var+1 for the negative):
        # the propagation loop replaces a dict hash per watched literal
        # with two adds and a list index.  Codes 0 and 1 are padding
        # for the nonexistent variable 0.
        self._watches: list[list[list[int]]] = [[], []]
        # VSIDS order heap: binary max-heap on activity with a position
        # index, so decisions cost O(log n) instead of a linear scan
        self._heap: list[int] = []
        self._heap_pos: list[int] = [-1]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._queue_head = 0
        self._var_inc = 1.0
        self._var_decay = 0.95
        # learned-clause metadata, keyed by id() of the clause list
        # (clauses are plain lists shared with the watch lists, so a
        # side table is the only representation that leaves the hot
        # propagation loop untouched); entries are removed whenever the
        # clause is dropped in reduce_learned / simplify
        self._lbd: dict[int, int] = {}
        self._cla_act: dict[int, float] = {}
        self._cla_inc = 1.0
        self._cla_decay = 0.999
        # unsat core of the last solve() call that returned False under
        # assumptions (None while the last answer was not False)
        self._core: Optional[list[int]] = None
        # globally valid unit facts learned while solving under
        # assumptions; pinned at level 0 by the next solve() call so
        # they survive the backtrack that clears assumption levels
        self._pending_units: list[int] = []
        self._ok = True
        # True only while the assignment left by the last solve() call is
        # a complete satisfying model; cleared by add_clause and by any
        # solve() outcome other than True (see model())
        self._model_ready = False
        # wall-clock deadline of the in-flight solve() call, polled
        # coarsely inside _propagate (long propagations at campaign
        # clause volumes must not overshoot the caller's budget)
        self._deadline: Optional[float] = None
        self._deadline_hit = False
        # per-phase wall-clock accounting (observability layer): None
        # means off, and every timed site guards on a cached local so
        # the disabled cost is one load + branch per _propagate/_analyze
        # *call*, never per literal; {"phase": [seconds, calls]} when on
        self._phase_times: Optional[dict[str, list]] = None
        if num_vars:
            self.new_vars(num_vars)

    # -- variable / clause management -------------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        self._assign.append(UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._phase.append(False)
        self._activity.append(0.0)
        self._heap_pos.append(-1)
        self._heap_insert(self.num_vars)
        self._watches.append([])  # code 2v: the positive literal
        self._watches.append([])  # code 2v+1: the negative literal
        return self.num_vars

    # -- VSIDS order heap --------------------------------------------------
    def _heap_swap(self, i: int, j: int) -> None:
        heap, pos = self._heap, self._heap_pos
        heap[i], heap[j] = heap[j], heap[i]
        pos[heap[i]], pos[heap[j]] = i, j

    def _heap_up(self, i: int) -> None:
        heap, act = self._heap, self._activity
        while i > 0:
            parent = (i - 1) >> 1
            if act[heap[i]] <= act[heap[parent]]:
                break
            self._heap_swap(i, parent)
            i = parent

    def _heap_down(self, i: int) -> None:
        heap, act = self._heap, self._activity
        size = len(heap)
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            best = left
            right = left + 1
            if right < size and act[heap[right]] > act[heap[left]]:
                best = right
            if act[heap[best]] <= act[heap[i]]:
                break
            self._heap_swap(i, best)
            i = best

    def _heap_insert(self, var: int) -> None:
        if self._heap_pos[var] != -1:
            return
        self._heap.append(var)
        self._heap_pos[var] = len(self._heap) - 1
        self._heap_up(len(self._heap) - 1)

    def _heap_pop(self) -> int:
        heap = self._heap
        top = heap[0]
        last = heap.pop()
        self._heap_pos[top] = -1
        if heap:
            heap[0] = last
            self._heap_pos[last] = 0
            self._heap_down(0)
        return top

    def new_vars(self, count: int) -> list[int]:
        return [self.new_var() for _ in range(count)]

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially unsat.

        Safe to call between :meth:`solve` calls (incremental use): any
        decision-level assignment left over from a previous answer is
        undone first, so level-0 simplification and unit propagation only
        ever see permanent facts.
        """
        seen: set[int] = set()
        clause: list[int] = []
        tautology = False
        for lit in literals:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            var = abs(lit)
            if var > self.num_vars:
                raise SatError(f"unknown variable {var}")
            if -lit in seen:
                tautology = True
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
        if not self._ok:
            return False
        self._model_ready = False
        if self._trail_lim:
            self._backtrack(0)
        # every accepting path below counts exactly once, tautologies and
        # level-0-satisfied clauses included, so the incremental engine's
        # encoded/reused ratios compare like with like
        self.stats.clauses_added += 1
        if tautology:
            return True
        if not clause:
            self._ok = False
            return False
        # remove already-falsified literals at level 0, keep satisfied clauses
        if any(self._value(l) == TRUE_VAL and self._level[abs(l)] == 0
               for l in clause):
            return True
        clause = [
            l
            for l in clause
            if not (
                self._value(l) == FALSE_VAL and self._level[abs(l)] == 0
            )
        ]
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._ok = False
                return False
            return True
        self.clauses.append(clause)
        self._watch(clause)
        return True

    def _watch(self, clause: list[int]) -> None:
        a, b = clause[0], clause[1]
        self._watches[a + a if a > 0 else 1 - a - a].append(clause)
        self._watches[b + b if b > 0 else 1 - b - b].append(clause)

    # -- assignment helpers ------------------------------------------------
    def _value(self, lit: int) -> int:
        val = self._assign[abs(lit)]
        if val == UNASSIGNED:
            return UNASSIGNED
        return val if lit > 0 else -val

    def _enqueue(self, lit: int, reason: Optional[list[int]]) -> bool:
        current = self._value(lit)
        if current == TRUE_VAL:
            return True
        if current == FALSE_VAL:
            return False
        var = abs(lit)
        self._assign[var] = TRUE_VAL if lit > 0 else FALSE_VAL
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _propagate(self) -> Optional[list[int]]:
        """Unit propagation; returns a conflicting clause or None.

        The hot loop of the solver: literal values are computed inline
        on locally aliased arrays rather than through :meth:`_value`,
        which measurably matters at the model finder's clause volumes.
        """
        assign = self._assign
        watches = self._watches
        trail = self._trail
        deadline = self._deadline
        since_poll = 0
        while self._queue_head < len(trail):
            # the poll runs BEFORE the literal is popped: an aborted
            # call leaves _queue_head on the unprocessed literal, so the
            # next _propagate resumes exactly there and no watch list is
            # ever silently skipped (level-0 entries survive the
            # backtrack in solve(), so a skip would be permanent)
            if deadline is not None:
                since_poll += 1
                if since_poll >= 1024:
                    since_poll = 0
                    if time.monotonic() > deadline:
                        self._deadline_hit = True
                        return None
            lit = trail[self._queue_head]
            self._queue_head += 1
            self.stats.propagations += 1
            falsified = -lit
            # code of the falsified literal: 2*(-lit) when lit < 0,
            # 2*lit+1 when lit > 0 — pure integer arithmetic, no abs()
            fcode = lit + lit + 1 if lit > 0 else -(lit + lit)
            watchers = watches[fcode]
            new_watchers: list[list[int]] = []
            conflict: Optional[list[int]] = None
            for idx, clause in enumerate(watchers):
                if conflict is not None:
                    new_watchers.extend(watchers[idx:])
                    break
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                # clause[1] == falsified now (or clause was restructured)
                first = clause[0]
                val = assign[first] if first > 0 else -assign[-first]
                if val == TRUE_VAL:
                    new_watchers.append(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    oval = assign[other] if other > 0 else -assign[-other]
                    if oval != FALSE_VAL:
                        clause[1], clause[k] = other, clause[1]
                        watches[
                            other + other if other > 0 else 1 - other - other
                        ].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                new_watchers.append(clause)
                if val == FALSE_VAL:
                    conflict = clause
                else:  # first was unassigned: imply it (inlined _enqueue)
                    var = first if first > 0 else -first
                    assign[var] = TRUE_VAL if first > 0 else FALSE_VAL
                    self._level[var] = len(self._trail_lim)
                    self._reason[var] = clause
                    self._phase[var] = first > 0
                    trail.append(first)
            watches[fcode] = new_watchers
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis ---------------------------------------------------
    def _analyze(self, conflict: list[int]) -> tuple[list[int], int, int]:
        """First-UIP learning; returns (learned clause, backjump level, LBD).

        The LBD (glue) of the learned clause — the number of distinct
        decision levels among its literals — is computed here, while the
        levels are still live, and drives :meth:`reduce_learned`'s
        retention tiers.  Learned clauses consulted as reasons during
        the resolution walk get their activity bumped (bump/decay in the
        Glucose style), so retention can break LBD ties by usefulness,
        and — with ``lbd_retention`` on — their LBD *re-computed* from
        the live decision levels (Glucose's dynamic glue: a clause that
        propagates inside fewer levels than at birth is more valuable
        than its birth glue suggests, so :meth:`reduce_learned` should
        rank it by its current glue).  The stored LBD only ever
        improves; with ``lbd_retention`` off the birth LBD is kept
        untouched (the legacy behaviour, for the ablation benchmark).
        """
        learned: list[int] = [0]  # slot 0 holds the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        trail_lit: Optional[int] = None
        reason: Optional[list[int]] = conflict
        index = len(self._trail)
        current_level = len(self._trail_lim)
        cla_act = self._cla_act
        lbd_tbl = self._lbd
        dynamic_lbd = self.lbd_retention
        level = self._level
        while True:
            assert reason is not None
            rid = id(reason)
            if rid in cla_act:
                cla_act[rid] += self._cla_inc
                if cla_act[rid] > 1e20:
                    for cid in cla_act:
                        cla_act[cid] *= 1e-20
                    self._cla_inc *= 1e-20
                if dynamic_lbd:
                    # reuse-time glue: recompute from the current levels
                    # and keep the minimum seen (levels are live here —
                    # this is the only point where reused reasons pass
                    # through with their levels assigned)
                    old_lbd = lbd_tbl.get(rid)
                    if old_lbd is not None and old_lbd > self.GLUE_LBD:
                        new_lbd = len(
                            {
                                level[q] if q > 0 else level[-q]
                                for q in reason
                            }
                        )
                        if new_lbd < old_lbd:
                            lbd_tbl[rid] = new_lbd
                            self.stats.lbd_updates += 1
            for q in reason:
                if trail_lit is not None and q == trail_lit:
                    continue  # skip the literal this reason clause asserted
                var = q if q > 0 else -q
                if not seen[var] and level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if level[var] >= current_level:
                        counter += 1
                    else:
                        learned.append(q)
            while True:
                index -= 1
                trail_lit = self._trail[index]
                tvar = trail_lit if trail_lit > 0 else -trail_lit
                if seen[tvar]:
                    break
            seen[tvar] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[tvar]
        learned[0] = -trail_lit
        # backjump level: max level among learned[1:]; the first literal
        # attaining it moves to slot 1 for watching (one pass does both)
        if len(learned) == 1:
            back_level = 0
        else:
            best = 1
            q = learned[1]
            back_level = level[q] if q > 0 else level[-q]
            for i in range(2, len(learned)):
                q = learned[i]
                q_level = level[q] if q > 0 else level[-q]
                if q_level > back_level:
                    best = i
                    back_level = q_level
            learned[1], learned[best] = learned[best], learned[1]
        lbd = len({level[q] if q > 0 else level[-q] for q in learned})
        return learned, back_level, lbd

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
            # uniform rescaling preserves the heap order
        if self._heap_pos[var] != -1:
            self._heap_up(self._heap_pos[var])

    def _decay(self) -> None:
        self._var_inc /= self._var_decay
        self._cla_inc /= self._cla_decay

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = abs(lit)
            self._assign[var] = UNASSIGNED
            self._reason[var] = None
            self._heap_insert(var)
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    def _decide(self) -> Optional[int]:
        while self._heap:
            var = self._heap_pop()
            if self._assign[var] == UNASSIGNED:
                return var if self._phase[var] else -var
        return None

    # -- main loop -------------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        max_conflicts: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        """Solve under assumptions.

        Returns True (sat), False (unsat), or None if ``max_conflicts`` or
        the wall-clock ``deadline`` was exhausted (both are used by the
        model finder's per-size budgets).  The deadline is checked on
        every conflict and, coarsely, inside unit propagation itself, so
        a single long :meth:`_propagate` run at campaign clause volumes
        cannot overshoot the caller's budget by more than one poll
        interval.  ``max_conflicts`` is a *per call* budget: each call
        measures conflicts relative to its own start, so an incremental
        caller issuing many calls against one solver gives every call the
        same allowance.  Learned clauses, VSIDS activity and saved phases
        all persist across calls, which is what makes assumption-based
        incremental solving pay off.

        A ``False`` answer additionally records the unsat core — the
        subset of ``assumptions`` the refutation used — available from
        :meth:`core` until the next :meth:`solve` call.
        """
        self.stats.solve_calls += 1
        self._model_ready = False
        self._core = None
        self._deadline = deadline
        self._deadline_hit = False
        try:
            outcome = self._solve(assumptions, max_conflicts, deadline)
        finally:
            self._deadline = None
        self._model_ready = outcome is True
        if outcome is False:
            if self._core is None:
                # unsat before any assumption mattered (inconsistent
                # database): the empty core
                self._core = []
            self.stats.cores += 1
        else:
            self._core = None
        return outcome

    def core(self) -> list[int]:
        """The failed-assumption subset of the last unsat :meth:`solve`.

        Only available while the last :meth:`solve` call returned
        ``False``; the returned literals are a subset of that call's
        assumptions whose conjunction with the clause database is
        unsatisfiable (re-assuming exactly the core yields ``False``
        again).  An empty core means the database alone is unsat.
        """
        if self._core is None:
            raise SatError(
                "core() is only available after solve() returned False"
            )
        return list(self._core)

    def minimize_core(
        self,
        *,
        max_conflicts_per_probe: int = 1_000,
        deadline: Optional[float] = None,
        candidates: Optional[Sequence[int]] = None,
    ) -> list[int]:
        """Deletion-based minimization of the last :meth:`core`.

        Re-solves with one core literal deleted at a time (each probe
        bounded by ``max_conflicts_per_probe`` conflicts and the
        optional wall-clock ``deadline``); a probe that still answers
        unsat proves the deleted literal redundant and replaces the
        working core with the probe's own (possibly even smaller) core.
        Inconclusive probes (sat, or budget exhausted) keep the literal
        — the result is always a correct core, minimization is purely
        best-effort within the budget.  On return :meth:`core` serves
        the minimized core, exactly as if the original ``False`` answer
        had produced it; any model a sat probe left behind is discarded.

        ``candidates`` restricts which literals deletion is attempted
        on (others are kept without probing) — callers that only profit
        from dropping *specific* assumptions skip the probes that
        cannot pay off.  The model finder runs this before a refutation
        core becomes a sweep bound, with the size-bound literals as
        candidates: every one dropped widens the band of size vectors
        the core refutes for free, while dropping a clause-group
        selector would not change the stored bounds at all.
        """
        if self._phase_times is None:
            return self._minimize_core(
                max_conflicts_per_probe=max_conflicts_per_probe,
                deadline=deadline,
                candidates=candidates,
            )
        t0 = time.monotonic()
        try:
            return self._minimize_core(
                max_conflicts_per_probe=max_conflicts_per_probe,
                deadline=deadline,
                candidates=candidates,
            )
        finally:
            self._phase_add("minimize", time.monotonic() - t0)

    def _minimize_core(
        self,
        *,
        max_conflicts_per_probe: int,
        deadline: Optional[float],
        candidates: Optional[Sequence[int]],
    ) -> list[int]:
        core = self.core()
        probe_set = (
            None if candidates is None else {l for l in candidates}
        )
        i = 0
        while len(core) > 1 and i < len(core):
            if deadline is not None and time.monotonic() > deadline:
                break
            if probe_set is not None and core[i] not in probe_set:
                i += 1
                continue
            trial = core[:i] + core[i + 1 :]
            self.stats.core_probes += 1
            outcome = self.solve(
                trial,
                max_conflicts=max_conflicts_per_probe,
                deadline=deadline,
            )
            if outcome is False:
                shrunk = set(self._core or ())
                self.stats.core_lits_removed += len(core) - len(shrunk)
                # keep the original order; the probe's core is a subset
                # of ``trial`` so position ``i`` now names a fresh lit
                core = [l for l in core if l in shrunk]
            else:
                i += 1
        # the probes overwrote the solve-state flags; restore the
        # contract of the original False answer with the refined core
        self._model_ready = False
        self._core = list(core)
        return list(core)

    def set_phase_timing(self, enabled: bool) -> None:
        """Switch per-phase wall-clock accounting on (resetting the
        accumulators) or off.  Phases: ``propagate`` and ``analyze``
        from the search loop, ``minimize`` around core minimization —
        note a minimization probe's propagation/analysis time lands in
        *both* its own phases and ``minimize`` (the phases overlap by
        design; see :meth:`phase_times`)."""
        self._phase_times = {} if enabled else None

    def phase_times(self) -> dict[str, tuple[float, int]]:
        """Accumulated ``{phase: (seconds, calls)}`` since timing was
        enabled; empty when timing is off."""
        return {
            name: (cell[0], cell[1])
            for name, cell in (self._phase_times or {}).items()
        }

    def _phase_add(self, name: str, dt: float) -> None:
        cell = self._phase_times.get(name)  # type: ignore[union-attr]
        if cell is None:
            self._phase_times[name] = [dt, 1]  # type: ignore[index]
        else:
            cell[0] += dt
            cell[1] += 1

    def clause_count(self) -> int:
        """Problem clauses currently in the database (learned excluded)."""
        return len(self.clauses)

    def learned_count(self) -> int:
        """Learned clauses currently retained."""
        return len(self.learned_clauses)

    def _analyze_final(
        self, conflict: Iterable[int], include: Optional[int] = None
    ) -> list[int]:
        """Final-conflict analysis: the assumptions a failure rests on.

        Walks the implication graph backwards from the literals of a
        falsified clause (MiniSat's ``analyzeFinal``), collecting the
        trail's reason-free decision literals — at the points this is
        called, every decision level on the trail is an assumption
        level, so those are exactly the assumptions used.  Level-0
        literals are consequences of the database alone and are
        excluded.  ``include`` prepends a literal known to belong to the
        core (the assumption that failed at enqueue time, which never
        made it onto the trail).
        """
        core: list[int] = [] if include is None else [include]
        if not self._trail_lim:
            return core
        seen: set[int] = set()
        for lit in conflict:
            var = abs(lit)
            if self._level[var] > 0:
                seen.add(var)
        limit = self._trail_lim[0]
        for i in range(len(self._trail) - 1, limit - 1, -1):
            lit = self._trail[i]
            var = abs(lit)
            if var not in seen:
                continue
            seen.discard(var)
            reason = self._reason[var]
            if reason is None:
                core.append(lit)
            else:
                for q in reason:
                    qv = abs(q)
                    if qv != var and self._level[qv] > 0:
                        seen.add(qv)
        return core

    def _solve(
        self,
        assumptions: Sequence[int],
        max_conflicts: Optional[int],
        deadline: Optional[float],
    ) -> Optional[bool]:
        call_conflicts_start = self.stats.conflicts
        # cached once per solve call: the disabled-path cost of phase
        # timing is this load plus a branch at each timed site
        pt = self._phase_times
        if not self._ok:
            return False
        self._backtrack(0)
        # units learned under assumptions are implied by the clause
        # database alone (assumptions are never resolved on), so they
        # become permanent level-0 facts here
        for lit in self._pending_units:
            if self._value(lit) == FALSE_VAL:
                self._ok = False
                return False
            self._enqueue(lit, None)
        self._pending_units.clear()
        if pt is None:
            conflict = self._propagate()
        else:
            _t0 = time.monotonic()
            conflict = self._propagate()
            self._phase_add("propagate", time.monotonic() - _t0)
        if conflict is not None:
            self._ok = False
            return False
        if self._deadline_hit:
            self._backtrack(0)
            return None
        for lit in assumptions:
            if self._value(lit) == FALSE_VAL:
                # the assumption is already refuted by the database plus
                # the assumptions enqueued so far: it belongs to the
                # core itself, along with whatever implied its negation
                self._core = self._analyze_final([lit], include=lit)
                return False
            if self._value(lit) == UNASSIGNED:
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                if pt is None:
                    conflict = self._propagate()
                else:
                    _t0 = time.monotonic()
                    conflict = self._propagate()
                    self._phase_add("propagate", time.monotonic() - _t0)
                if conflict is not None:
                    # the early assumption-propagation conflict: analyze
                    # before backtracking wipes the levels
                    self._core = self._analyze_final(conflict)
                    self._backtrack(0)
                    return False
                if self._deadline_hit:
                    self._backtrack(0)
                    return None
        base_level = len(self._trail_lim)
        restart_count = 0
        conflicts_here = 0
        steps = 0
        budget = 100 * _luby(restart_count + 1)
        while True:
            steps += 1
            if deadline is not None and steps % 512 == 0:
                if time.monotonic() > deadline:
                    self._backtrack(0)
                    return None
            if pt is None:
                conflict = self._propagate()
            else:
                _t0 = time.monotonic()
                conflict = self._propagate()
                self._phase_add("propagate", time.monotonic() - _t0)
            if conflict is None and self._deadline_hit:
                # propagation aborted on the wall clock: the queue may be
                # only partially drained, so give up rather than decide
                self._backtrack(0)
                return None
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_here += 1
                # the deadline is polled on every conflict — analysis
                # dwarfs a clock read, and per-conflict granularity keeps
                # overshoot bounded independent of propagation cost
                if deadline is not None and time.monotonic() > deadline:
                    self._backtrack(0)
                    return None
                if (
                    max_conflicts is not None
                    and self.stats.conflicts - call_conflicts_start
                    > max_conflicts
                ):
                    self._backtrack(0)
                    return None
                if len(self._trail_lim) == base_level:
                    # conflict with no decision beyond the assumptions:
                    # the final conflict — its analysis is the core
                    self._core = self._analyze_final(conflict)
                    return False
                if pt is None:
                    learned, back_level, lbd = self._analyze(conflict)
                else:
                    _t0 = time.monotonic()
                    learned, back_level, lbd = self._analyze(conflict)
                    self._phase_add("analyze", time.monotonic() - _t0)
                self._backtrack(max(back_level, base_level))
                if len(learned) == 1:
                    self._backtrack(base_level)
                    if base_level > 0:
                        # keep the fact beyond this call (see solve())
                        self._pending_units.append(learned[0])
                    if not self._enqueue(learned[0], None):
                        # the database-implied unit is false under the
                        # assumptions alone
                        self._core = self._analyze_final([learned[0]])
                        return False
                else:
                    self.learned_clauses.append(learned)
                    self.stats.learned += 1
                    self._lbd[id(learned)] = lbd
                    self._cla_act[id(learned)] = self._cla_inc
                    if lbd <= self.GLUE_LBD:
                        self.stats.glue_learned += 1
                    self._watch(learned)
                    self._enqueue(learned[0], learned)
                self._decay()
                if conflicts_here >= budget:
                    self.stats.restarts += 1
                    restart_count += 1
                    conflicts_here = 0
                    budget = 100 * _luby(restart_count + 1)
                    self._backtrack(base_level)
                continue
            decision = self._decide()
            if decision is None:
                return True
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    def reduce_learned(self, keep: int) -> int:
        """Garbage-collect the learned-clause database down to ``keep``.

        With ``lbd_retention`` (the default) clauses are retained by LBD
        tier: glue clauses (LBD ≤ :data:`GLUE_LBD`) are kept
        *unconditionally* — even when that leaves more than ``keep``
        clauses alive — and the remainder is ranked by (LBD, activity,
        length), dropping the worst.  Without it, the legacy policy
        keeps the ``keep`` shortest clauses.  Either way the survivors'
        watch hooks stay intact and the dropped clauses are unhooked.
        Backtracks to level 0 first, where no learned clause is ever
        consulted as a reason again, so removal cannot invalidate an
        in-flight analysis.  Returns the number of clauses dropped.
        Incremental callers use this between :meth:`solve` calls to
        bound propagation cost over long solving sweeps.
        """
        if len(self.learned_clauses) <= keep:
            return 0
        self._backtrack(0)
        if self.lbd_retention:
            lbd, act = self._lbd, self._cla_act
            glue_cap = self.GLUE_LBD
            glue: list[list[int]] = []
            rest: list[list[int]] = []
            for clause in self.learned_clauses:
                if lbd.get(id(clause), glue_cap + 1) <= glue_cap:
                    glue.append(clause)
                else:
                    rest.append(clause)
            quota = max(keep - len(glue), 0)
            if len(rest) <= quota:
                # glue alone exceeds the cap: nothing is droppable, so
                # skip the ranking sort a caller's size trigger would
                # otherwise re-pay on every call
                return 0
            rest.sort(
                key=lambda c: (
                    lbd.get(id(c), 1 << 30),
                    -act.get(id(c), 0.0),
                    len(c),
                )
            )
            kept = glue + rest[:quota]
            drop = rest[quota:]
        else:
            self.learned_clauses.sort(key=len)
            kept = self.learned_clauses[:keep]
            drop = self.learned_clauses[keep:]
        if not drop:
            return 0
        dropped = set(map(id, drop))
        self.learned_clauses = kept
        self._forget_metadata(dropped)
        watches = self._watches
        for code in range(2, len(watches)):
            watchers = watches[code]
            if watchers:
                watches[code] = [
                    c for c in watchers if id(c) not in dropped
                ]
        # level-0 reasons are never analyzed; clear stale references so
        # the dropped clauses can actually be collected
        for v in range(1, self.num_vars + 1):
            reason = self._reason[v]
            if reason is not None and id(reason) in dropped:
                self._reason[v] = None
        return len(drop)

    def _forget_metadata(self, dropped: set[int]) -> None:
        """Drop LBD/activity entries of clauses leaving the database."""
        for cid in dropped:
            self._lbd.pop(cid, None)
            self._cla_act.pop(cid, None)

    def simplify(self) -> int:
        """Drop clauses permanently satisfied at level 0.

        A literal true at level 0 satisfies its clauses in every future
        solving context, so those clauses (problem and learned alike) are
        dead weight in the watch lists — they accumulate fast in a
        campaign engine whose per-problem activation selectors are
        retired (pinned false) as problems finish.  Removal is sound
        because level-0 facts are consequences of the database alone,
        never of assumptions.  Returns the number of clauses dropped.
        """
        if not self._ok:
            return 0
        self._model_ready = False
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return 0
        assign, level = self._assign, self._level

        def satisfied(clause: list[int]) -> bool:
            for lit in clause:
                var = lit if lit > 0 else -lit
                val = assign[var] if lit > 0 else -assign[var]
                if val == TRUE_VAL and level[var] == 0:
                    return True
            return False

        dropped: set[int] = set()
        kept: list[list[int]] = []
        for clause in self.clauses:
            if satisfied(clause):
                dropped.add(id(clause))
            else:
                kept.append(clause)
        self.clauses = kept
        kept_learned: list[list[int]] = []
        for clause in self.learned_clauses:
            if satisfied(clause):
                dropped.add(id(clause))
            else:
                kept_learned.append(clause)
        self.learned_clauses = kept_learned
        if not dropped:
            return 0
        self._forget_metadata(dropped)
        watches = self._watches
        for code in range(2, len(watches)):
            watchers = watches[code]
            if watchers:
                watches[code] = [
                    c for c in watchers if id(c) not in dropped
                ]
        # level-0 reasons are never analyzed; clear stale references so
        # the dropped clauses can actually be collected
        for v in range(1, self.num_vars + 1):
            reason = self._reason[v]
            if reason is not None and id(reason) in dropped:
                self._reason[v] = None
        return len(dropped)

    def fixed(self, lit: int) -> Optional[bool]:
        """The literal's value if permanently fixed at level 0, else None.

        Level-0 assignments are consequences of the clause database alone
        (never of assumptions), so a ``False`` here means the database
        entails ``-lit`` — e.g. a problem's activation selector being
        fixed false proves that problem unsatisfiable under every
        assumption set the engine could ever pass.
        """
        var = abs(lit)
        if var > self.num_vars:
            raise SatError(f"unknown variable {var}")
        if self._assign[var] == UNASSIGNED or self._level[var] != 0:
            return None
        return self._value(lit) == TRUE_VAL

    def model(self) -> dict[int, bool]:
        """The satisfying assignment after a successful :meth:`solve`.

        Only valid while the last :meth:`solve` call returned ``True`` and
        no clause has been added since.  Any other state — the last call
        exhausted its conflict budget or deadline (returned ``None``),
        answered unsat (``False``), or :meth:`add_clause` invalidated the
        assignment — raises :class:`SatError` instead of silently handing
        back a stale or partial assignment.
        """
        if not self._model_ready:
            raise SatError(
                "model() is only available after solve() returned True "
                "(the last call timed out, answered unsat, or the "
                "formula changed since)"
            )
        return {
            v: self._assign[v] == TRUE_VAL
            for v in range(1, self.num_vars + 1)
            if self._assign[v] != UNASSIGNED
        }

    # -- snapshot / restore -------------------------------------------------
    def supports_snapshot(self) -> bool:
        """This backend can round-trip its full warm state."""
        return True

    def snapshot(self) -> dict:
        """The solver's complete warm state as a plain-data dict.

        Captures everything :meth:`restore` needs to rebuild an
        equivalent solver in another process: the clause database
        (original and learned, with per-clause LBD and activity), VSIDS
        activities and saved phases, the level-0 fixed literals, pending
        units, and the cumulative :class:`SatStats`.  Backtracks to
        level 0 first, so the trail holds only permanent facts — units
        are never stored in ``self.clauses``, so they must be captured
        explicitly here.  The result contains only ints / floats /
        bools / lists / dicts (JSON- and pickle-friendly) plus a
        ``version`` field checked on restore.
        """
        self._backtrack(0)
        return {
            "schema": "cdcl",
            "version": SNAPSHOT_VERSION,
            "backend": "python",
            "num_vars": self.num_vars,
            "ok": self._ok,
            "lbd_retention": self.lbd_retention,
            "clauses": [list(c) for c in self.clauses],
            "learned": [
                [
                    list(c),
                    self._lbd.get(id(c)),
                    self._cla_act.get(id(c), 0.0),
                ]
                for c in self.learned_clauses
            ],
            # level-0 trail = facts entailed by the database alone
            "fixed": list(self._trail),
            "pending_units": list(self._pending_units),
            "activity": list(self._activity[1:]),
            "phase": list(self._phase[1:]),
            "var_inc": self._var_inc,
            "cla_inc": self._cla_inc,
            "stats": asdict(self.stats),
        }

    @classmethod
    def restore(cls, snap: dict) -> "CDCLSolver":
        """Rebuild a solver from :meth:`snapshot` output.

        Clause lists are adopted verbatim with their first two literals
        watched: at the quiescent level-0 state a snapshot captures,
        every clause either has both watches non-false or is satisfied
        by its other watch, so re-enqueueing the same level-0 facts and
        propagating re-establishes the two-watched-literal invariant.
        Clauses are appended directly (not via :meth:`add_clause`) and
        the stats block is restored wholesale, so ``clauses_added`` /
        ``learned_count`` accounting survives the round trip exactly.
        Raises :class:`SatError` on a wrong schema or version.
        """
        if not isinstance(snap, dict) or snap.get("schema") != "cdcl":
            raise SatError("not a CDCL solver snapshot")
        if snap.get("version") != SNAPSHOT_VERSION:
            raise SatError(
                f"unsupported solver snapshot version "
                f"{snap.get('version')!r} (expected {SNAPSHOT_VERSION})"
            )
        solver = cls(lbd_retention=bool(snap["lbd_retention"]))
        solver.new_vars(int(snap["num_vars"]))
        if len(snap["activity"]) != solver.num_vars:
            raise SatError("snapshot activity table length mismatch")
        fixed: list[int] = [int(l) for l in snap["fixed"]]
        for lits in snap["clauses"]:
            clause = [int(l) for l in lits]
            if len(clause) >= 2:
                solver.clauses.append(clause)
                solver._watch(clause)
            elif clause:  # defensive: stored units become fixed facts
                fixed.append(clause[0])
        for lits, lbd, act in snap["learned"]:
            clause = [int(l) for l in lits]
            if len(clause) >= 2:
                solver.learned_clauses.append(clause)
                solver._watch(clause)
                if lbd is not None:
                    solver._lbd[id(clause)] = int(lbd)
                solver._cla_act[id(clause)] = float(act)
            elif clause:
                fixed.append(clause[0])
        for v in range(1, solver.num_vars + 1):
            solver._activity[v] = float(snap["activity"][v - 1])
            solver._phase[v] = bool(snap["phase"][v - 1])
        # every variable is already on the heap from new_vars; rebuild
        # the order bottom-up now that the activities are in place (tie
        # layouts may differ from the live heap — restored searches may
        # take different but equally correct paths)
        for i in range(len(solver._heap) // 2 - 1, -1, -1):
            solver._heap_down(i)
        ok = bool(snap["ok"])
        if ok:
            for lit in fixed:
                if not solver._enqueue(lit, None):
                    ok = False
                    break
            if ok and solver._propagate() is not None:
                ok = False
        solver._ok = ok
        solver._pending_units.extend(
            int(l) for l in snap["pending_units"]
        )
        solver._var_inc = float(snap["var_inc"])
        solver._cla_inc = float(snap["cla_inc"])
        # restored wholesale so cumulative accounting is exact (the
        # replay above must not inflate clauses_added/propagations)
        solver.stats = SatStats(**snap["stats"])
        return solver


def solve_cnf(
    clauses: Iterable[Iterable[int]],
    num_vars: int,
    *,
    max_conflicts: Optional[int] = None,
    deadline: Optional[float] = None,
) -> Optional[dict[int, bool]]:
    """One-shot convenience API: solve a CNF, return a model or ``None``.

    ``None`` strictly means *unsatisfiable*.  When the optional
    ``max_conflicts`` / ``deadline`` budget runs out before an answer,
    the outcome is indeterminate and a :class:`SatError` is raised —
    collapsing it into "no model" would let a budgeted caller misread a
    timeout as unsat.
    """
    solver = CDCLSolver(num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            return None
    result = solver.solve(max_conflicts=max_conflicts, deadline=deadline)
    if result is None:
        raise SatError(
            "solve_cnf: conflict/deadline budget exhausted before an "
            "answer (indeterminate, not unsat)"
        )
    if result is False:
        return None
    model = solver.model()
    for v in range(1, num_vars + 1):
        model.setdefault(v, False)
    return model


def brute_force_sat(
    clauses: Sequence[Sequence[int]], num_vars: int
) -> Optional[dict[int, bool]]:
    """Reference solver by exhaustive enumeration (tests only)."""
    for bits in itertools.product((False, True), repeat=num_vars):
        assignment = {v: bits[v - 1] for v in range(1, num_vars + 1)}
        if all(
            any(
                assignment[abs(l)] == (l > 0)
                for l in clause
            )
            for clause in clauses
        ):
            return assignment
    return None
