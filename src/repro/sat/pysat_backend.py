"""Optional external SAT backend: `python-sat` (PySAT) / Glucose.

:class:`PySATBackend` adapts a PySAT solver — Glucose 3 by default,
the Eén–Sörensson MiniSat lineage with Audemard–Simon's LBD discipline
built in — to the :class:`~repro.sat.backend.SatBackend` protocol the
model finder drives.  The mapping is mostly direct because the
protocol *is* the MiniSat incremental contract:

* assumption solving → ``solve(assumptions=...)`` /
  ``solve_limited``; failed-assumption cores → ``get_core()``;
* level-0 queries (:meth:`fixed`) → ``propagate()`` with no
  assumptions, memoized until the database or trail can change;
* deletion-based core minimization → the same bounded re-solve loop
  the pure-Python solver uses, expressed through the protocol.

Budget and deadline emulation (the one genuinely lossy spot): the
external solver runs inside a C library and cannot poll our
cooperative wall-clock deadline the way
:meth:`repro.sat.solver.CDCLSolver._propagate` does.  Per-call
conflict budgets map exactly onto PySAT's ``conf_budget`` +
``solve_limited``.  Deadlines are emulated with a watcher
:class:`threading.Timer` that fires ``interrupt()`` when the wall
clock expires; Glucose checks its asynchronous-interrupt flag inside
the search loop, so overshoot is bounded by the solver's own check
granularity rather than by ours — a budget-exhausted call returns
``None`` exactly like the pure-Python engine, but the *moment* it
gives up is the library's choice, not a 1024-propagation poll.

Learned-clause hygiene (:meth:`simplify`, :meth:`reduce_learned`) is
intentionally a no-op: Glucose manages its own clause database with
the very LBD policy our pure-Python GC imitates, and second-guessing
it through the narrow PySAT surface would only hurt.  The methods
exist so incremental callers can issue their hints uniformly.

The import of ``pysat`` is guarded: constructing the backend without
`python-sat` installed raises
:class:`~repro.sat.backend.BackendUnavailableError` with an
actionable message, and :func:`pysat_available` answers the probe the
CLI and test suite use.  Nothing in this module executes at import
time that needs the dependency.
"""

from __future__ import annotations

import threading
import time
from typing import Iterable, Optional, Sequence

from repro.sat.backend import BackendUnavailableError
from repro.sat.solver import SNAPSHOT_VERSION, SatError, SatStats

#: PySAT solver name the adapter instantiates.  Glucose 3 is the
#: default for its incremental-assumptions maturity; any PySAT name
#: with assumption, core and propagate support works.
DEFAULT_PYSAT_SOLVER = "glucose3"

_INSTALL_HINT = (
    "SAT backend 'pysat' needs the optional dependency python-sat "
    "(pip install python-sat); the pure-Python backend "
    "(--backend python) is always available"
)


def pysat_available() -> bool:
    """Whether `python-sat` is importable in this interpreter."""
    try:
        import pysat.solvers  # noqa: F401
    except Exception:
        return False
    return True


class PySATBackend:
    """`python-sat` adapter satisfying the :class:`SatBackend` protocol.

    ``lbd_retention`` is accepted for constructor uniformity with the
    pure-Python solver and recorded, but Glucose applies its own LBD
    retention natively — there is no legacy length-based mode to fall
    back to behind this boundary.
    """

    def __init__(
        self,
        num_vars: int = 0,
        *,
        lbd_retention: bool = True,
        solver_name: str = DEFAULT_PYSAT_SOLVER,
    ):
        try:
            from pysat.solvers import Solver
        except Exception as error:
            raise BackendUnavailableError(
                f"{_INSTALL_HINT} (import failed: {error})"
            ) from error
        self.lbd_retention = lbd_retention
        self.solver_name = solver_name
        self._solver = Solver(name=solver_name)
        self.num_vars = 0
        self.stats = SatStats()
        self._ok = True
        self._core: Optional[list[int]] = None
        self._model: Optional[dict[int, bool]] = None
        # level-0 entailed literals, memoized between database changes
        self._fixed_cache: Optional[set[int]] = None
        # variables the underlying solver has seen in a clause; an
        # assumption over a clause-free variable is materialized with a
        # tautology first so the C solver's variable table covers it
        self._materialized: set[int] = set()
        # every accepted non-tautology clause, in insertion order —
        # the C solver's database cannot be read back, so snapshots
        # replay this record (degraded restore: Glucose's learned
        # clauses and heuristic state are dropped)
        self._clauses: list[list[int]] = []
        if num_vars:
            self.new_vars(num_vars)

    # -- variable / clause management ----------------------------------
    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        return [self.new_var() for _ in range(count)]

    def _check_clause(self, literals: Iterable[int]) -> tuple[list[int], bool]:
        """Validate and dedup; mirrors the pure-Python input contract."""
        seen: set[int] = set()
        clause: list[int] = []
        tautology = False
        for lit in literals:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            if abs(lit) > self.num_vars:
                raise SatError(f"unknown variable {abs(lit)}")
            if -lit in seen:
                tautology = True
            if lit in seen:
                continue
            seen.add(lit)
            clause.append(lit)
        return clause, tautology

    def add_clause(self, literals: Iterable[int]) -> bool:
        clause, tautology = self._check_clause(literals)
        if not self._ok:
            return False
        self._model = None
        self._fixed_cache = None
        # counted on every accepting path, tautologies included — the
        # incremental engine's encoded/reused ratios rely on this
        # counter meaning the same thing on every backend
        self.stats.clauses_added += 1
        if tautology:
            return True
        if not clause:
            self._ok = False
            return False
        self._materialized.update(abs(l) for l in clause)
        accepted = self._solver.add_clause(clause, no_return=False)
        if accepted is False:
            # the library detected a root-level conflict on insertion
            self._ok = False
            return False
        self._clauses.append(clause)
        return True

    def _materialize_assumptions(self, assumptions: Sequence[int]) -> None:
        """Ensure assumption variables exist inside the C solver.

        A selector allocated but never yet mentioned in a clause is
        unknown to the library; a tautology over it is a sound no-op
        clause that registers the variable.
        """
        for lit in assumptions:
            var = abs(lit)
            if var not in self._materialized:
                self._solver.add_clause([var, -var])
                self._materialized.add(var)

    # -- solving --------------------------------------------------------
    def solve(
        self,
        assumptions: Sequence[int] = (),
        *,
        max_conflicts: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> Optional[bool]:
        self.stats.solve_calls += 1
        self._model = None
        self._core = None
        self._fixed_cache = None
        assumptions = list(assumptions)
        for lit in assumptions:
            if lit == 0:
                raise SatError("literal 0 is not allowed")
            if abs(lit) > self.num_vars:
                raise SatError(f"unknown variable {abs(lit)}")
        if not self._ok:
            self._core = []
            self.stats.cores += 1
            return False
        self._materialize_assumptions(assumptions)
        timer: Optional[threading.Timer] = None
        interrupted = threading.Event()
        if deadline is not None:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None

            def _expire() -> None:
                interrupted.set()
                self._solver.interrupt()

            timer = threading.Timer(remaining, _expire)
            timer.daemon = True
            timer.start()
        try:
            if max_conflicts is not None:
                self._solver.conf_budget(max_conflicts)
                outcome = self._solver.solve_limited(
                    assumptions=assumptions,
                    expect_interrupt=deadline is not None,
                )
            elif deadline is not None:
                # no conflict budget: lift it so only the wall clock
                # (the interrupt) can stop the call early
                self._solver.conf_budget(-1)
                outcome = self._solver.solve_limited(
                    assumptions=assumptions, expect_interrupt=True
                )
            else:
                outcome = self._solver.solve(assumptions=assumptions)
        finally:
            if timer is not None:
                timer.cancel()
                if interrupted.is_set():
                    # required before the solver object can be reused
                    self._solver.clear_interrupt()
        self._sync_stats()
        if outcome is True:
            model = self._solver.get_model() or []
            self._model = {abs(l): l > 0 for l in model}
            return True
        if outcome is False:
            core = self._solver.get_core()
            self._core = list(core) if core else []
            self.stats.cores += 1
            return False
        return None  # budget or deadline exhausted: indeterminate

    def _sync_stats(self) -> None:
        """Mirror the library's cumulative search counters."""
        try:
            accum = self._solver.accum_stats()
        except Exception:
            return
        self.stats.conflicts = accum.get("conflicts", self.stats.conflicts)
        self.stats.decisions = accum.get("decisions", self.stats.decisions)
        self.stats.propagations = accum.get(
            "propagations", self.stats.propagations
        )
        self.stats.restarts = accum.get("restarts", self.stats.restarts)

    def core(self) -> list[int]:
        if self._core is None:
            raise SatError(
                "core() is only available after solve() returned False"
            )
        return list(self._core)

    def minimize_core(
        self,
        *,
        max_conflicts_per_probe: int = 1_000,
        deadline: Optional[float] = None,
        candidates: Optional[Sequence[int]] = None,
    ) -> list[int]:
        """Deletion-based minimization through the protocol itself.

        Same bounded re-solve loop as the pure-Python solver's
        :meth:`~repro.sat.solver.CDCLSolver.minimize_core`, including
        the ``candidates`` restriction; only conclusive unsat probes
        shrink the core, so the result is a correct core under any
        budget.
        """
        core = self.core()
        probe_set = (
            None if candidates is None else {l for l in candidates}
        )
        i = 0
        while len(core) > 1 and i < len(core):
            if deadline is not None and time.monotonic() > deadline:
                break
            if probe_set is not None and core[i] not in probe_set:
                i += 1
                continue
            trial = core[:i] + core[i + 1 :]
            self.stats.core_probes += 1
            outcome = self.solve(
                trial,
                max_conflicts=max_conflicts_per_probe,
                deadline=deadline,
            )
            if outcome is False:
                shrunk = set(self._core or ())
                self.stats.core_lits_removed += len(core) - len(shrunk)
                core = [l for l in core if l in shrunk]
            else:
                i += 1
        self._model = None
        self._core = list(core)
        return list(core)

    def model(self) -> dict[int, bool]:
        if self._model is None:
            raise SatError(
                "model() is only available after solve() returned True "
                "(the last call timed out, answered unsat, or the "
                "formula changed since)"
            )
        return dict(self._model)

    def fixed(self, lit: int) -> Optional[bool]:
        """Level-0 entailment via the library's root propagation.

        ``propagate()`` with no assumptions returns every literal the
        database entails at level 0 — the same information the
        pure-Python solver reads off its trail.  The result is
        memoized until the next clause addition or solve call.  If the
        library cannot answer (no propagate support, or the database
        is already unsat), ``None`` is returned: the caller only loses
        an early-exit optimization, never soundness.
        """
        var = abs(lit)
        if var > self.num_vars:
            raise SatError(f"unknown variable {var}")
        if not self._ok:
            return None
        if var not in self._materialized:
            return None  # clause-free variable: nothing can fix it
        if self._fixed_cache is None:
            try:
                st, implied = self._solver.propagate(assumptions=[])
            except Exception:
                return None
            if not st:
                return None
            self._fixed_cache = set(implied)
        if lit in self._fixed_cache:
            return True
        if -lit in self._fixed_cache:
            return False
        return None

    # -- database hygiene (delegated to the library) --------------------
    def simplify(self) -> int:
        """No-op: the external solver simplifies on its own schedule."""
        return 0

    def reduce_learned(self, keep: int) -> int:
        """No-op: Glucose applies its native LBD retention policy."""
        return 0

    def clause_count(self) -> int:
        """Caller-added clauses (internal tautology stubs excluded)."""
        return self.stats.clauses_added

    def learned_count(self) -> int:
        """Not exposed by the library; 0 keeps reports honest-by-default."""
        return 0

    # -- snapshot / restore ---------------------------------------------
    def supports_snapshot(self) -> bool:
        """Snapshots work, but restore is *degraded*: only the clause
        database survives — Glucose's learned clauses, activities and
        phases live inside the C solver and cannot be read back."""
        return True

    def snapshot(self) -> dict:
        """Degraded snapshot: the recorded clause database plus stats.

        Shares the ``schema``/``version`` header with the pure-Python
        solver so :func:`repro.sat.backend.restore_backend` validates
        both uniformly; the ``backend`` field says which restore path
        applies.
        """
        from dataclasses import asdict

        return {
            "schema": "cdcl",
            "version": SNAPSHOT_VERSION,
            "backend": "pysat",
            "num_vars": self.num_vars,
            "ok": self._ok,
            "lbd_retention": self.lbd_retention,
            "solver_name": self.solver_name,
            "clauses": [list(c) for c in self._clauses],
            "stats": asdict(self.stats),
        }

    @classmethod
    def restore(cls, snap: dict) -> "PySATBackend":
        """Rebuild by replaying the recorded clauses into a fresh C
        solver; warm metadata (learned clauses, heuristics) is dropped.
        The stats block is restored wholesale so ``clauses_added``
        accounting survives the (degraded) round trip."""
        if not isinstance(snap, dict) or snap.get("schema") != "cdcl":
            raise SatError("not a CDCL solver snapshot")
        if snap.get("version") != SNAPSHOT_VERSION:
            raise SatError(
                f"unsupported solver snapshot version "
                f"{snap.get('version')!r} (expected {SNAPSHOT_VERSION})"
            )
        backend = cls(
            lbd_retention=bool(snap["lbd_retention"]),
            solver_name=snap.get(
                "solver_name", DEFAULT_PYSAT_SOLVER
            ),
        )
        backend.new_vars(int(snap["num_vars"]))
        ok = bool(snap["ok"])
        for lits in snap["clauses"]:
            clause = [int(l) for l in lits]
            backend._materialized.update(abs(l) for l in clause)
            accepted = backend._solver.add_clause(
                clause, no_return=False
            )
            if accepted is False:
                ok = False
                break
            backend._clauses.append(clause)
        backend._ok = ok
        backend.stats = SatStats(**snap["stats"])
        return backend

    def delete(self) -> None:
        """Release the C solver object (PySAT requires explicit delete)."""
        if self._solver is not None:
            self._solver.delete()
            self._solver = None

    def __del__(self):  # pragma: no cover - interpreter-shutdown path
        try:
            self.delete()
        except Exception:
            pass
