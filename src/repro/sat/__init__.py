"""From-scratch CDCL SAT solver and CNF utilities."""

from repro.sat.cnf import (
    at_most_one,
    exactly_one,
    from_dimacs,
    implies,
    to_dimacs,
)
from repro.sat.solver import (
    CDCLSolver,
    SatError,
    SatStats,
    brute_force_sat,
    solve_cnf,
)

__all__ = [
    "CDCLSolver",
    "SatError",
    "SatStats",
    "at_most_one",
    "brute_force_sat",
    "exactly_one",
    "from_dimacs",
    "implies",
    "solve_cnf",
    "to_dimacs",
]
