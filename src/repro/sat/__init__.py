"""SAT layer: the backend protocol, the from-scratch CDCL solver,
optional external backends, and CNF utilities.

Everything above this package (the model finder, the engine pool)
depends on the :class:`~repro.sat.backend.SatBackend` protocol and the
:func:`~repro.sat.backend.make_backend` factory, never on a concrete
solver class — ``CDCLSolver`` is exported for direct/low-level use and
the test suite only.
"""

from repro.sat.backend import (
    BACKEND_NAMES,
    BackendUnavailableError,
    SatBackend,
    available_backends,
    backend_available,
    make_backend,
    restore_backend,
)
from repro.sat.cnf import (
    at_most_one,
    exactly_one,
    from_dimacs,
    implies,
    to_dimacs,
)
from repro.sat.solver import (
    SNAPSHOT_VERSION,
    CDCLSolver,
    SatError,
    SatStats,
    brute_force_sat,
    solve_cnf,
)

__all__ = [
    "BACKEND_NAMES",
    "BackendUnavailableError",
    "CDCLSolver",
    "SatBackend",
    "SatError",
    "SatStats",
    "at_most_one",
    "available_backends",
    "backend_available",
    "brute_force_sat",
    "exactly_one",
    "from_dimacs",
    "implies",
    "make_backend",
    "restore_backend",
    "SNAPSHOT_VERSION",
    "solve_cnf",
    "to_dimacs",
]
