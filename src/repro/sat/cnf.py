"""CNF utilities: encodings, selector literals and DIMACS I/O."""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional, Sequence, TextIO

from repro.sat.backend import SatBackend
from repro.sat.solver import SatError


class SelectorPool:
    """Push-style allocation of selector (guard) literals.

    Assumption-based incrementality in the Eén–Sörensson style: instead
    of retracting clauses, a clause group is guarded by a selector
    literal ``s`` — the clause ``C`` is stored as ``¬s ∨ C`` (built by
    :meth:`guard`), which is vacuous unless ``s`` is assumed true.  A
    backend ``solve`` call then "pushes" a context by passing the
    active selectors as assumptions; popping is free because nothing was
    ever deleted, and learned clauses mentioning selectors stay valid
    for every future context.

    The pool drives any :class:`~repro.sat.backend.SatBackend` — it
    only needs ``new_var`` and ``add_clause`` from the protocol, so
    selector-guarded incrementality works unchanged over the external
    backends.

    Selectors are allocated lazily per hashable key, so callers address
    them by meaning (e.g. ``("ex", sort, k)`` — "element ``k`` of
    ``sort`` exists") rather than by raw variable number.
    """

    def __init__(self, solver: SatBackend):
        self._solver = solver
        self._by_key: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._by_key

    def selector(self, key: Hashable) -> int:
        """The selector literal for ``key``, allocating on first use."""
        lit = self._by_key.get(key)
        if lit is None:
            lit = self._solver.new_var()
            self._by_key[key] = lit
        return lit

    def peek(self, key: Hashable) -> Optional[int]:
        """The selector for ``key`` if already allocated, else ``None``."""
        return self._by_key.get(key)

    def guard(
        self, literals: Iterable[int], *keys: Hashable
    ) -> list[int]:
        """``¬s1 ∨ ... ∨ ¬sn ∨ C``: clause active only under all keys."""
        return [-self.selector(k) for k in keys] + list(literals)

    def assumptions(
        self, on: Iterable[Hashable] = (), off: Iterable[Hashable] = ()
    ) -> list[int]:
        """Assumption literals activating ``on`` and deactivating ``off``."""
        return [self.selector(k) for k in on] + [
            -self.selector(k) for k in off
        ]

    def retire(self, key: Hashable) -> bool:
        """Permanently deactivate ``key``'s clause group.

        Pins the selector false with a unit clause, so every clause
        guarded by it is satisfied from level 0 onward — the
        assumption-based analogue of deleting the group (the clauses
        stay in the database but can never constrain a model again).
        The key is forgotten; a later :meth:`selector` call for the same
        key allocates a fresh literal, which is how a long-running
        engine (e.g. a campaign pool) recycles per-problem activation
        selectors without invalidating learned clauses that mention the
        retired one.  Returns False if ``key`` was never allocated.
        """
        lit = self._by_key.pop(key, None)
        if lit is None:
            return False
        self._solver.add_clause([-lit])
        return True

    def export_state(self) -> list[tuple[Hashable, int]]:
        """The live key→literal table as picklable pairs (for engine
        snapshots).  Keys are tuples over names/ints/sorts — all
        value-comparable across processes.  Retired keys are absent by
        construction (``retire`` pops them)."""
        return list(self._by_key.items())

    def import_state(
        self, items: Iterable[tuple[Hashable, int]]
    ) -> None:
        """Adopt an exported table wholesale (restore path).  The
        literals must already exist in the attached solver — the engine
        restores its solver snapshot first, which recreates every
        variable."""
        self._by_key = {key: int(lit) for key, lit in items}


def at_most_one(literals: Sequence[int]) -> Iterator[list[int]]:
    """Pairwise at-most-one encoding.

    The model finder's cells (``f(a) = v`` for each value ``v``) are small
    (domain sizes stay in single digits — Figure 6), so the quadratic
    pairwise encoding beats commander/sequential encodings here.
    """
    for i in range(len(literals)):
        for j in range(i + 1, len(literals)):
            yield [-literals[i], -literals[j]]


def exactly_one(literals: Sequence[int]) -> Iterator[list[int]]:
    """Exactly-one: the at-least-one clause plus pairwise at-most-one."""
    if not literals:
        raise SatError("exactly_one of no literals is unsatisfiable")
    yield list(literals)
    yield from at_most_one(literals)


def implies(premises: Sequence[int], conclusion: int) -> list[int]:
    """The clause for ``premises -> conclusion``."""
    return [-p for p in premises] + [conclusion]


def to_dimacs(clauses: Sequence[Sequence[int]], num_vars: int) -> str:
    """Render a clause set in DIMACS CNF format."""
    lines = [f"p cnf {num_vars} {len(clauses)}"]
    for clause in clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> tuple[list[list[int]], int]:
    """Parse DIMACS CNF; returns ``(clauses, num_vars)``."""
    clauses: list[list[int]] = []
    num_vars = 0
    current: list[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SatError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            continue
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
    if current:
        clauses.append(current)
    for clause in clauses:
        for lit in clause:
            if abs(lit) > num_vars:
                num_vars = abs(lit)
    return clauses, num_vars
