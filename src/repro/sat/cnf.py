"""CNF utilities: encodings and DIMACS I/O used by the model finder."""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, TextIO

from repro.sat.solver import SatError


def at_most_one(literals: Sequence[int]) -> Iterator[list[int]]:
    """Pairwise at-most-one encoding.

    The model finder's cells (``f(a) = v`` for each value ``v``) are small
    (domain sizes stay in single digits — Figure 6), so the quadratic
    pairwise encoding beats commander/sequential encodings here.
    """
    for i in range(len(literals)):
        for j in range(i + 1, len(literals)):
            yield [-literals[i], -literals[j]]


def exactly_one(literals: Sequence[int]) -> Iterator[list[int]]:
    """Exactly-one: the at-least-one clause plus pairwise at-most-one."""
    if not literals:
        raise SatError("exactly_one of no literals is unsatisfiable")
    yield list(literals)
    yield from at_most_one(literals)


def implies(premises: Sequence[int], conclusion: int) -> list[int]:
    """The clause for ``premises -> conclusion``."""
    return [-p for p in premises] + [conclusion]


def to_dimacs(clauses: Sequence[Sequence[int]], num_vars: int) -> str:
    """Render a clause set in DIMACS CNF format."""
    lines = [f"p cnf {num_vars} {len(clauses)}"]
    for clause in clauses:
        lines.append(" ".join(str(l) for l in clause) + " 0")
    return "\n".join(lines) + "\n"


def from_dimacs(text: str) -> tuple[list[list[int]], int]:
    """Parse DIMACS CNF; returns ``(clauses, num_vars)``."""
    clauses: list[list[int]] = []
    num_vars = 0
    current: list[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise SatError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            continue
        for tok in line.split():
            lit = int(tok)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit)
    if current:
        clauses.append(current)
    for clause in clauses:
        for lit in clause:
            if abs(lit) > num_vars:
                num_vars = abs(lit)
    return clauses, num_vars
