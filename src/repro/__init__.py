"""repro: a reproduction of "Beyond the Elementary Representations of
Program Invariants over Algebraic Data Types" (PLDI 2021).

The package implements the paper's full stack from scratch:

* :mod:`repro.logic` — many-sorted FOL with ADTs and Herbrand universes,
* :mod:`repro.chc` — constrained Horn clauses, SMT-LIB I/O, and the
  Sec. 4 preprocessing (selector removal, equality elimination, the
  ``diseq`` encoding),
* :mod:`repro.sat` / :mod:`repro.mace` — a CDCL SAT solver and a
  MACE-style finite model finder built on it,
* :mod:`repro.automata` — deterministic finite tree automata with boolean
  operations and the finite-model correspondence (Theorem 1),
* :mod:`repro.core` — RInGen, the regular invariant generator,
* :mod:`repro.solvers` — baseline solvers for the Elem and SizeElem
  representation classes (Spacer / Eldarica proxies) and the induction
  baseline,
* :mod:`repro.theory` — pumping lemmas, linear sets and the
  expressiveness atlas of Figure 3,
* :mod:`repro.stlc` — the simply-typed lambda calculus case study of
  Sec. 5,
* :mod:`repro.benchgen` / :mod:`repro.harness` — benchmark suites and the
  experiment harness regenerating Table 1 and Figures 3-6.

Quick start::

    from repro import solve
    from repro.problems import even_system

    result = solve(even_system())
    print(result.status)                 # Status.SAT
    print(result.invariant.describe())   # the regular invariant
"""

from repro.core.result import SolveResult, Status
from repro.core.ringen import RInGen, RInGenConfig, solve

__version__ = "1.0.0"

__all__ = [
    "RInGen",
    "RInGenConfig",
    "SolveResult",
    "Status",
    "solve",
    "__version__",
]
