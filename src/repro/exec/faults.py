"""Deterministic fault injection for the supervised execution layer.

Every failure path of :mod:`repro.exec.supervisor` — worker crashes,
hangs killed by the hard watchdog, OOMs under the RSS cap, and
flaky-then-succeed transients retried with backoff — must be exercised
in tests and CI, not discovered in week-long campaigns.  A
:class:`ReproFaultPlan` is a small, fully deterministic description of
which task should fail and how:

    crash@2            raise inside task index 2 (structured error:crash)
    hang@tree/size     spin forever in any task whose id contains the key
                       (isolated mode: the watchdog kills it)
    oom@7              allocate until MemoryError (error:oom)
    flaky@3x2          die without a result on the first 2 attempts of
                       task 3, then succeed (exercises retry + backoff)

Plans are comma-separated specs, constructed programmatically or read
from the ``REPRO_FAULT_PLAN`` environment variable, and are threaded
verbatim into worker subprocesses so the *worker* side of each failure
fires in the worker, exactly where a real fault would.  A spec keys on
the task's campaign index when the key is an integer, and on a task-id
substring otherwise; firing is a pure function of (task, attempt), so a
resumed or retried campaign replays identically.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: exit code a flaky worker dies with (no result written) — the
#: supervisor classifies any result-less death as transient and retries
FLAKY_EXIT_CODE = 86

KINDS = ("crash", "hang", "oom", "flaky", "interrupt")


class FaultPlanError(ValueError):
    """Raised on a malformed fault-plan spec string."""


class InjectedCrash(RuntimeError):
    """A deterministic solver crash injected by a fault plan."""


class TransientWorkerFault(RuntimeError):
    """A retryable fault (in-process stand-in for a dying worker)."""


class CooperativeHang(RuntimeError):
    """In-process hang surrogate: the cooperative deadline expired."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` fires on the task matching ``key``."""

    kind: str
    key: str
    times: int = 1  # flaky only: attempts that fail before success

    def matches(self, task_id: str, index: int) -> bool:
        if self.key.isdigit():
            return index == int(self.key)
        return self.key in task_id


class ReproFaultPlan:
    """A deterministic set of :class:`FaultSpec` entries."""

    def __init__(self, specs: tuple[FaultSpec, ...] = ()):
        self.specs = tuple(specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    # -- construction ------------------------------------------------------
    @classmethod
    def parse(cls, text: Optional[str]) -> "ReproFaultPlan":
        """Parse ``kind@key[xN],...``; empty/None gives the empty plan."""
        if not text or not text.strip():
            return cls()
        specs = []
        for chunk in text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "@" not in chunk:
                raise FaultPlanError(
                    f"fault spec {chunk!r} is missing '@key'"
                )
            kind, key = chunk.split("@", 1)
            kind = kind.strip()
            if kind not in KINDS:
                raise FaultPlanError(
                    f"unknown fault kind {kind!r} "
                    f"(expected one of {', '.join(KINDS)})"
                )
            times = 1
            if "x" in key:
                key, _, reps = key.rpartition("x")
                if not reps.isdigit() or not key:
                    raise FaultPlanError(
                        f"malformed flaky repetition in {chunk!r}"
                    )
                times = int(reps)
            key = key.strip()
            if not key:
                raise FaultPlanError(f"empty fault key in {chunk!r}")
            specs.append(FaultSpec(kind, key, times))
        return cls(tuple(specs))

    @classmethod
    def from_env(cls, environ=None) -> "ReproFaultPlan":
        env = os.environ if environ is None else environ
        return cls.parse(env.get(FAULT_PLAN_ENV))

    def encode(self) -> str:
        """Inverse of :meth:`parse` — the form shipped to workers."""
        parts = []
        for spec in self.specs:
            suffix = f"x{spec.times}" if spec.times != 1 else ""
            parts.append(f"{spec.kind}@{spec.key}{suffix}")
        return ",".join(parts)

    # -- firing ------------------------------------------------------------
    def spec_for(self, task_id: str, index: int) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.matches(task_id, index):
                return spec
        return None

    def fire(
        self,
        task_id: str,
        index: int,
        attempt: int,
        *,
        isolated: bool,
        timeout: Optional[float] = None,
        mem_limit_mb: Optional[int] = None,
    ) -> None:
        """Inject the matching fault, if any, for this (task, attempt).

        ``interrupt`` specs are supervisor-level (they simulate SIGINT
        between tasks) and never fire here.
        """
        spec = self.spec_for(task_id, index)
        if spec is None or spec.kind == "interrupt":
            return
        if spec.kind == "crash":
            raise InjectedCrash(
                f"injected crash in {task_id} (attempt {attempt})"
            )
        if spec.kind == "oom":
            if isolated and mem_limit_mb is not None:
                _trip_memory_cap(mem_limit_mb)
            raise MemoryError(f"injected oom in {task_id}")
        if spec.kind == "flaky":
            if attempt <= spec.times:
                if isolated:
                    # die without writing a result: the supervisor sees a
                    # result-less worker death, exactly like a real
                    # transient kill, and retries with backoff
                    os._exit(FLAKY_EXIT_CODE)
                raise TransientWorkerFault(
                    f"injected transient fault in {task_id} "
                    f"(attempt {attempt} of {spec.times} failing)"
                )
            return
        if spec.kind == "hang":
            if isolated:
                while True:  # only the out-of-process watchdog ends this
                    time.sleep(0.05)
            # in-process there is no watchdog; model the adversarial
            # long-running task by sleeping out the cooperative budget,
            # then reporting that the deadline expired
            time.sleep(timeout if timeout is not None else 0.1)
            raise CooperativeHang(
                f"injected hang in {task_id}: cooperative deadline expired"
            )


def _trip_memory_cap(mem_limit_mb: int) -> None:
    """Trip the worker's RLIMIT_AS cap, raising :class:`MemoryError`.

    A single anonymous mmap of 2x the cap fails at reservation time —
    no pages are ever touched, so the failure is instant regardless of
    how slow faulting-in memory is on the host, and nothing is left
    pinned in the exception traceback.  If the reservation somehow
    succeeds (the cap was not applied), the lazily-mapped region costs
    nothing and is released before raising.
    """
    import mmap

    try:
        probe = mmap.mmap(-1, (2 * mem_limit_mb) << 20)
    except (MemoryError, OSError, OverflowError, ValueError):
        raise MemoryError(
            f"injected oom: address-space cap ({mem_limit_mb} MiB) tripped"
        ) from None
    probe.close()
    raise MemoryError("injected oom (cap did not trip)")
