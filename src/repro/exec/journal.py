"""Append-only JSONL results journal with checkpoint/resume.

One line per finished (problem, solver) task, flushed to disk as soon
as the verdict exists, so a campaign killed at any point — SIGKILL,
power loss, a watchdog tripping on the supervisor itself — loses at
most the task in flight.  ``--resume`` loads the journal back, replays
the finished verdicts into the campaign, and re-executes only the
remainder.

Format: the first line is a ``meta`` record (schema version, per-run
timeout, solver list, creation time); every other line is a ``record``
entry keyed by ``task`` id.  Loading tolerates a truncated final line
(the torn write of the fatal moment) but warns about — and skips —
any other malformed line rather than silently dropping verdicts.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import logging
import os
import time
from typing import Optional, TextIO

logger = logging.getLogger(__name__)

JOURNAL_VERSION = 1


class JournalError(ValueError):
    """Raised when a journal cannot be used for resume."""


def config_fingerprint(solver_opts: Optional[dict]) -> str:
    """Short stable hash of the solver configuration a journal ran under.

    Splicing verdicts produced under one solver configuration into a
    campaign running another silently mixes incomparable results, so
    the fingerprint is recorded in the journal meta and enforced on
    resume.  ``engine_cache_dir`` is excluded: the warm cache changes
    where solver state comes from, never what verdicts mean, and a
    resume must be allowed to point at a different (or no) cache.
    """
    opts = {
        k: v
        for k, v in (solver_opts or {}).items()
        if k != "engine_cache_dir"
    }
    blob = json.dumps(opts, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class ResultsJournal:
    """Append-side handle: one flushed JSON line per finished task."""

    def __init__(self, path: str, *, meta: Optional[dict] = None):
        self.path = path
        self._handle: Optional[TextIO] = None
        fresh = not os.path.exists(path) or os.path.getsize(path) == 0
        self._handle = open(path, "a", encoding="utf-8")
        if fresh:
            created = time.time()
            header = {
                "kind": "meta",
                "version": JOURNAL_VERSION,
                "created": created,
                # the same instant twice: the float for arithmetic, the
                # ISO-8601 UTC form for humans reading the raw file
                "created_iso": datetime.datetime.fromtimestamp(
                    created, tz=datetime.timezone.utc
                ).isoformat(),
            }
            header.update(meta or {})
            self._write(header)

    def record(self, entry: dict) -> None:
        """Append one finished task's verdict and force it to disk.

        Each entry is stamped with the wall-clock write time (``ts``,
        epoch seconds) unless the caller already supplied one, so a
        journal doubles as a campaign timeline.
        """
        if "task" not in entry:
            raise JournalError("journal records must carry a 'task' id")
        payload = {"kind": "record", **entry}
        payload.setdefault("ts", time.time())
        self._write(payload)

    def _write(self, payload: dict) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultsJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_journal(path: str) -> tuple[dict, dict[str, dict]]:
    """Read a journal back as ``(meta, {task_id: entry})``.

    Later entries for the same task win (a task journaled twice — e.g.
    once before an interrupt was fully processed — keeps its freshest
    verdict).  A truncated final line is expected after a hard kill and
    is dropped silently; malformed lines elsewhere are skipped loudly.
    """
    meta: dict = {}
    entries: dict[str, dict] = {}
    if not os.path.exists(path):
        return meta, entries
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                logger.warning(
                    "journal %s: dropping truncated final line "
                    "(torn write from an earlier kill)",
                    path,
                )
            else:
                logger.warning(
                    "journal %s: skipping malformed line %d", path, lineno
                )
            continue
        kind = payload.get("kind")
        if kind == "meta":
            meta = payload
        elif kind == "record" and "task" in payload:
            entries[payload["task"]] = payload
        else:
            logger.warning(
                "journal %s: skipping unrecognized line %d", path, lineno
            )
    return meta, entries


def check_meta(
    meta: dict,
    *,
    timeout: float,
    solvers: list[str],
    sat_backend: Optional[str] = None,
    fingerprint: Optional[str] = None,
) -> None:
    """Validate a resumed journal against the current configuration.

    Mixing *timeouts* or *solver sets* across the splice only skews
    comparability, so those mismatches warn and proceed — the journaled
    verdicts are real verdicts.  Mixing *SAT backends* or *solver
    configurations* (``config_fingerprint``) changes what the verdicts
    mean, so when the journal recorded those fields and they disagree,
    resume is refused with a :class:`JournalError` naming both sides.
    Journals written before these fields existed lack them and resume
    with a warning only.
    """
    if not meta:
        return
    j_backend = meta.get("sat_backend")
    if (
        sat_backend is not None
        and j_backend is not None
        and j_backend != sat_backend
    ):
        raise JournalError(
            f"journal was recorded with SAT backend {j_backend!r} but "
            f"this campaign uses {sat_backend!r}; resuming would mix "
            f"incomparable verdicts — use a fresh journal or the "
            f"recorded backend"
        )
    j_fingerprint = meta.get("config_fingerprint")
    if (
        fingerprint is not None
        and j_fingerprint is not None
        and j_fingerprint != fingerprint
    ):
        raise JournalError(
            f"journal was recorded under solver configuration "
            f"{j_fingerprint} but this campaign is configured as "
            f"{fingerprint}; resuming would mix incomparable verdicts "
            f"— use a fresh journal or the recorded configuration"
        )
    j_timeout = meta.get("timeout")
    if j_timeout is not None and abs(j_timeout - timeout) > 1e-9:
        logger.warning(
            "resuming journal recorded with timeout %.3fs into a "
            "campaign with timeout %.3fs",
            j_timeout,
            timeout,
        )
    j_solvers = meta.get("solvers")
    if j_solvers is not None and list(j_solvers) != list(solvers):
        logger.warning(
            "resuming journal recorded with solvers %s into a campaign "
            "with solvers %s",
            j_solvers,
            solvers,
        )
