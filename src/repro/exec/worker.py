"""Worker-subprocess side of the supervised execution layer.

A worker receives one batch of tasks (usually a single task; with
campaign engine-sharing on, a whole signature-compatible group) over a
pipe, solves them one at a time and streams one structured result
message back per task, so the supervisor can apply its hard wall-clock
watchdog *per task* and keep every already-finished verdict when the
worker later dies.  All failure handling that can be done in-process is
done here — a solver exception becomes ``error:crash`` with its
traceback, a MemoryError under the RSS/address-space cap becomes
``error:oom`` — while hangs and hard kills are the supervisor's
business (a hung worker never writes, so the watchdog classifies it).

The same :func:`solve_task` drives the in-process execution path, so
isolated and in-process campaigns produce identical verdicts by
construction (``benchmarks/bench_exec.py`` gates this).
"""

from __future__ import annotations

import gc
import signal
import threading
import time
import traceback
from collections import deque
from typing import Any, Optional

from repro.exec.faults import ReproFaultPlan
from repro.obs import runtime as obs_runtime
from repro.obs.events import heartbeat_event
from repro.obs.profiler import maybe_profile, profile_path

#: message sent after the last task so the supervisor can tell a clean
#: finish from a death right after the final result
DONE = "done"


def jsonable(value: Any, depth: int = 6) -> Any:
    """Strip a result-details structure down to JSON-serializable data.

    Solver details can carry rich objects (invariants, derivations);
    only plain data survives the pipe and the journal.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if depth <= 0:
        return str(value)
    if isinstance(value, dict):
        return {
            str(k): jsonable(v, depth - 1)
            for k, v in value.items()
            if isinstance(v, (str, int, float, bool, dict, list, tuple))
            or v is None
        }
    if isinstance(value, (list, tuple)):
        return [jsonable(v, depth - 1) for v in value]
    return str(value)


def make_task_solver(
    solver_name: str,
    timeout: float,
    *,
    engine_pool=None,
    solver_opts: Optional[dict] = None,
):
    """Instantiate a solver; ``solver_opts`` are RInGen-only knobs."""
    from repro.harness.runner import make_solver

    if solver_name == "ringen" and solver_opts:
        from repro.core.ringen import RInGen, RInGenConfig

        return RInGen(
            RInGenConfig(
                timeout=timeout, engine_pool=engine_pool, **solver_opts
            )
        )
    return make_solver(solver_name, timeout, engine_pool=engine_pool)


def crash_record(
    error: BaseException, elapsed: float, *, transient: bool = False
) -> dict:
    """Structured ``error:crash`` verdict for an in-task exception."""
    kind = "oom" if isinstance(error, MemoryError) else "crash"
    return {
        "status": "unknown",
        "elapsed": elapsed,
        "correct": True,  # an error is an honest non-answer, not a wrong one
        "model_size": None,
        "reason": f"error:{kind}: {type(error).__name__}: {error}",
        "error_kind": kind,
        "exception_type": type(error).__name__,
        "traceback": traceback.format_exc(limit=20),
        "transient": transient,
        "details": {},
    }


def solve_task(
    system,
    solver_name: str,
    timeout: float,
    expected_status: Optional[str],
    *,
    engine_pool=None,
    solver_opts: Optional[dict] = None,
) -> dict:
    """Solve one task and return a plain-dict verdict record.

    Exceptions never escape: a solver crash (or recursion blowout)
    yields ``error:crash`` with the exception type and traceback, and a
    MemoryError yields ``error:oom`` — the structured verdicts the
    supervisor journals instead of losing the campaign.
    """
    start = time.monotonic()
    try:
        solver = make_task_solver(
            solver_name,
            timeout,
            engine_pool=engine_pool,
            solver_opts=solver_opts,
        )
        result = solver.solve(system)
    except MemoryError as error:
        # free the hoard before building the response under a tight cap
        gc.collect()
        return crash_record(error, time.monotonic() - start)
    except Exception as error:
        return crash_record(error, time.monotonic() - start)
    elapsed = time.monotonic() - start
    status = result.status.value
    correct = (
        status == "unknown"
        or expected_status is None
        or status == expected_status
    )
    model_size = None
    if status == "sat":
        model_size = result.details.get("model_size")
    return {
        "status": status,
        "elapsed": elapsed,
        "correct": correct,
        "model_size": model_size,
        "reason": result.reason,
        "error_kind": None,
        "exception_type": None,
        "traceback": "",
        "transient": False,
        "details": jsonable(dict(result.details)),
    }


def _apply_mem_limit(mem_limit_mb: Optional[int]) -> None:
    """Cap the worker's address space so runaway allocation raises
    MemoryError in-process (a structured ``error:oom``) instead of
    taking the machine to the kernel OOM killer."""
    if mem_limit_mb is None:
        return
    try:
        import resource
    except ImportError:  # non-POSIX: the watchdog is the only backstop
        return
    limit = mem_limit_mb << 20
    try:
        soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        new_hard = hard if hard != resource.RLIM_INFINITY else limit
        resource.setrlimit(
            resource.RLIMIT_AS, (min(limit, new_hard), new_hard)
        )
    except (ValueError, OSError):
        pass  # tighter than the hard cap we inherited: keep the cap


def worker_entry(conn, payload: dict) -> None:
    """Subprocess main: solve the batch, streaming one message per task.

    ``payload``::

        {"tasks": [{"task_id", "smt_text", "solver", "timeout",
                    "expected_status", "index", "attempt"}, ...],
         "share_engines": bool, "mem_limit_mb": int | None,
         "fault_plan": str | None, "solver_opts": dict | None,
         "engine_snapshot": dict | None,
         "obs": {"trace": bool, "metrics": bool,
                 "heartbeat": float, "profile_dir": str | None} | None}

    ``engine_snapshot`` (engine sharing only) warm-starts the worker's
    pool from a predecessor's serialized engine; each verdict message
    carries the pool's current snapshot back so the supervisor can
    reschedule the batch remainder warm after a worker death.

    ``obs`` turns the worker's own collectors on: an in-memory tracer
    whose finished spans ship back inside each verdict
    (``record["obs_spans"]``), a metrics registry whose snapshot rides
    the done message (``obs_metrics``), a heartbeat thread streaming
    live-progress samples over the verdict pipe every ``heartbeat``
    seconds (0 disables it), and per-task cProfile dumps under
    ``profile_dir``.
    """
    # the supervisor owns interrupt handling; a Ctrl-C aimed at the
    # campaign must not corrupt a worker mid-message
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    _apply_mem_limit(payload.get("mem_limit_mb"))
    # the fork inherited the parent's collectors — including an open
    # file handle the parent still writes — so drop them all before
    # configuring this process's own
    obs_runtime.forget()
    obs_cfg = payload.get("obs") or {}
    obs_runtime.configure(
        trace=bool(obs_cfg.get("trace")),
        metrics=bool(obs_cfg.get("metrics")),
    )
    profile_dir = obs_cfg.get("profile_dir")
    heartbeat = float(obs_cfg.get("heartbeat") or 0.0)
    # every pipe write (verdicts, done, heartbeats from the sampler
    # thread) holds this lock: multiprocessing.Connection sends are not
    # atomic across threads
    send_lock = threading.Lock()
    stop_heartbeat = threading.Event()
    beater: Optional[threading.Thread] = None
    if heartbeat > 0:

        def _beat() -> None:
            previous: Optional[dict] = None
            while not stop_heartbeat.wait(heartbeat):
                sample = obs_runtime.live_sample()
                if sample.get("task") is None:
                    previous = None
                    continue
                event = heartbeat_event(sample, previous)
                previous = sample
                try:
                    with send_lock:
                        conn.send(event)
                except (OSError, ValueError):
                    return  # pipe gone: the supervisor is tearing down

        beater = threading.Thread(
            target=_beat, name="repro-worker-heartbeat", daemon=True
        )
        beater.start()
    plan = ReproFaultPlan.parse(payload.get("fault_plan"))
    solver_opts = payload.get("solver_opts") or None
    # per-worker monotonic snapshot sequence, seeded from the stamp of
    # the snapshot this worker warm-started from: every snapshot this
    # worker ships outranks its seed, so the supervisor's newest-wins
    # store orders concurrent workers sharing one fingerprint by
    # progress instead of by message arrival
    snap_seq = int(payload.get("engine_snapshot_seq") or 0)
    pool = None
    if payload.get("share_engines"):
        from repro.mace.pool import EnginePool

        pool = EnginePool(
            lbd_retention=(solver_opts or {}).get("lbd_retention", True),
            sat_backend=(solver_opts or {}).get("sat_backend", "python"),
            cache_dir=(solver_opts or {}).get("engine_cache_dir"),
        )
        warm = payload.get("engine_snapshot")
        if warm is not None:
            # warm start: a predecessor's engine state for this batch's
            # signature (adoption failure silently falls back cold)
            pool.adopt_snapshot(warm)
    from repro.chc.parser import parse_chc

    try:
        for task in payload["tasks"]:
            task_id = task["task_id"]
            start = time.monotonic()
            # registered before plan.fire so an injected hang still
            # shows up in heartbeats (that is what live progress is for)
            obs_runtime.task_started(task_id)
            tracer = obs_runtime.TRACER
            span = (
                tracer.begin("task", {"task": task_id})
                if tracer is not None
                else None
            )
            prof = (
                profile_path(profile_dir, task_id) if profile_dir else None
            )
            record: dict = {}
            try:
                with maybe_profile(prof):
                    plan.fire(
                        task_id,
                        task.get("index", 0),
                        task.get("attempt", 1),
                        isolated=True,
                        timeout=task.get("timeout"),
                        mem_limit_mb=payload.get("mem_limit_mb"),
                    )
                    system = parse_chc(task["smt_text"], name=task_id)
                    record = solve_task(
                        system,
                        task["solver"],
                        task["timeout"],
                        task.get("expected_status"),
                        engine_pool=pool,
                        solver_opts=solver_opts,
                    )
            except MemoryError as error:
                gc.collect()
                record = crash_record(error, time.monotonic() - start)
            except Exception as error:
                record = crash_record(error, time.monotonic() - start)
            finally:
                if span is not None:
                    span.args["status"] = record.get("status")
                    tracer.end(span)
                obs_runtime.task_finished()
            record["task"] = task_id
            if tracer is not None:
                # finished spans ride each verdict so the supervisor's
                # file-backed tracer absorbs them as they happen, not
                # only if the worker survives to the done message
                record["obs_spans"] = tracer.drain()
            if pool is not None:
                # ship the engine state with every verdict: whatever
                # the worker last managed to send seeds a warm restart
                # of the batch remainder if this process dies next
                snap = pool.last_snapshot()
                if snap is not None:
                    snap_seq += 1
                    record["engine_snapshot"] = snap
                    record["engine_snapshot_seq"] = snap_seq
            with send_lock:
                conn.send(record)
        done: dict = {DONE: True}
        if pool is not None:
            pool.flush_cache()
            # pool counters ride pool_stats and are published once at
            # campaign level; publishing them into this registry too
            # would double-count after the supervisor's merge
            done["pool_stats"] = pool.as_dict()
        if obs_runtime.METRICS is not None:
            done["obs_metrics"] = obs_runtime.METRICS.snapshot()
        # the heartbeat thread must not race a close()d pipe
        stop_heartbeat.set()
        if beater is not None:
            beater.join(timeout=2.0)
        with send_lock:
            conn.send(done)
    finally:
        stop_heartbeat.set()
        conn.close()


def shard_entry(conn, payload: dict) -> None:
    """Subprocess main of one parallel-sweep engine shard.

    The vector-granularity sibling of :func:`worker_entry`, serving the
    :class:`repro.mace.parallel.SweepScheduler`.  Down the pipe come
    ``{"kind": "vector", "seq", "sizes", "attempt", "deadline"}``
    dispatches, ``{"kind": "core", "bounds"}`` broadcasts from sibling
    shards, and ``{"kind": "stop"}``; every vector is answered with a
    result dict (verdict, fresh core bounds, cumulative
    ``FinderStats``, drained obs spans) and ``stop`` with a done
    message carrying the shard's metrics snapshot.  An exception dies
    *without* a done message so the scheduler's EOF path respawns the
    shard — the vector-level analogue of a result-less worker death.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    obs_runtime.forget()
    obs_cfg = payload.get("obs") or {}
    obs_runtime.configure(
        trace=bool(obs_cfg.get("trace")),
        metrics=bool(obs_cfg.get("metrics")),
    )
    from repro.mace.parallel import _ShardRunner

    tracer = obs_runtime.TRACER
    span = (
        tracer.begin("shard", {"shard": payload.get("shard")})
        if tracer is not None
        else None
    )
    crashed = False
    try:
        runner = _ShardRunner(payload)
        obs_runtime.watch_finder_stats(runner.stats)
        # Vectors buffer locally so core broadcasts arriving *behind*
        # queued dispatches are adopted before those vectors start —
        # processing the pipe strictly in order would let a shard grind
        # through its whole queue while a sibling's refutation core that
        # prunes it sits unread one message later.
        pending: deque = deque()
        stopped = False
        while not stopped or pending:
            while not stopped and (not pending or conn.poll(0)):
                msg = conn.recv()
                kind = msg.get("kind")
                if kind == "vector":
                    pending.append(msg)
                elif kind == "core":
                    runner.adopt_bounds(msg.get("bounds") or ())
                elif kind == "stop":
                    # outstanding speculation is cancelled, not drained
                    pending.clear()
                    stopped = True
            if pending:
                msg = pending.popleft()
                result = runner.solve_vector(
                    msg["seq"],
                    tuple(msg["sizes"]),
                    msg.get("attempt", 1),
                    msg.get("deadline"),
                )
                if tracer is not None:
                    # close the current shard-span segment so this
                    # result ships a parent for its vector span — a
                    # single whole-life shard span would leave every
                    # already-shipped vector dangling when a SAT
                    # commit kills the shard before its done message
                    tracer.end(span)
                    result["obs_spans"] = tracer.drain()
                    span = tracer.begin(
                        "shard", {"shard": payload.get("shard")}
                    )
                conn.send(result)
    except EOFError:
        pass  # scheduler went away (speculation cancelled): just exit
    except Exception:
        crashed = True  # die result-less; the scheduler respawns us
    finally:
        if not crashed:
            done: dict = {"kind": "done"}
            if span is not None:
                tracer.end(span)
                done["obs_spans"] = tracer.drain()
            if obs_runtime.METRICS is not None:
                done["obs_metrics"] = obs_runtime.METRICS.snapshot()
            try:
                conn.send(done)
            except (OSError, ValueError):
                pass
        conn.close()
