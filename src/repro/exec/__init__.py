"""Fault-tolerant campaign execution: supervised workers, watchdogs,
retry/backoff, and a checkpoint/resume journal (see
:mod:`repro.exec.supervisor` for the architecture)."""

from repro.exec.faults import (
    FAULT_PLAN_ENV,
    FaultPlanError,
    FaultSpec,
    InjectedCrash,
    ReproFaultPlan,
    TransientWorkerFault,
)
from repro.exec.journal import ResultsJournal, load_journal
from repro.exec.supervisor import (
    CampaignInterrupted,
    ExecPolicy,
    ExecStats,
    TaskSpec,
    execute_tasks,
)

__all__ = [
    "CampaignInterrupted",
    "ExecPolicy",
    "ExecStats",
    "FAULT_PLAN_ENV",
    "FaultPlanError",
    "FaultSpec",
    "InjectedCrash",
    "ReproFaultPlan",
    "ResultsJournal",
    "TaskSpec",
    "TransientWorkerFault",
    "execute_tasks",
    "load_journal",
]
